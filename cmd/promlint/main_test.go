package main

import (
	"strings"
	"testing"
)

const goodExposition = `# TYPE service_submitted_total counter
service_submitted_total 3
# TYPE service_queue_depth gauge
service_queue_depth 7
# TYPE service_attempt_seconds histogram
service_attempt_seconds_bucket{le="0.5"} 1
service_attempt_seconds_bucket{le="1"} 3
service_attempt_seconds_bucket{le="+Inf"} 4
service_attempt_seconds_sum 3.25
service_attempt_seconds_count 4
`

func lintString(t *testing.T, s string) []string {
	t.Helper()
	v, err := lint(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLintClean(t *testing.T) {
	if v := lintString(t, goodExposition); len(v) != 0 {
		t.Errorf("clean exposition flagged: %v", v)
	}
}

func TestLintViolations(t *testing.T) {
	cases := map[string]struct {
		in   string
		want string // substring of the expected violation
	}{
		"no TYPE": {
			in:   "orphan_total 1\n",
			want: "no preceding TYPE line",
		},
		"TYPE after sample": {
			in:   "late_total 1\n# TYPE late_total counter\n",
			want: "no preceding TYPE line",
		},
		"bad metric name": {
			in:   "# TYPE 9lives counter\n9lives 1\n",
			want: "invalid metric name",
		},
		"unknown type": {
			in:   "# TYPE x speedometer\nx 1\n",
			want: "unknown metric type",
		},
		"duplicate series": {
			in:   "# TYPE x counter\nx 1\nx 2\n",
			want: "duplicate series",
		},
		"duplicate series distinct label order": {
			in:   "# TYPE x counter\nx{a=\"1\",b=\"2\"} 1\nx{b=\"2\",a=\"1\"} 2\n",
			want: "duplicate series",
		},
		"bad escape": {
			in:   "# TYPE x counter\nx{a=\"b\\t\"} 1\n",
			want: "illegal escape",
		},
		"unterminated label": {
			in:   "# TYPE x counter\nx{a=\"b\n",
			want: "unterminated",
		},
		"bad value": {
			in:   "# TYPE x counter\nx one\n",
			want: "bad sample value",
		},
		"timestamp rejected": {
			in:   "# TYPE x counter\nx 1 1700000000\n",
			want: "timestamps unsupported",
		},
		"histogram not cumulative": {
			in: "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			want: "not cumulative",
		},
		"histogram missing +Inf": {
			in:   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			want: "missing le=\"+Inf\"",
		},
		"histogram +Inf != count": {
			in:   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			want: "!= _count",
		},
		"histogram missing sum": {
			in:   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			want: "missing _sum",
		},
		"histogram missing count": {
			in:   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\n",
			want: "missing _count",
		},
		"histogram no buckets": {
			in:   "# TYPE h histogram\nh_sum 1\nh_count 5\n",
			want: "no _bucket series",
		},
		"bucket without le": {
			in:   "# TYPE h histogram\nh_bucket{notle=\"1\"} 5\nh_sum 1\nh_count 5\n",
			want: "no le label",
		},
	}
	for name, tc := range cases {
		v := lintString(t, tc.in)
		found := false
		for _, msg := range v {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want violation containing %q, got %v", name, tc.want, v)
		}
	}
}

func TestLintEscapedLabelRoundTrip(t *testing.T) {
	in := "# TYPE x counter\nx{a=\"quote \\\" slash \\\\ nl \\n\"} 1\n"
	if v := lintString(t, in); len(v) != 0 {
		t.Errorf("escaped label flagged: %v", v)
	}
}
