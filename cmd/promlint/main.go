// Command promlint validates a Prometheus text-exposition (0.0.4)
// dump the way promtool check metrics would, without needing promtool
// in the image. It is the CI check behind afad's GET /metrics: curl
// the endpoint to a file, run promlint over it, and a malformed
// exposition — bad metric name, broken label escape, duplicate
// series, non-cumulative histogram buckets, a histogram missing its
// +Inf bucket, _count or _sum — fails the build.
//
// Usage:
//
//	promlint metrics.txt
//	curl -s localhost:8347/metrics | promlint -
//
// Exit status: 0 clean, 1 violations (listed one per line on stderr),
// 2 usage/IO error.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: promlint <file|->")
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	violations, err := lint(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// sample is one parsed exposition line.
type sample struct {
	line   int
	name   string
	labels map[string]string
	value  float64
}

// lint parses the exposition and returns every violation found. A
// non-nil error is an I/O failure, not a lint finding.
func lint(r io.Reader) ([]string, error) {
	var violations []string
	bad := func(line int, format string, args ...any) {
		violations = append(violations, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := map[string]string{} // family name -> declared type
	seen := map[string]int{}     // series key -> first line
	var samples []sample

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					bad(n, "malformed TYPE line: %q", line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !nameRe.MatchString(name) {
					bad(n, "TYPE for invalid metric name %q", name)
				}
				if !validTypes[typ] {
					bad(n, "unknown metric type %q", typ)
				}
				if prev, dup := types[name]; dup {
					bad(n, "duplicate TYPE for %q (already %s)", name, prev)
				}
				types[name] = typ
			}
			// HELP and free comments pass through unchecked.
			continue
		}
		s, perr := parseSample(line)
		if perr != nil {
			bad(n, "%v", perr)
			continue
		}
		s.line = n
		if !nameRe.MatchString(s.name) {
			bad(n, "invalid metric name %q", s.name)
		}
		for k := range s.labels {
			if !labelRe.MatchString(k) {
				bad(n, "invalid label name %q", k)
			}
		}
		key := seriesKey(s)
		if first, dup := seen[key]; dup {
			bad(n, "duplicate series %s (first at line %d)", key, first)
		} else {
			seen[key] = n
		}
		if familyOf(s.name, types) == "" {
			if _, declared := types[s.name]; !declared {
				bad(n, "sample %q has no preceding TYPE line", s.name)
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	violations = append(violations, checkHistograms(types, samples)...)
	return violations, nil
}

// familyOf maps a sample name to its declared histogram/summary family
// ("x_bucket"/"x_count"/"x_sum" -> "x") when one exists, else "".
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_count", "_sum"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t := types[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return ""
}

// parseSample splits `name{labels} value` (timestamp rejected: our
// exposition never emits one, and silently ignoring it would mask a
// formatting bug).
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value on sample line %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("unexpected trailing fields %q (timestamps unsupported)", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	s.value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block starting at rest[0] == '{'
// and returns the index just past the closing brace. Only \\, \" and
// \n escapes are legal inside a label value.
func parseLabels(rest string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '=' in %q", rest)
		}
		key := rest[i : i+eq]
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("unquoted value for label %q", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return 0, fmt.Errorf("unterminated value for label %q", key)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch rest[i+1] {
				case '\\', '"':
					val.WriteByte(rest[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("illegal escape \\%c in label %q", rest[i+1], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// seriesKey normalizes a sample to name{sorted labels} for duplicate
// detection.
func seriesKey(s sample) string {
	if len(s.labels) == 0 {
		return s.name
	}
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkHistograms enforces, per declared histogram family: buckets
// exist with parseable le labels, counts are cumulative in le order,
// the +Inf bucket exists and equals _count, and _sum is present.
func checkHistograms(types map[string]string, samples []sample) []string {
	var violations []string
	type hist struct {
		les      []float64
		counts   map[float64]float64
		count    float64
		hasCount bool
		hasSum   bool
	}
	hists := map[string]*hist{}
	for name, typ := range types {
		if typ == "histogram" {
			hists[name] = &hist{counts: map[float64]float64{}}
		}
	}
	for _, s := range samples {
		base := strings.TrimSuffix(s.name, "_bucket")
		if h, ok := hists[base]; ok && base != s.name {
			leStr, ok := s.labels["le"]
			if !ok {
				violations = append(violations, fmt.Sprintf("line %d: %s has no le label", s.line, s.name))
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				violations = append(violations, fmt.Sprintf("line %d: unparseable le=%q", s.line, leStr))
				continue
			}
			h.les = append(h.les, le)
			h.counts[le] = s.value
			continue
		}
		if h, ok := hists[strings.TrimSuffix(s.name, "_count")]; ok && strings.HasSuffix(s.name, "_count") {
			h.hasCount, h.count = true, s.value
		}
		if h, ok := hists[strings.TrimSuffix(s.name, "_sum")]; ok && strings.HasSuffix(s.name, "_sum") {
			h.hasSum = true
		}
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if len(h.les) == 0 {
			violations = append(violations, fmt.Sprintf("histogram %s has no _bucket series", name))
			continue
		}
		sort.Float64s(h.les)
		prev := math.Inf(-1)
		last := 0.0
		for _, le := range h.les {
			c := h.counts[le]
			if c < last {
				violations = append(violations,
					fmt.Sprintf("histogram %s: bucket le=%g count %g below previous %g (not cumulative)", name, le, c, last))
			}
			last, prev = c, le
		}
		if !math.IsInf(prev, 1) {
			violations = append(violations, fmt.Sprintf("histogram %s missing le=\"+Inf\" bucket", name))
		} else if h.hasCount && h.counts[prev] != h.count {
			violations = append(violations,
				fmt.Sprintf("histogram %s: le=\"+Inf\" bucket %g != _count %g", name, h.counts[prev], h.count))
		}
		if !h.hasCount {
			violations = append(violations, fmt.Sprintf("histogram %s missing _count", name))
		}
		if !h.hasSum {
			violations = append(violations, fmt.Sprintf("histogram %s missing _sum", name))
		}
	}
	return violations
}
