// Command afad is the AFA daemon: a long-running HTTP/JSON service
// that accepts (correct digest, faulty digest set) attack jobs,
// batches jobs of the same encoding shape onto shared CNF templates,
// solves them on a worker pool, and persists every job transition so a
// killed daemon resumes its queue on restart.
//
// Usage:
//
//	afad -addr :8347 -state /var/lib/afad -workers 2
//	afad -genjob -mode SHA3-224 -model byte -faults 32 -seed 5
//
// Endpoints (see internal/service):
//
//	POST /v1/jobs             submit a job, 202 + snapshot
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        poll one job
//	GET  /v1/jobs/{id}/events JSONL event tail
//	GET  /v1/jobs/{id}/flight flight record of the last hard-failing attempt
//	GET  /v1/quarantine       poison jobs (exhausted retries / repeated panics)
//	GET  /metrics             Prometheus text exposition (histograms included)
//	GET  /healthz             liveness + drain state
//	     /debug/...           metrics/trace/pprof (always on)
//
// Every job carries a trace ID — honoured from the client's
// X-Afa-Trace-Id header or minted at submit — that is stamped on every
// observability event the job generates (queue admission, lease
// acquire/steal, each attempt, template encode, solver spans, terminal
// settle, GC), so one grep over the -trace sinks of every daemon that
// ever touched the job reconstructs its full lifecycle.
//
// Execution is fault-tolerant: every running job is covered by a lease
// on the state directory (-lease-ttl, heartbeated at a third of that),
// so a killed or hung daemon never strands work — its own next life,
// or a second afad sharing the state directory, reaps the stale lease
// and re-runs the job. Failed attempts retry with jittered exponential
// backoff (-retry-base/-retry-max) up to -max-attempts, after which
// the job is quarantined with its last error and partial checkpoint.
// Old terminal records can be garbage-collected with -gc-max-age.
//
// SIGINT/SIGTERM starts a graceful drain: submits get 503, queued jobs
// stay persisted for the next start, in-flight jobs get -drain-timeout
// to finish before they are checkpointed back to the queue.
//
// -genjob does not start a daemon: it simulates a fault-injection
// campaign (like cmd/afa would) and prints the resulting JobSpec JSON
// to stdout — a self-contained way to produce a valid request body for
// smoke tests and benchmarks.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8347", "HTTP listen address")
	state := flag.String("state", "afad-state", "state directory (job store + event tails)")
	workers := flag.Int("workers", 1, "concurrent solver workers")
	queueDepth := flag.Int("queue-depth", 64, "queued-job bound before submits get 429")
	batchMax := flag.Int("batch-max", 8, "max jobs per shared-template batch")
	rate := flag.Float64("rate", 0, "submits/second per client (0 = unlimited)")
	burst := flag.Float64("burst", 8, "per-client token-bucket burst")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight jobs on shutdown")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "heartbeat staleness after which any daemon may steal a job")
	maxAttempts := flag.Int("max-attempts", 3, "default attempt budget before a failing job is quarantined")
	retryBase := flag.Duration("retry-base", 500*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
	retryMax := flag.Duration("retry-max", 30*time.Second, "retry backoff cap")
	gcMaxAge := flag.Duration("gc-max-age", 0, "prune terminal jobs older than this (0 = keep forever)")
	shedWatermark := flag.Int("shed-watermark", 0, "queue depth above which priority<=0 submits are shed (0 = 3/4 of queue-depth)")
	noBatch := flag.Bool("no-batching", false, "encode every job from scratch (template batching off)")
	traceFile := flag.String("trace", "", "stream daemon observability events to this JSONL file")
	flightCap := flag.Int("flight-cap", 256, "per-attempt flight-recorder ring size (<0 disables flight records)")
	chaos := flag.Float64("chaos", 0, "DEV ONLY: inject faults (panics, hangs, dropped heartbeats) into this fraction of first attempts")
	chaosSeed := flag.Int64("chaos-seed", 1, "with -chaos: deterministic injection seed")

	genjob := flag.Bool("genjob", false, "print a simulated JobSpec JSON and exit (no daemon)")
	modeName := flag.String("mode", "SHA3-224", "with -genjob: SHA-3 mode")
	modelName := flag.String("model", "byte", "with -genjob: fault model")
	faults := flag.Int("faults", 32, "with -genjob: number of injected faults")
	seed := flag.Int64("seed", 1, "with -genjob: campaign seed")
	knownPos := flag.Bool("known-position", true, "with -genjob: include true fault windows")
	maxCandidates := flag.Int("max-candidates", 64, "with -genjob: candidate budget for one-shot solving")
	flag.Parse()

	if *genjob {
		return genJob(*modeName, *modelName, *faults, *seed, *knownPos, *maxCandidates)
	}

	// The daemon always runs with a recorder so GET /metrics (and the
	// queue-wait/attempt histograms behind it) is live out of the box;
	// -trace adds a JSONL sink and -debug the /debug/ endpoints on top.
	var sink io.Writer
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer tf.Close()
		sink = tf
	}
	rec := obs.NewTrace(sink, 4096)
	defer func() {
		if err := rec.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "trace sink error:", err)
		}
	}()
	opts := service.Options{
		StateDir:        *state,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		BatchMax:        *batchMax,
		Rate:            *rate,
		Burst:           *burst,
		DrainTimeout:    *drainTimeout,
		LeaseTTL:        *leaseTTL,
		MaxAttempts:     *maxAttempts,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		GCMaxAge:        *gcMaxAge,
		ShedWatermark:   *shedWatermark,
		DisableBatching: *noBatch,
		Recorder:        rec,
		FlightCap:       *flightCap,
	}
	if *chaos > 0 {
		fmt.Fprintf(os.Stderr, "afad: CHAOS MODE: injecting faults into %.0f%% of first attempts (seed %d)\n", *chaos*100, *chaosSeed)
		opts.Chaos = &service.Chaos{
			Seed:         *chaosSeed,
			PanicFrac:    *chaos,
			SlowFrac:     *chaos,
			SlowBy:       2 * *leaseTTL, // long enough to look hung and lose the lease
			DropBeatFrac: *chaos,
		}
	}

	d, err := service.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := service.NewServer(d)
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("afad listening on http://%s (state %s, %d workers)\n", bound, *state, *workers)

	// First SIGINT/SIGTERM drains gracefully; a second falls through to
	// the runtime's default hard kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	<-ctx.Done()
	stopSignals()

	fmt.Fprintln(os.Stderr, "afad: draining (queued jobs stay persisted; submits now get 503)")
	d.Drain()
	srv.Close()
	fmt.Fprintln(os.Stderr, "afad: drained cleanly")
	return 0
}

// genJob simulates a fault campaign and prints the JobSpec a client
// would POST for it, so smoke tests and benchmarks have a one-command
// source of valid, ground-truthed request bodies.
func genJob(modeName, modelName string, faults int, seed int64, knownPos bool, maxCandidates int) int {
	mode, err := keccak.ParseMode(modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	model, err := fault.Parse(modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	msg := []byte(fmt.Sprintf("afad genjob %s seed %d", mode, seed))
	correct, injs := fault.Campaign(mode, msg, model, 22, faults, seed)
	spec := service.JobSpec{
		Mode:          mode.String(),
		Model:         model.String(),
		CorrectDigest: hex.EncodeToString(correct),
		KnownPosition: knownPos,
		MaxCandidates: maxCandidates,
	}
	for _, inj := range injs {
		spec.FaultyDigests = append(spec.FaultyDigests, hex.EncodeToString(inj.FaultyDigest))
		if knownPos {
			spec.Windows = append(spec.Windows, inj.Fault.Window)
		}
	}
	// The message is ground truth for smoke tests: a recovered job's
	// "message" field must match it (and rehash to correct_digest).
	fmt.Fprintf(os.Stderr, "genjob: message %q, digest %s\n", msg, spec.CorrectDigest)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
