// Command faultsim simulates fault-injection campaigns and prints
// differential statistics: how faults of each model diffuse into the
// digest, and how often the digest difference betrays the fault
// (the observability side of the paper's fault-model discussion).
//
// Usage:
//
//	faultsim -mode SHA3-256 -model byte -trials 1000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	modeName := flag.String("mode", "SHA3-256", "SHA-3 mode")
	modelName := flag.String("model", "byte", "fault model")
	trials := flag.Int("trials", 1000, "number of injections")
	round := flag.Int("round", 22, "fault round (θ input)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	flag.Parse()

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	model, err := fault.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	inj := fault.NewInjector(model, *seed+1)
	d := mode.DigestBits()

	var totalDiff, silent, minDiff, maxDiff int
	minDiff = d + 1
	hist := make([]int, 11) // deciles of digest difference weight
	for i := 0; i < *trials; i++ {
		msg := make([]byte, 1+rng.Intn(mode.RateBytes()-1))
		rng.Read(msg)
		correct := keccak.Sum(mode, msg)
		delta := inj.Sample().Delta()
		faulty := keccak.HashWithFault(mode, msg, *round, &delta)
		diff := 0
		for j := 0; j < d; j++ {
			if keccak.DigestBitsOf(correct, j) != keccak.DigestBitsOf(faulty, j) {
				diff++
			}
		}
		totalDiff += diff
		if diff == 0 {
			silent++
		}
		if diff < minDiff {
			minDiff = diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
		hist[diff*10/d]++
	}

	fmt.Printf("fault diffusion: %s, %s model, fault at θ input of round %d, %d trials\n",
		mode, model, *round, *trials)
	fmt.Printf("  digest bits: %d\n", d)
	fmt.Printf("  mean digest difference weight: %.1f bits (%.1f%%)\n",
		float64(totalDiff)/float64(*trials), 100*float64(totalDiff)/float64(*trials)/float64(d))
	fmt.Printf("  min/max difference weight: %d / %d\n", minDiff, maxDiff)
	fmt.Printf("  silent faults (digest unchanged): %d (%.2f%%)\n",
		silent, 100*float64(silent)/float64(*trials))
	fmt.Println("  difference-weight histogram (fraction of digest):")
	for i, c := range hist {
		fmt.Printf("    %3d–%3d%%: %d\n", i*10, (i+1)*10, c)
	}
}
