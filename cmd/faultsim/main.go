// Command faultsim simulates fault-injection campaigns and prints
// differential statistics: how faults of each model diffuse into the
// digest, and how often the digest difference betrays the fault
// (the observability side of the paper's fault-model discussion).
//
// Usage:
//
//	faultsim -mode SHA3-256 -model byte -trials 1000
//	faultsim -model byte -noise-dud 0.1 -noise-violation 0.05
//
// The -noise-* flags degrade the injector the way an imperfect glitch
// setup would (failed injections, out-of-model corruptions) and report
// per-kind statistics alongside the diffusion histogram.
//
// -trace out.jsonl streams one "faultsim.trial" event per injection
// (kind, digest difference weight) plus a closing "faultsim.summary"
// event, in the same JSONL schema the other commands emit (see
// internal/obs).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

func main() {
	modeName := flag.String("mode", "SHA3-256", "SHA-3 mode")
	modelName := flag.String("model", "byte", "fault model")
	trials := flag.Int("trials", 1000, "number of injections")
	round := flag.Int("round", 22, "fault round (θ input)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	noiseDud := flag.Float64("noise-dud", 0, "probability an injection fails outright (dud)")
	noiseViolation := flag.Float64("noise-violation", 0, "probability an injection violates the fault model")
	traceFile := flag.String("trace", "", "stream per-trial injection events to this JSONL file")
	flag.Parse()

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	model, err := fault.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	noise := fault.Noise{Dud: *noiseDud, Violation: *noiseViolation}
	if err := noise.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var rec *obs.Trace
	if *traceFile != "" {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer tf.Close()
		rec = obs.NewTrace(tf, 0)
	}

	rng := rand.New(rand.NewSource(*seed))
	inj := fault.NewNoisyInjector(model, *seed+1, noise)
	d := mode.DigestBits()

	var totalDiff, silent, minDiff, maxDiff int
	var duds, violations, wrongRound int
	minDiff = d + 1
	hist := make([]int, 11) // deciles of digest difference weight
	for i := 0; i < *trials; i++ {
		msg := make([]byte, 1+rng.Intn(mode.RateBytes()-1))
		rng.Read(msg)
		correct := keccak.Sum(mode, msg)
		_, delta, roundOff, kind := inj.SampleNoisy()
		var faulty []byte
		switch kind {
		case fault.Dud:
			duds++
			faulty = correct
		case fault.Violation:
			violations++
			if roundOff != 0 {
				wrongRound++
			}
			faulty = keccak.HashWithFault(mode, msg, *round+roundOff, &delta)
		default:
			faulty = keccak.HashWithFault(mode, msg, *round, &delta)
		}
		diff := 0
		for j := 0; j < d; j++ {
			if keccak.DigestBitsOf(correct, j) != keccak.DigestBitsOf(faulty, j) {
				diff++
			}
		}
		totalDiff += diff
		if diff == 0 {
			silent++
		}
		if diff < minDiff {
			minDiff = diff
		}
		if diff > maxDiff {
			maxDiff = diff
		}
		hist[diff*10/d]++
		if rec != nil {
			rec.Emit("faultsim", "faultsim.trial",
				obs.F("trial", i),
				obs.F("kind", kind.String()),
				obs.F("diff_bits", diff),
				obs.F("round_off", roundOff))
		}
	}
	if rec != nil {
		rec.Emit("faultsim", "faultsim.summary",
			obs.F("mode", mode.String()),
			obs.F("model", model.String()),
			obs.F("trials", *trials),
			obs.F("duds", duds),
			obs.F("violations", violations),
			obs.F("wrong_round", wrongRound),
			obs.F("silent", silent),
			obs.F("mean_diff_bits", float64(totalDiff)/float64(*trials)))
		if err := rec.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "trace sink error:", err)
		}
	}

	fmt.Printf("fault diffusion: %s, %s model, fault at θ input of round %d, %d trials\n",
		mode, model, *round, *trials)
	fmt.Printf("  digest bits: %d\n", d)
	if noise.Enabled() {
		fmt.Printf("  injection noise: %s\n", noise)
		fmt.Printf("  duds: %d (%.1f%%), violations: %d (%.1f%%, %d wrong-round)\n",
			duds, 100*float64(duds)/float64(*trials),
			violations, 100*float64(violations)/float64(*trials), wrongRound)
	}
	fmt.Printf("  mean digest difference weight: %.1f bits (%.1f%%)\n",
		float64(totalDiff)/float64(*trials), 100*float64(totalDiff)/float64(*trials)/float64(d))
	fmt.Printf("  min/max difference weight: %d / %d\n", minDiff, maxDiff)
	fmt.Printf("  silent faults (digest unchanged): %d (%.2f%%)\n",
		silent, 100*float64(silent)/float64(*trials))
	fmt.Println("  difference-weight histogram (fraction of digest):")
	for i, c := range hist {
		fmt.Printf("    %3d–%3d%%: %d\n", i*10, (i+1)*10, c)
	}
}
