package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/service"
)

// serviceFile is the BENCH_service.json schema: one 32-job burst
// through the full HTTP daemon stack, with template batching on and
// off. The workload is a deterministic set of quickly-refutable
// known-position jobs, so the numbers measure the service machinery
// (queueing, template sharing, persistence, HTTP) plus a bounded,
// reproducible amount of solving — not an open-ended SAT search.
type serviceFile struct {
	Generated   string       `json:"generated"`
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	Jobs        int          `json:"jobs"`
	Workers     int          `json:"workers"`
	Batched     serviceStats `json:"batched"`
	Unbatched   serviceStats `json:"unbatched"`
	SpeedupPct  float64      `json:"speedup_pct"`  // wall-clock gain of batching
	EncodeSaved int          `json:"encode_saved"` // per-job encode passes replaced by template instantiations
}

type serviceStats struct {
	TotalMs    float64 `json:"total_ms"`     // burst submit to last job done
	JobsPerSec float64 `json:"jobs_per_sec"` //
	P50Ms      float64 `json:"p50_ms"`       // per-job submit-to-done latency
	P95Ms      float64 `json:"p95_ms"`       //
}

// burstSpecs builds the deterministic 32-job workload: two encoding
// shapes (so batching exercises more than one template), inconsistent
// observations (digests of unrelated messages) that refute quickly
// under known positions.
func burstSpecs(n int) []service.JobSpec {
	specs := make([]service.JobSpec, n)
	for i := range specs {
		mode := keccak.SHA3_224
		if i%2 == 1 {
			mode = keccak.SHA3_512
		}
		salt := fmt.Sprintf("bench job %d", i)
		specs[i] = service.JobSpec{
			Mode:          mode.String(),
			Model:         "1-bit",
			CorrectDigest: hex.EncodeToString(keccak.Sum(mode, []byte("correct "+salt))),
			FaultyDigests: []string{
				hex.EncodeToString(keccak.Sum(mode, []byte("bogus a "+salt))),
				hex.EncodeToString(keccak.Sum(mode, []byte("bogus b "+salt))),
			},
			KnownPosition: true,
			Windows:       []int{0, 1},
		}
	}
	return specs
}

// runBurst pushes the whole burst through a fresh daemon over HTTP and
// reports wall-clock plus per-job latencies. A non-nil rec attaches
// the full observability stack (trace IDs, histograms, JSONL sink).
func runBurst(specs []service.JobSpec, disableBatching bool, rec *obs.Trace) (serviceStats, error) {
	var st serviceStats
	dir, err := os.MkdirTemp("", "benchsvc")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)
	d, err := service.New(service.Options{
		StateDir:        dir,
		Workers:         1,
		QueueDepth:      len(specs) + 1,
		DisableBatching: disableBatching,
		Recorder:        rec,
	})
	if err != nil {
		return st, err
	}
	srv := service.NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return st, err
	}
	defer srv.Close()
	base := "http://" + addr

	t0 := time.Now()
	ids := make([]string, 0, len(specs))
	for _, s := range specs {
		body, _ := json.Marshal(s)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return st, err
		}
		var j service.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return st, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		ids = append(ids, j.ID)
	}

	latencies := make([]float64, 0, len(ids))
	for {
		latencies = latencies[:0]
		finished := 0
		for _, id := range ids {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				return st, err
			}
			var j service.Job
			err = json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			if err != nil {
				return st, err
			}
			switch j.State {
			case service.StateDone:
				finished++
				latencies = append(latencies, float64(j.Finished.Sub(j.Submitted))/float64(time.Millisecond))
			case service.StateFailed, service.StateQuarantined:
				return st, fmt.Errorf("job %s %s: %s", id, j.State, j.Error)
			}
		}
		if finished == len(ids) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	total := time.Since(t0)
	d.Drain()

	sort.Float64s(latencies)
	st.TotalMs = float64(total) / float64(time.Millisecond)
	st.JobsPerSec = float64(len(ids)) / total.Seconds()
	st.P50Ms = latencies[len(latencies)/2]
	st.P95Ms = latencies[len(latencies)*95/100]
	return st, nil
}

// obsServiceFile is the optional service section of BENCH_obs.json:
// the 32-job burst run with the daemon recorder off and on.
type obsServiceFile struct {
	Jobs          int     `json:"jobs"`
	RecorderOffMs float64 `json:"recorder_off_ms"`
	RecorderOnMs  float64 `json:"recorder_on_ms"`
	OverheadPct   float64 `json:"overhead_pct"`
}

// runServiceObs measures what the full observability stack costs on
// the daemon's submit-to-done path: the batched burst with no recorder
// versus with an obs.Trace whose sink is io.Discard (trace-ID tagging,
// per-event fan-out to three recorders, histogram observes, JSONL
// marshalling — everything but real disk I/O). Adjacent off/on pairs
// and a median ratio, for the same reasons as the solver comparison.
func runServiceObs() (*obsServiceFile, error) {
	specs := burstSpecs(32)
	const reps = 3
	var offTotal, onTotal float64
	ratios := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		off, err := runBurst(specs, false, nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "service-obs rep %d: recorder-off %.0fms\n", rep+1, off.TotalMs)
		on, err := runBurst(specs, false, obs.NewTrace(io.Discard, 4096))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "service-obs rep %d: recorder-on  %.0fms (pair ratio %+.2f%%)\n",
			rep+1, on.TotalMs, 100*(on.TotalMs-off.TotalMs)/off.TotalMs)
		offTotal += off.TotalMs
		onTotal += on.TotalMs
		ratios = append(ratios, on.TotalMs/off.TotalMs)
	}
	sort.Float64s(ratios)
	return &obsServiceFile{
		Jobs:          len(specs),
		RecorderOffMs: offTotal / reps,
		RecorderOnMs:  onTotal / reps,
		OverheadPct:   100 * (ratios[len(ratios)/2] - 1),
	}, nil
}

// runServiceBench measures the 32-job burst with batching on and off
// and writes BENCH_service.json. With a baseline file, the batched
// throughput is gated: a regression beyond maxRegress percent fails
// the run — the CI tripwire that the fault-tolerance machinery (leases,
// heartbeats, retry bookkeeping) stays off the hot path.
func runServiceBench(out, baseline string, maxRegress float64) int {
	specs := burstSpecs(32)
	fmt.Fprintln(os.Stderr, "service burst: 32 jobs, batching off (per-job encode) ...")
	unbatched, err := runBurst(specs, true, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "  total %.0fms, %.2f jobs/s, p50 %.0fms p95 %.0fms\n",
		unbatched.TotalMs, unbatched.JobsPerSec, unbatched.P50Ms, unbatched.P95Ms)
	fmt.Fprintln(os.Stderr, "service burst: 32 jobs, batching on (shared templates) ...")
	batched, err := runBurst(specs, false, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "  total %.0fms, %.2f jobs/s, p50 %.0fms p95 %.0fms\n",
		batched.TotalMs, batched.JobsPerSec, batched.P50Ms, batched.P95Ms)

	file := serviceFile{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Jobs:        len(specs),
		Workers:     1,
		Batched:     batched,
		Unbatched:   unbatched,
		SpeedupPct:  100 * (unbatched.TotalMs - batched.TotalMs) / unbatched.TotalMs,
		EncodeSaved: len(specs) - 2, // 2 shapes in the burst -> 2 template encodes replace 32 per-job encodes
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("wrote %s: batched %.2f jobs/s vs unbatched %.2f jobs/s (%.1f%% faster)\n",
		out, file.Batched.JobsPerSec, file.Unbatched.JobsPerSec, file.SpeedupPct)
	if baseline != "" {
		return gateServiceBench(baseline, file.Batched.JobsPerSec, maxRegress)
	}
	return 0
}

// gateServiceBench compares the new batched throughput against the
// committed baseline file and fails when it regressed beyond the
// budget. Throughput *gains* only update the committed file when
// someone reruns the bench and commits it — the gate is one-sided.
func gateServiceBench(baseline string, got float64, maxRegress float64) int {
	data, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		return 1
	}
	var base serviceFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		return 1
	}
	want := base.Batched.JobsPerSec
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "baseline %s has no batched jobs/s\n", baseline)
		return 1
	}
	delta := 100 * (got - want) / want
	fmt.Printf("service bench gate: %.2f jobs/s vs baseline %.2f (%+.1f%%, budget -%.0f%%)\n",
		got, want, delta, maxRegress)
	if delta < -maxRegress {
		fmt.Fprintf(os.Stderr, "service throughput regressed %.1f%% (budget %.0f%%)\n", -delta, maxRegress)
		return 1
	}
	return 0
}
