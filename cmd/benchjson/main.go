// Command benchjson measures the solver benchmark trajectory and
// writes it as machine-readable JSON (BENCH_solver.json). It re-runs
// the same workloads as the testing benchmarks — a propagation-heavy
// pigeonhole instance, a planted random 3-SAT instance, the fixed
// attack CNF behind BenchmarkSolveAttackInstance, and the clause-
// sharing portfolio — through testing.Benchmark so ns/op, bytes/op
// and allocs/op are measured the standard way.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_solver.json        # full run
//	go run ./cmd/benchjson -short -out BENCH_ci.json     # CI smoke
//
// -short drops the attack-CNF workloads (minutes of solving) so CI
// can validate the harness and the JSON schema in seconds.
//
// -obs FILE switches to the instrumentation-overhead guard: the same
// workload is solved with the observability recorder detached and
// attached, the comparison is written to FILE (BENCH_obs.json), and
// the process exits non-zero when the attached run is more than
// -max-overhead percent slower — the CI tripwire for internal/obs's
// "disabled path costs one branch" contract. Adding -service-obs
// extends the guard to the daemon path: the 32-job HTTP burst runs
// with the full recorder (trace IDs, histograms, per-job tails) on and
// off, and the median pair overhead is held to the same budget.
//
// -service FILE switches to the daemon throughput benchmark: a 32-job
// burst through the full HTTP service stack (internal/service), run
// with template batching on and off, written as BENCH_service.json
// (jobs/sec plus p50/p95 submit-to-done latency per variant). Adding
// -service-baseline BENCH_service.json gates the run: batched jobs/s
// more than -max-regress percent below the committed baseline exits
// non-zero — the tripwire that keeps the daemon's fault-tolerance
// bookkeeping off the submit-to-done hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

// benchResult is one row of the trajectory file.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchFile struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Short     bool          `json:"short"`
	Results   []benchResult `json:"results"`
}

func main() {
	short := flag.Bool("short", false, "skip the attack-CNF workloads (CI smoke)")
	out := flag.String("out", "BENCH_solver.json", "output JSON path")
	obsOut := flag.String("obs", "", "write a recorder-on vs recorder-off overhead comparison to this JSON path and exit")
	maxOverhead := flag.Float64("max-overhead", 5, "with -obs: exit non-zero when recorder overhead exceeds this percentage")
	serviceObs := flag.Bool("service-obs", false, "with -obs: also measure daemon recorder overhead (32-job HTTP burst, histograms+trace on vs off) under the same gate")
	serviceOut := flag.String("service", "", "write a daemon throughput benchmark (32-job burst, batched vs unbatched) to this JSON path and exit")
	serviceBaseline := flag.String("service-baseline", "", "with -service: fail when batched jobs/s regresses more than -max-regress vs this committed BENCH_service.json")
	maxRegress := flag.Float64("max-regress", 5, "with -service-baseline: allowed throughput regression percentage")
	flag.Parse()

	if *obsOut != "" {
		os.Exit(runObsComparison(*obsOut, *short, *maxOverhead, *serviceObs))
	}
	if *serviceOut != "" {
		os.Exit(runServiceBench(*serviceOut, *serviceBaseline, *maxRegress))
	}

	var results []benchResult
	measure := func(name string, fn func(b *testing.B)) {
		fmt.Fprintf(os.Stderr, "running %s ...\n", name)
		r := testing.Benchmark(fn)
		results = append(results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "  %d iters, %.3fms/op, %d B/op, %d allocs/op\n",
			r.N, float64(r.T.Nanoseconds())/float64(r.N)/1e6, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	php := pigeonhole(7)
	measure("PropagatePigeonhole7", solveBench(php, sat.Unsat))

	planted := planted3SAT(600, 2400, 11)
	measure("Planted3SAT600", solveBench(planted, sat.Sat))

	if !*short {
		attack := attackFormula(8)
		measure("SolveAttackInstance", solveBench(attack, sat.Sat))
		measure("PortfolioAttack2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := portfolio.Solve(attack, portfolio.Options{Workers: 2})
				if res.Status != sat.Sat {
					b.Fatalf("portfolio: %v", res.Status)
				}
			}
		})
	} else {
		measure("PortfolioPlanted2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := portfolio.Solve(planted, portfolio.Options{Workers: 2})
				if res.Status != sat.Sat {
					b.Fatalf("portfolio: %v", res.Status)
				}
			}
		})
	}

	file := benchFile{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Short:     *short,
		Results:   results,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}

// obsFile is the BENCH_obs.json schema: one workload solved twice,
// with the recorder detached and attached. The optional service
// section (-service-obs) runs the same comparison over the daemon's
// HTTP burst so the tracing/histogram path is gated too.
type obsFile struct {
	Generated      string          `json:"generated"`
	GoVersion      string          `json:"go_version"`
	NumCPU         int             `json:"num_cpu"`
	Short          bool            `json:"short"`
	Workload       string          `json:"workload"`
	RecorderOffNs  float64         `json:"recorder_off_ns"`
	RecorderOnNs   float64         `json:"recorder_on_ns"`
	OverheadPct    float64         `json:"overhead_pct"`
	MaxOverheadPct float64         `json:"max_overhead_pct"`
	Service        *obsServiceFile `json:"service,omitempty"`
}

// runObsComparison measures the observability overhead: the same
// workload solved with no recorder versus with a ring-only obs.Trace
// attached (JSONL sink = io.Discard, the most expensive attached
// configuration that stays I/O-free). Variants run as adjacent
// off/on pairs; the gate compares the median per-pair ratio while
// recorder_{off,on}_ns record the per-variant means.
func runObsComparison(out string, short bool, maxPct float64, withService bool) int {
	workload := "SolveAttackInstance"
	f := attackFormula(8)
	want := sat.Sat
	if short {
		workload = "Planted3SAT600"
		f = planted3SAT(600, 2400, 11)
	}
	off := solveBench(f, want)
	on := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sat.FromFormula(f, sat.Options{})
			s.SetRecorder(obs.NewTrace(io.Discard, 256), "sat")
			if st := s.Solve(); st != want {
				b.Fatalf("status = %v, want %v", st, want)
			}
		}
	}
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// The solver is deterministic, so all run-to-run variance is
	// environmental — machine-speed drift swings identical runs by
	// >10%, far above any true recorder overhead. Two defenses: the
	// variants run as adjacent off/on pairs (drift within a pair mostly
	// cancels in its ratio), and the gate uses the *median* of the
	// per-pair ratios, which votes out pairs that straddled a speed
	// step. Means/mins across independent samples fail here — each
	// side just fishes for its own lucky outlier.
	reps := 5
	if !short {
		reps = 3 // each full pair is ~45s of solving
	}
	var offTotal, onTotal float64
	ratios := make([]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		o := nsPerOp(testing.Benchmark(off))
		fmt.Fprintf(os.Stderr, "obs rep %d: %s recorder-off %.3fms\n", rep+1, workload, o/1e6)
		n := nsPerOp(testing.Benchmark(on))
		fmt.Fprintf(os.Stderr, "obs rep %d: %s recorder-on  %.3fms (pair ratio %+.2f%%)\n",
			rep+1, workload, n/1e6, 100*(n-o)/o)
		offTotal += o
		onTotal += n
		ratios = append(ratios, n/o)
	}
	sort.Float64s(ratios)
	overhead := 100 * (ratios[len(ratios)/2] - 1)
	offNs := offTotal / float64(reps)
	onNs := onTotal / float64(reps)
	file := obsFile{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Short:          short,
		Workload:       workload,
		RecorderOffNs:  offNs,
		RecorderOnNs:   onNs,
		OverheadPct:    overhead,
		MaxOverheadPct: maxPct,
	}
	if withService {
		svc, err := runServiceObs()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		file.Service = svc
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("wrote %s: %s off=%.3fms on=%.3fms overhead=%+.2f%%\n",
		out, workload, offNs/1e6, onNs/1e6, overhead)
	if overhead > maxPct {
		fmt.Fprintf(os.Stderr, "observability overhead %.2f%% exceeds the %.0f%% budget\n", overhead, maxPct)
		return 1
	}
	if file.Service != nil {
		fmt.Printf("  service burst (%d jobs): off=%.0fms on=%.0fms overhead=%+.2f%%\n",
			file.Service.Jobs, file.Service.RecorderOffMs, file.Service.RecorderOnMs, file.Service.OverheadPct)
		if file.Service.OverheadPct > maxPct {
			fmt.Fprintf(os.Stderr, "service observability overhead %.2f%% exceeds the %.0f%% budget\n",
				file.Service.OverheadPct, maxPct)
			return 1
		}
	}
	return 0
}

// solveBench returns a benchmark that solves the formula from scratch
// each iteration and checks the expected status.
func solveBench(f *cnf.Formula, want sat.Status) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := sat.FromFormula(f, sat.Options{})
			if st := s.Solve(); st != want {
				b.Fatalf("status = %v, want %v", st, want)
			}
		}
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons into n holes, UNSAT and
// dominated by binary at-most-one clauses — the propagation-heavy
// workload the arena fast path targets.
func pigeonhole(n int) *cnf.Formula {
	f := cnf.New()
	v := func(p, h int) int { return p*n + h + 1 }
	f.NewVars((n + 1) * n)
	for p := 0; p <= n; p++ {
		cl := make([]int, n)
		for h := 0; h < n; h++ {
			cl[h] = v(p, h)
		}
		f.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

// planted3SAT builds a random 3-SAT instance with a planted solution,
// so it is guaranteed satisfiable at any clause density.
func planted3SAT(vars, clauses int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	plant := make([]bool, vars+1)
	for v := 1; v <= vars; v++ {
		plant[v] = rng.Intn(2) == 0
	}
	f := cnf.New()
	f.NewVars(vars)
	for c := 0; c < clauses; c++ {
		var lits [3]int
		for {
			ok := false
			for i := range lits {
				v := rng.Intn(vars) + 1
				if rng.Intn(2) == 0 {
					lits[i] = v
					ok = ok || plant[v]
				} else {
					lits[i] = -v
					ok = ok || !plant[v]
				}
			}
			if ok { // at least one literal agrees with the planted model
				break
			}
		}
		f.AddClause(lits[:]...)
	}
	return f
}

// attackFormula builds the fixed satisfiable SHA3-512 byte-model
// attack instance used by BenchmarkSolveAttackInstance (same message,
// campaign seed and fault budget).
func attackFormula(faults int) *cnf.Formula {
	msg := []byte("portfolio bench instance")
	correct, injs := fault.Campaign(keccak.SHA3_512, msg, fault.Byte, 22, faults, 12000)
	b := core.NewBuilder(core.DefaultConfig(keccak.SHA3_512, fault.Byte))
	if err := b.AddCorrect(correct); err != nil {
		panic(err)
	}
	for _, inj := range injs {
		if err := b.AddFaulty(inj.FaultyDigest, -1); err != nil {
			panic(err)
		}
	}
	return b.Formula()
}
