// Command keccak-trace dumps the round-by-round internal states of
// the final Keccak permutation of a hash computation — the ground
// truth the fault analysis recovers. Useful for debugging attack
// encodings and for teaching the round structure.
//
// Usage:
//
//	echo -n "message" | keccak-trace -mode SHA3-256 -rounds 22,23
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sha3afa/internal/keccak"
)

func main() {
	modeName := flag.String("mode", "SHA3-256", "SHA-3 mode")
	roundsArg := flag.String("rounds", "", "comma-separated round entries to print (default: all); 24 = output")
	chiInput := flag.Bool("chi-input", false, "also print χ inputs (the attack's recovery target)")
	flag.Parse()

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	msg, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var rounds []int
	if *roundsArg == "" {
		for r := 0; r <= keccak.NumRounds; r++ {
			rounds = append(rounds, r)
		}
	} else {
		for _, tok := range strings.Split(*roundsArg, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || r < 0 || r > keccak.NumRounds {
				fmt.Fprintf(os.Stderr, "bad round %q\n", tok)
				os.Exit(2)
			}
			rounds = append(rounds, r)
		}
	}

	tr := keccak.TraceHash(mode, msg)
	fmt.Printf("%s of %d input bytes; digest = %x\n\n", mode, len(msg), tr.Digest)
	for _, r := range rounds {
		if r < keccak.NumRounds {
			fmt.Printf("-- θ input of round %d --\n%s\n", r, tr.Rounds[r].String())
			if *chiInput {
				ci := tr.ChiInput(r)
				fmt.Printf("-- χ input of round %d --\n%s\n", r, ci.String())
			}
		} else {
			fmt.Printf("-- permutation output --\n%s\n", tr.Rounds[r].String())
		}
	}
}
