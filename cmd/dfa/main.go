// Command dfa runs the differential fault analysis baseline against a
// simulated campaign, reporting identification statistics and the
// recovery trajectory — the comparison column of the paper's tables.
//
// Usage:
//
//	dfa -mode SHA3-512 -model 1-bit -seed 1 -max-faults 400
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	modeName := flag.String("mode", "SHA3-512", "SHA-3 mode to attack")
	modelName := flag.String("model", "1-bit", "fault model: 1-bit or byte (wider models are infeasible for DFA)")
	seed := flag.Int64("seed", 1, "campaign seed")
	maxFaults := flag.Int("max-faults", 400, "fault budget")
	flag.Parse()

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	model, err := fault.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the fault stream cleanly (supervisors send
	// SIGTERM); a second signal falls back to the runtime's hard kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	campaign.SetContext(ctx)

	fmt.Printf("DFA on %s under the %s fault model (seed %d, budget %d faults)\n",
		mode, model, *seed, *maxFaults)
	run := campaign.RunDFA(mode, model, *seed, *maxFaults)
	if run.Err == "canceled" {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	if run.Infeasible {
		fmt.Printf("INFEASIBLE: DFA fault identification cannot enumerate the %s candidate space\n", model)
		os.Exit(1)
	}
	fmt.Printf("  identified %d faults, skipped %d (ambiguous signatures)\n", run.Identified, run.Skipped)
	if !run.Recovered {
		fmt.Printf("NOT RECOVERED within %d faults: %d/1600 state bits forced (%v elapsed)\n",
			run.FaultsUsed, run.ForcedA, run.TotalTime.Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("RECOVERED the 1600-bit χ input of round 22 after %d faults (%v elapsed)\n",
		run.FaultsUsed, run.TotalTime.Round(time.Millisecond))
}
