// Command afa runs the algebraic fault analysis end to end: it
// simulates a fault-injection campaign against a SHA-3 computation,
// feeds the observations to the AFA engine, and reports the recovered
// state and message. It can also regenerate the paper's tables and
// figures (-experiment).
//
// Usage:
//
//	afa -mode SHA3-512 -model byte -seed 1 -max-faults 60
//	afa -experiment t1 -seeds 3 -workers 4
//	afa -portfolio 4 -v -mode SHA3-512 -model byte
//
// -portfolio N races N diversified SAT solvers with clause sharing on
// every solve; -workers N parallelizes experiment repetitions;
// -preprocess simplifies each clause batch before it reaches the
// solver; -noise-dud/-noise-violation degrade the simulated injector
// and arm the guarded (noise-tolerant) attack; -checkpoint/-resume
// make long experiment batches survive a kill; -cpuprofile/-memprofile
// write runtime/pprof profiles. SIGINT cancels cleanly: running solves
// are interrupted and partial tables stay flushed.
//
// Observability (see internal/obs): -trace out.jsonl streams every
// event (solver progress, portfolio wins, attack phase spans, campaign
// run records) as JSONL; -metrics out.prom dumps the run's counters,
// gauges and phase histograms as Prometheus text exposition at exit
// ("-" = stdout); -progress prints a live work ticker to stderr;
// -debug-addr :6060 serves /debug/metrics, /debug/trace and
// /debug/pprof/* while the campaign runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

func main() {
	os.Exit(run())
}

// run holds the real main so profile flushing happens on every exit
// path (os.Exit inside main would skip the deferred stop).
func run() int {
	modeName := flag.String("mode", "SHA3-512", "SHA-3 mode to attack")
	modelName := flag.String("model", "byte", "fault model: 1-bit, byte, 16-bit, 32-bit")
	seed := flag.Int64("seed", 1, "campaign seed (message and fault stream)")
	maxFaults := flag.Int("max-faults", 80, "fault budget")
	knownPos := flag.Bool("known-position", false, "precise (non-relaxed) fault position")
	experiment := flag.String("experiment", "", "regenerate a table/figure: t1,t2,t3,t4,f1,f2,f3,f4,a1,a2,e1,e2,c1,c2,p3,p4 (p3 = noise robustness, p4 = phase breakdown)")
	seeds := flag.Int("seeds", 3, "seeds per cell for -experiment")
	workers := flag.Int("workers", 1, "parallel campaign repetitions (experiments)")
	members := flag.Int("portfolio", 0, "race N diversified SAT solvers per solve (0/1 = single)")
	preprocess := flag.Bool("preprocess", false, "simplify each clause batch (units/subsumption/strengthening) before solving")
	noiseDud := flag.Float64("noise-dud", 0, "probability an injection fails outright (dud)")
	noiseViolation := flag.Float64("noise-violation", 0, "probability an injection violates the fault model")
	retries := flag.Int("retries", 0, "campaign re-attempts with escalated budgets after BudgetExceeded")
	checkpoint := flag.String("checkpoint", "", "directory for per-run JSON checkpoints (experiment batches)")
	resume := flag.Bool("resume", false, "load existing checkpoints instead of re-running (requires -checkpoint)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	traceFile := flag.String("trace", "", "stream observability events to this JSONL file")
	metricsFile := flag.String("metrics", "", "dump Prometheus text exposition to this file at exit (\"-\" = stdout)")
	progress := flag.Bool("progress", false, "print a live progress ticker to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/trace and /debug/pprof on this address (e.g. :6060)")
	verbose := flag.Bool("v", false, "print per-solver statistics")
	flag.Parse()

	stopProf := startProfiles(*cpuprofile, *memprofile)
	defer stopProf()

	noise := fault.Noise{Dud: *noiseDud, Violation: *noiseViolation}
	if err := noise.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// One SIGINT/SIGTERM cancels every campaign in flight: running
	// solves are interrupted, unstarted repetitions are skipped, and
	// already-emitted rows (and checkpoints) survive. A second signal
	// falls back to the runtime's default hard kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	campaign.SetWorkers(*workers)
	campaign.SetContext(ctx)

	// Observability: one shared recorder feeds the JSONL sink, the live
	// ticker and the debug endpoint; every campaign run in this process
	// emits through it (campaign.SetRecorder).
	if *traceFile != "" || *metricsFile != "" || *progress || *debugAddr != "" {
		var sink io.Writer
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			defer tf.Close()
			sink = tf
		}
		rec := obs.NewTrace(sink, 4096)
		campaign.SetRecorder(rec)
		defer func() {
			if err := rec.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace sink error:", err)
			}
		}()
		if *metricsFile != "" {
			// Dumped on the way out so the registry holds the whole run.
			defer func() {
				if err := dumpMetrics(rec.Metrics(), *metricsFile); err != nil {
					fmt.Fprintln(os.Stderr, "metrics dump error:", err)
				}
			}()
		}
		stopDebug, err := rec.MountDebug(*debugAddr, os.Stderr, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer stopDebug()
		if *progress {
			defer obs.StartProgress(rec, os.Stderr, 2*time.Second)()
		}
	}

	if *experiment != "" {
		code := runExperiment(*experiment, *seeds, *checkpoint, *resume)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted: partial results above; re-run with -checkpoint/-resume to continue")
			return 130
		}
		return code
	}

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	model, err := fault.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	cfg := core.DefaultConfig(mode, model)
	cfg.KnownPosition = *knownPos
	cfg.Portfolio = *members
	cfg.Preprocess = *preprocess
	if cfg.Portfolio > 1 {
		fmt.Printf("AFA on %s under the %s fault model (seed %d, budget %d faults, portfolio of %d solvers)\n",
			mode, model, *seed, *maxFaults, cfg.Portfolio)
	} else {
		fmt.Printf("AFA on %s under the %s fault model (seed %d, budget %d faults)\n",
			mode, model, *seed, *maxFaults)
	}
	if noise.Enabled() {
		fmt.Printf("  injection noise: %s (guarded attack armed)\n", noise)
	}
	run := campaign.RunAFA(mode, model, *seed, campaign.AFAOptions{
		MaxFaults: *maxFaults,
		Noise:     noise,
		Retries:   *retries,
		Config:    &cfg,
	})
	if *verbose {
		fmt.Println("per-solver statistics:")
		for _, st := range run.Solvers {
			fmt.Printf("  %s\n", st)
		}
	}
	if run.Evicted > 0 {
		fmt.Printf("  evicted %d out-of-model observation(s), %d genuinely noisy of %d noisy fed\n",
			run.Evicted, run.EvictedOK, run.NoisyFed)
	}
	if run.Retries > 0 {
		fmt.Printf("  budget escalations: %d\n", run.Retries)
	}
	if run.Err != "" {
		fmt.Printf("RUN FAILED: %s\n", run.Err)
		return 1
	}
	if !run.Recovered {
		fmt.Printf("NOT RECOVERED within %d faults (%v elapsed, %v solving)\n",
			run.FaultsUsed, run.TotalTime.Round(time.Millisecond), run.SolveTime.Round(time.Millisecond))
		return 1
	}
	fmt.Printf("RECOVERED the 1600-bit χ input of round 22 after %d faults\n", run.FaultsUsed)
	fmt.Printf("  wall clock %v (SAT %v), final CNF %d vars / %d clauses\n",
		run.TotalTime.Round(time.Millisecond), run.SolveTime.Round(time.Millisecond), run.Vars, run.Clauses)
	fmt.Printf("  message block recovered: %v\n", run.MessageOK)
	fmt.Printf("  faults identified exactly: %d/%d\n", run.FaultsIdent, run.FaultsUsed)
	return 0
}

// startProfiles arms the requested pprof outputs and returns the stop
// function that flushes them.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}

func runExperiment(name string, seeds int, checkpoint string, resume bool) int {
	w := os.Stdout
	switch name {
	case "p3":
		campaign.TableRobustness(w, seeds, 80, checkpoint, resume)
		return 0
	case "p4":
		campaign.TablePhases(w, seeds, 80)
		return 0
	case "t1":
		campaign.Table1(w, seeds, 80, 400)
	case "t2":
		campaign.Table2(w, seeds, 60)
	case "t3":
		campaign.Table3(w, seeds, 40)
	case "t4":
		campaign.Table4(w, 30, seeds)
	case "f1":
		campaign.Figure1(w, seeds, 60, 5)
	case "f2":
		campaign.Figure2(w, 60)
	case "f3":
		campaign.Figure3(w, keccak.SHA3_512, 20, 32)
	case "f4":
		campaign.Figure4(w, 4)
	case "a1":
		campaign.AblationEncoding(w)
	case "a2":
		campaign.AblationSolver(w, 8)
	case "e1":
		campaign.TableUnaligned(w, seeds, 60)
	case "e2":
		campaign.TableSHAKE(w, seeds, 80)
	case "c1":
		campaign.TableCountermeasure(w, 2000)
	case "c2":
		campaign.TableStarvation(w, 2000)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		return 2
	}
	return 0
}

// dumpMetrics writes the registry's Prometheus text exposition to path
// ("-" = stdout), giving one-shot runs the same scrape surface afad
// serves at GET /metrics.
func dumpMetrics(m *obs.Metrics, path string) error {
	if path == "-" {
		return m.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
