// Command satsolve is a standalone DIMACS CNF solver built on the
// repository's CDCL engine. Output follows SAT-competition
// conventions (s/v lines).
//
// Usage:
//
//	satsolve [-timeout 10m] [-stats] [-portfolio N] [-preprocess] instance.cnf
//
// With -portfolio N the instance is raced by N diversified solvers
// with learned-clause sharing; the first definitive answer wins and
// -stats reports each member's work. -preprocess runs the SatELite-
// style simplifier before solving. -cpuprofile/-memprofile write
// runtime/pprof profiles for perf work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

func main() {
	timeout := flag.Duration("timeout", 0, "solving timeout (0 = none)")
	stats := flag.Bool("stats", false, "print solver statistics")
	members := flag.Int("portfolio", 0, "race N diversified solvers with clause sharing (0/1 = single solver)")
	preprocess := flag.Bool("preprocess", false, "simplify the formula (units/subsumption/strengthening) before solving")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [flags] instance.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	form, err := cnf.ParseDIMACS(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stopProf := startProfiles(*cpuprofile, *memprofile)

	if *preprocess {
		start := time.Now()
		pst := form.Preprocess()
		if *stats {
			fmt.Printf("c preprocess time=%v units=%d removed=%d lits=%d subsumed=%d strengthened=%d iters=%d\n",
				time.Since(start).Round(time.Millisecond), pst.UnitsPropagated, pst.ClausesRemoved,
				pst.LiteralsRemoved, pst.SubsumedClauses, pst.StrengthenedLits, pst.IterationsReached)
		}
	}

	var (
		st    sat.Status
		model []bool
	)
	if *members > 1 {
		res := portfolio.Solve(form, portfolio.Options{
			Workers: *members,
			Base:    sat.Options{Timeout: *timeout},
		})
		st, model = res.Status, res.Model
		if *stats {
			fmt.Printf("c time=%v members=%d winner=%d\n",
				res.WallTime.Round(time.Millisecond), len(res.Solvers), res.Winner)
			for _, m := range res.Solvers {
				fmt.Printf("c %s\n", m)
			}
		}
	} else {
		solver := sat.FromFormula(form, sat.Options{Timeout: *timeout})
		start := time.Now()
		st = solver.Solve()
		elapsed := time.Since(start)
		model = solver.Model()
		if *stats {
			s := solver.Stats()
			fmt.Printf("c time=%v conflicts=%d decisions=%d propagations=%d restarts=%d learned=%d\n",
				elapsed.Round(time.Millisecond), s.Conflicts, s.Decisions, s.Propagations, s.Restarts, s.Learned)
		}
	}

	stopProf()
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		line := "v"
		for v := 1; v < len(model); v++ {
			lit := v
			if !model[v] {
				lit = -v
			}
			line += fmt.Sprintf(" %d", lit)
			if len(line) > 70 {
				fmt.Println(line)
				line = "v"
			}
		}
		fmt.Println(line + " 0")
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(0)
	}
}

// startProfiles arms the requested pprof outputs and returns the stop
// function to call before exiting (os.Exit skips defers).
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}
