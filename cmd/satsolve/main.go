// Command satsolve is a standalone DIMACS CNF solver built on the
// repository's CDCL engine. Output follows SAT-competition
// conventions (s/v lines).
//
// Usage:
//
//	satsolve [-timeout 10m] [-stats] [-portfolio N] [-preprocess] instance.cnf
//
// With -portfolio N the instance is raced by N diversified solvers
// with learned-clause sharing; the first definitive answer wins and
// -stats reports each member's work. -preprocess runs the SatELite-
// style simplifier before solving. -cpuprofile/-memprofile write
// runtime/pprof profiles for perf work.
//
// SIGINT interrupts the solve cleanly: the solver stops at the next
// conflict boundary, and a snapshot of the work done so far (conflicts,
// decisions, propagations — per member under -portfolio) is printed
// before the process exits with "s UNKNOWN".
//
// Observability (see internal/obs): -trace out.jsonl streams solver
// progress and portfolio win events as JSONL; -progress prints a live
// work ticker to stderr; -debug-addr :6060 serves /debug/metrics,
// /debug/trace and /debug/pprof/* during the solve.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/obs"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanup (profiles, trace sink,
// progress ticker) happens on every exit path.
func run() int {
	timeout := flag.Duration("timeout", 0, "solving timeout (0 = none)")
	stats := flag.Bool("stats", false, "print solver statistics")
	members := flag.Int("portfolio", 0, "race N diversified solvers with clause sharing (0/1 = single solver)")
	preprocess := flag.Bool("preprocess", false, "simplify the formula (units/subsumption/strengthening) before solving")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	traceFile := flag.String("trace", "", "stream observability events to this JSONL file")
	progress := flag.Bool("progress", false, "print a live progress ticker to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/metrics, /debug/trace and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [flags] instance.cnf")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	form, err := cnf.ParseDIMACS(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	defer startProfiles(*cpuprofile, *memprofile)()

	var rec *obs.Trace
	if *traceFile != "" || *progress || *debugAddr != "" {
		var sink io.Writer
		if *traceFile != "" {
			tf, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			defer tf.Close()
			sink = tf
		}
		rec = obs.NewTrace(sink, 4096)
		defer func() {
			if err := rec.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace sink error:", err)
			}
		}()
		stopDebug, err := rec.MountDebug(*debugAddr, os.Stderr, "c ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer stopDebug()
		if *progress {
			defer obs.StartProgress(rec, os.Stderr, 2*time.Second)()
		}
	}

	// SIGINT/SIGTERM interrupts the solve at the next conflict boundary;
	// the partial-work snapshot below still runs because the solver
	// returns Unknown instead of the process dying mid-search. A second
	// signal falls back to the runtime's default hard kill.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *preprocess {
		start := time.Now()
		pst := form.Preprocess()
		if *stats {
			fmt.Printf("c preprocess time=%v units=%d removed=%d lits=%d subsumed=%d strengthened=%d iters=%d\n",
				time.Since(start).Round(time.Millisecond), pst.UnitsPropagated, pst.ClausesRemoved,
				pst.LiteralsRemoved, pst.SubsumedClauses, pst.StrengthenedLits, pst.IterationsReached)
		}
	}

	var (
		st    sat.Status
		model []bool
	)
	// The partial-stats snapshot printed on interrupt (and under -stats
	// on normal completion): one line per solver.
	var snapshot func(w io.Writer)
	start := time.Now()
	if *members > 1 {
		res := portfolio.SolveContext(ctx, form, portfolio.Options{
			Workers:  *members,
			Base:     sat.Options{Timeout: *timeout},
			Recorder: obsRecorder(rec),
		})
		st, model = res.Status, res.Model
		snapshot = func(w io.Writer) {
			fmt.Fprintf(w, "c time=%v members=%d winner=%d\n",
				res.WallTime.Round(time.Millisecond), len(res.Solvers), res.Winner)
			for _, m := range res.Solvers {
				fmt.Fprintf(w, "c %s\n", m)
			}
		}
	} else {
		solver := sat.FromFormula(form, sat.Options{Timeout: *timeout})
		if rec != nil {
			solver.SetRecorder(rec, "sat")
		}
		st = solver.SolveContext(ctx)
		model = solver.Model()
		snapshot = func(w io.Writer) {
			s := solver.Stats()
			fmt.Fprintf(w, "c time=%v conflicts=%d decisions=%d propagations=%d restarts=%d learned=%d\n",
				time.Since(start).Round(time.Millisecond), s.Conflicts, s.Decisions, s.Propagations, s.Restarts, s.Learned)
		}
	}

	interrupted := ctx.Err() != nil && st == sat.Unknown
	if interrupted {
		// The user asked for the plug to be pulled: show what the solver
		// had done up to that point, -stats or not.
		fmt.Println("c interrupted — partial statistics:")
		snapshot(os.Stdout)
	} else if *stats {
		snapshot(os.Stdout)
	}

	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		line := "v"
		for v := 1; v < len(model); v++ {
			lit := v
			if !model[v] {
				lit = -v
			}
			line += fmt.Sprintf(" %d", lit)
			if len(line) > 70 {
				fmt.Println(line)
				line = "v"
			}
		}
		fmt.Println(line + " 0")
		return 10
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		return 20
	default:
		fmt.Println("s UNKNOWN")
		if interrupted {
			return 130
		}
		return 0
	}
}

// obsRecorder converts the concrete trace to the interface without the
// typed-nil foot-gun: a nil *Trace must become a nil interface so the
// portfolio's "recorder attached?" checks stay meaningful.
func obsRecorder(t *obs.Trace) obs.Recorder {
	if t == nil {
		return nil
	}
	return t
}

// startProfiles arms the requested pprof outputs and returns the stop
// function that flushes them.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}
