// Command satsolve is a standalone DIMACS CNF solver built on the
// repository's CDCL engine. Output follows SAT-competition
// conventions (s/v lines).
//
// Usage:
//
//	satsolve [-timeout 10m] [-stats] instance.cnf
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/sat"
)

func main() {
	timeout := flag.Duration("timeout", 0, "solving timeout (0 = none)")
	stats := flag.Bool("stats", false, "print solver statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [flags] instance.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	form, err := cnf.ParseDIMACS(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	solver := sat.FromFormula(form, sat.Options{Timeout: *timeout})
	start := time.Now()
	st := solver.Solve()
	elapsed := time.Since(start)

	if *stats {
		s := solver.Stats()
		fmt.Printf("c time=%v conflicts=%d decisions=%d propagations=%d restarts=%d learned=%d\n",
			elapsed.Round(time.Millisecond), s.Conflicts, s.Decisions, s.Propagations, s.Restarts, s.Learned)
	}
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		model := solver.Model()
		line := "v"
		for v := 1; v < len(model); v++ {
			lit := v
			if !model[v] {
				lit = -v
			}
			line += fmt.Sprintf(" %d", lit)
			if len(line) > 70 {
				fmt.Println(line)
				line = "v"
			}
		}
		fmt.Println(line + " 0")
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(0)
	}
}
