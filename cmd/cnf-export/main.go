// Command cnf-export builds an AFA attack instance and writes it in
// DIMACS CNF — the workaround for handing the algebra to an external
// SAT solver (the paper used an off-the-shelf solver; Go has none, so
// the instances this repository solves internally can be exported for
// cross-checking).
//
// The first 1600 variables of the exported instance are the bits of
// the χ input of round 22, in keccak bit order.
//
// Usage:
//
//	cnf-export -mode SHA3-512 -model byte -faults 6 -seed 1 -o instance.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	modeName := flag.String("mode", "SHA3-512", "SHA-3 mode")
	modelName := flag.String("model", "byte", "fault model")
	faults := flag.Int("faults", 6, "number of faulty observations to encode")
	seed := flag.Int64("seed", 1, "campaign seed")
	msgStr := flag.String("msg", "cnf export message", "message to attack")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	mode, err := keccak.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	model, err := fault.Parse(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	msg := []byte(*msgStr)
	correct, injs := fault.Campaign(mode, msg, model, 22, *faults, *seed)
	b := core.NewBuilder(core.DefaultConfig(mode, model))
	if err := b.AddCorrect(correct); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, inj := range injs {
		if err := b.AddFaulty(inj.FaultyDigest, -1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	comments := []string{
		fmt.Sprintf("AFA instance: %s, %s fault model, %d faults, seed %d", mode, model, *faults, *seed),
		"vars 1..1600 = chi input of round 22 (keccak bit order)",
	}
	if err := b.Formula().WriteDIMACS(w, comments...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := b.Formula().ComputeStats()
	fmt.Fprintf(os.Stderr, "exported %s\n", st)
}
