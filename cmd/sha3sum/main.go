// Command sha3sum hashes files (or stdin) under any SHA-3 / SHAKE
// mode using this repository's from-scratch Keccak implementation.
//
// Usage:
//
//	sha3sum [-a SHA3-256] [-n outputBytes] [file ...]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	"sha3afa/internal/keccak"
)

func main() {
	algo := flag.String("a", "SHA3-256", "mode: SHA3-224/256/384/512, SHAKE128, SHAKE256")
	outLen := flag.Int("n", 0, "output bytes for SHAKE modes (default: mode's security length)")
	flag.Parse()

	mode, err := keccak.ParseMode(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	hashOne := func(r io.Reader, name string) error {
		if mode.IsXOF() {
			data, err := io.ReadAll(r)
			if err != nil {
				return err
			}
			n := *outLen
			if n <= 0 {
				n = mode.DigestBits() / 8
			}
			fmt.Printf("%s  %s\n", hex.EncodeToString(keccak.ShakeSum(mode, data, n)), name)
			return nil
		}
		h := keccak.New(mode)
		if _, err := io.Copy(h, r); err != nil {
			return err
		}
		fmt.Printf("%s  %s\n", hex.EncodeToString(h.Sum(nil)), name)
		return nil
	}

	if flag.NArg() == 0 {
		if err := hashOne(os.Stdin, "-"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	exit := 0
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		if err := hashOne(f, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
		f.Close()
	}
	os.Exit(exit)
}
