// Package sha3afa's root benchmark harness: one testing.B target per
// table and figure of the paper (see DESIGN.md's experiment index).
// Each bench runs a scaled-down version of the corresponding emitter
// in internal/campaign; the full-size versions are regenerated with
// `go run ./cmd/afa -experiment <id>`.
package sha3afa

import (
	"fmt"
	"io"
	"testing"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/cnf"
	"sha3afa/internal/core"
	"sha3afa/internal/countermeasure"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// BenchmarkTable1FaultsToRecover — T1: AFA vs DFA fault counts under
// the single-byte model. Scaled to one seed and the two modes that
// bracket the digest-length range.
func BenchmarkTable1FaultsToRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		afa := campaign.RunAFA(keccak.SHA3_512, fault.Byte, 1000, campaign.AFAOptions{MaxFaults: 60})
		dfaRun := campaign.RunDFAOracle(keccak.SHA3_512, fault.Byte, 1000, 400)
		if afa.Recovered && dfaRun.Recovered && dfaRun.FaultsUsed <= afa.FaultsUsed {
			b.Fatalf("T1 shape violated: oracle DFA used %d faults, AFA %d", dfaRun.FaultsUsed, afa.FaultsUsed)
		}
		b.ReportMetric(boolMetric(afa.Recovered), "afa-recovered")
		b.ReportMetric(float64(afa.FaultsUsed), "afa-faults")
		b.ReportMetric(float64(dfaRun.FaultsUsed), "dfa-faults")
	}
}

// BenchmarkTable2Relaxed16 — T2: AFA under 16-bit faults (SHA3-512
// cell; the full four-mode table is `cmd/afa -experiment t2`).
func BenchmarkTable2Relaxed16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := campaign.RunAFA(keccak.SHA3_512, fault.Word16, 2000, campaign.AFAOptions{MaxFaults: 60})
		b.ReportMetric(boolMetric(run.Recovered), "recovered")
		b.ReportMetric(float64(run.FaultsUsed), "faults")
	}
}

// BenchmarkTable3Relaxed32 — T3: AFA on SHA3-512 under 32-bit faults.
// The widest model yields the hardest solves per observation, so the
// bench variant caps every SAT call at 60 s and enumerates fewer
// candidates; the unbounded run is `cmd/afa -experiment t3`.
func BenchmarkTable3Relaxed32(b *testing.B) {
	cfg := core.DefaultConfig(keccak.SHA3_512, fault.Word32)
	cfg.SolverOptions = sat.Options{Timeout: 60 * time.Second}
	cfg.MaxCandidates = 3
	for i := 0; i < b.N; i++ {
		run := campaign.RunAFA(keccak.SHA3_512, fault.Word32, 3000,
			campaign.AFAOptions{MaxFaults: 16, Config: &cfg})
		b.ReportMetric(boolMetric(run.Recovered), "recovered")
		b.ReportMetric(float64(run.FaultsUsed), "faults")
	}
}

// BenchmarkTable4Identification — T4: DFA unique-identification rate
// for single faults (the AFA column is measured inside T1 runs).
func BenchmarkTable4Identification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaign.Table4(io.Discard, 10, 0)
	}
}

// BenchmarkFigure1SuccessRate — F1: success-rate curve (one seed per
// mode, SHA3-384/512 cells).
func BenchmarkFigure1SuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mode := range []keccak.Mode{keccak.SHA3_384, keccak.SHA3_512} {
			run := campaign.RunAFA(mode, fault.Byte, 5000, campaign.AFAOptions{MaxFaults: 60})
			b.ReportMetric(float64(run.FaultsUsed), mode.String()+"-faults")
		}
	}
}

// BenchmarkFigure2SolveTime — F2: per-step solve times on SHA3-512.
func BenchmarkFigure2SolveTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps := campaign.RunAFADetailed(keccak.SHA3_512, fault.Byte, 6000, 40)
		if len(steps) == 0 {
			b.Fatal("F2: no solve steps recorded")
		}
	}
}

// BenchmarkFigure3BitsRecovered — F3: information accumulation
// (scaled: 10 faults, 16 sampled bits).
func BenchmarkFigure3BitsRecovered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaign.Figure3(io.Discard, keccak.SHA3_512, 10, 16)
	}
}

// BenchmarkFigure4CNFSize — F4: CNF instance sizes (no solving).
func BenchmarkFigure4CNFSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaign.Figure4(io.Discard, 2)
	}
}

// BenchmarkAblationEncoding — A1: cone-of-influence pruning effect.
func BenchmarkAblationEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaign.AblationEncoding(io.Discard)
	}
}

// BenchmarkAblationSolver — A2: CDCL feature ablation on a fixed
// attack instance.
func BenchmarkAblationSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaign.AblationSolver(io.Discard, 4)
	}
}

// attackFormula builds a fixed satisfiable attack instance (SHA3-512,
// byte model, relaxed positions) for solver benchmarks.
func attackFormula(faults int) *cnf.Formula {
	msg := []byte("portfolio bench instance")
	correct, injs := fault.Campaign(keccak.SHA3_512, msg, fault.Byte, 22, faults, 12000)
	b := core.NewBuilder(core.DefaultConfig(keccak.SHA3_512, fault.Byte))
	if err := b.AddCorrect(correct); err != nil {
		panic(err)
	}
	for _, inj := range injs {
		if err := b.AddFaulty(inj.FaultyDigest, -1); err != nil {
			panic(err)
		}
	}
	return b.Formula()
}

// BenchmarkSolveAttackInstance — the single-solver attack benchmark
// the clause-arena perf work is gated on: one fixed satisfiable
// SHA3-512 byte-model instance, solved from scratch by one CDCL
// solver. Trajectory recorded in BENCH_solver.json / EXPERIMENTS.md §P2.
func BenchmarkSolveAttackInstance(b *testing.B) {
	form := attackFormula(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.FromFormula(form, sat.Options{})
		if st := s.Solve(); st != sat.Sat {
			b.Fatalf("single solver: %v", st)
		}
	}
}

// BenchmarkPortfolioVsSingle — one attack CNF, solved by the classic
// single solver and by portfolios of increasing size. The ratio of the
// single/portfolio times is recorded in EXPERIMENTS.md; on a
// single-core host the portfolio can only break even at best, since
// the members time-share one CPU and pay the sharing overhead.
func BenchmarkPortfolioVsSingle(b *testing.B) {
	form := attackFormula(8)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.FromFormula(form, sat.Options{})
			if st := s.Solve(); st != sat.Sat {
				b.Fatalf("single solver: %v", st)
			}
		}
	})
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("portfolio-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := portfolio.Solve(form, portfolio.Options{Workers: n})
				if res.Status != sat.Sat {
					b.Fatalf("portfolio-%d: %v", n, res.Status)
				}
			}
		})
	}
}

// BenchmarkCountermeasure — C1: detection-rate evaluation of the
// protection extension.
func BenchmarkCountermeasure(b *testing.B) {
	msg := []byte("countermeasure bench")
	inj := fault.NewInjector(fault.Byte, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := inj.Sample().Delta()
		dTemp := countermeasure.TemporalRedundancy(keccak.SHA3_256, msg, 4, 22, &delta)
		if !dTemp.Detected {
			b.Fatal("temporal redundancy missed a guarded fault")
		}
		countermeasure.ParityGuard(keccak.SHA3_256, msg, 22, &delta)
	}
}
