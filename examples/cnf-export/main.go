// CNF export round trip: build an attack instance, serialize it to
// DIMACS (the external-solver workaround), parse it back, solve the
// parsed copy with the built-in CDCL solver, and check the decoded
// state against the original instance — demonstrating that exported
// instances are faithful and self-contained.
//
//	go run ./examples/cnf-export
package main

import (
	"bytes"
	"fmt"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/sat"
)

func main() {
	mode := keccak.SHA3_512
	msg := []byte("export me")
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 4, 11)

	b := core.NewBuilder(core.DefaultConfig(mode, fault.Byte))
	if err := b.AddCorrect(correct); err != nil {
		panic(err)
	}
	for _, inj := range injs {
		if err := b.AddFaulty(inj.FaultyDigest, -1); err != nil {
			panic(err)
		}
	}
	fmt.Printf("built instance: %s\n", b.Formula().ComputeStats())

	// Serialize to DIMACS and parse back.
	var buf bytes.Buffer
	if err := b.Formula().WriteDIMACS(&buf, "AFA example instance"); err != nil {
		panic(err)
	}
	fmt.Printf("DIMACS size: %d bytes\n", buf.Len())
	parsed, err := cnf.ParseDIMACS(&buf)
	if err != nil {
		panic(err)
	}

	// Solve the parsed copy as an external solver would.
	start := time.Now()
	st, model := sat.SolveFormula(parsed, sat.Options{})
	fmt.Printf("solved parsed instance: %v in %v\n", st, time.Since(start).Round(time.Millisecond))
	if st != sat.Sat {
		panic("instance should be satisfiable")
	}

	// Decode the state from the model (vars 1..1600 = α bits) and
	// check it reproduces the observed digest.
	alpha := b.DecodeAlpha(model)
	s := alpha
	s.Chi()
	s.Iota(22)
	s.Round(23)
	ok := bytes.Equal(s.ExtractBytes(mode.DigestBits()/8), correct)
	fmt.Printf("decoded state reproduces the observed digest: %v\n", ok)
}
