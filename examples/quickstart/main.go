// Quickstart: hash a message, simulate a relaxed single-byte fault
// campaign against the penultimate Keccak round, and run algebraic
// fault analysis until the full 1600-bit internal state — and from it
// the message itself — is recovered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	mode := keccak.SHA3_512
	msg := []byte("attack at dawn")

	// The victim computes a digest; the attacker observes it.
	correct := keccak.Sum(mode, msg)
	fmt.Printf("victim digest (%s): %x...\n", mode, correct[:16])

	// The attacker injects relaxed single-byte faults at the θ input
	// of round 22 — position and value unknown to the analysis.
	const budget = 60
	_, injections := fault.Campaign(mode, msg, fault.Byte, 22, budget, 42)

	atk := core.NewAttack(core.DefaultConfig(mode, fault.Byte))
	if err := atk.AddCorrect(correct); err != nil {
		panic(err)
	}

	start := time.Now()
	for i, inj := range injections {
		if err := atk.AddInjection(inj); err != nil {
			panic(err)
		}
		res, err := atk.Solve()
		if err != nil {
			panic(err)
		}
		fmt.Printf("fault %2d: %-10s (CNF %6d vars / %7d clauses, solve %v)\n",
			i+1, res.Status, res.Vars, res.Clauses, res.SolveTime.Round(time.Millisecond))
		if res.Status != core.Recovered {
			continue
		}

		fmt.Printf("\nrecovered χ input of round 22 after %d faults in %v\n",
			i+1, time.Since(start).Round(time.Millisecond))
		recovered, ok := atk.ExtractMessage(res.ChiInput)
		fmt.Printf("recovered message: %q (ok=%v)\n", recovered, ok)

		faults, err := atk.RecoveredFaults()
		if err != nil {
			panic(err)
		}
		exact := 0
		for k, rf := range faults {
			if !rf.Silent && rf.Fault == injections[k].Fault {
				exact++
			}
		}
		fmt.Printf("faults identified exactly (position + value): %d/%d\n", exact, len(faults))
		return
	}
	fmt.Println("budget exhausted without recovery — increase the fault budget")
}
