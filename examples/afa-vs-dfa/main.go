// AFA vs DFA: run both analyses on identical observations (same
// message, same single-byte fault stream) and compare how many faults
// each needs — the paper's central efficiency claim.
//
//	go run ./examples/afa-vs-dfa
package main

import (
	"fmt"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	mode := keccak.SHA3_512
	model := fault.Byte
	seed := int64(3)

	fmt.Printf("AFA vs DFA on %s, single-byte fault model, identical fault stream (seed %d)\n\n", mode, seed)

	afa := campaign.RunAFA(mode, model, seed, campaign.AFAOptions{MaxFaults: 80})
	if afa.Recovered {
		fmt.Printf("AFA: recovered after %3d faults in %v (SAT time %v)\n",
			afa.FaultsUsed, afa.TotalTime.Round(time.Second), afa.SolveTime.Round(time.Second))
	} else {
		fmt.Printf("AFA: failed within %d faults\n", afa.FaultsUsed)
	}

	dfaRun := campaign.RunDFA(mode, model, seed, 500)
	switch {
	case dfaRun.Infeasible:
		fmt.Println("DFA: infeasible under this model")
	case dfaRun.Recovered:
		fmt.Printf("DFA: recovered after %3d faults in %v (identified %d, skipped %d)\n",
			dfaRun.FaultsUsed, dfaRun.TotalTime.Round(time.Second), dfaRun.Identified, dfaRun.Skipped)
	default:
		fmt.Printf("DFA: failed within %d faults — %d/1600 bits forced (identified %d, skipped %d)\n",
			dfaRun.FaultsUsed, dfaRun.ForcedA, dfaRun.Identified, dfaRun.Skipped)
	}

	fmt.Println()
	if afa.Recovered && (dfaRun.Recovered && afa.FaultsUsed < dfaRun.FaultsUsed || !dfaRun.Recovered) {
		fmt.Println("=> AFA extracts strictly more information per fault than DFA,")
		fmt.Println("   reproducing the paper's comparison under the single-byte model.")
	}
}
