// Countermeasures: the protections the paper's conclusion calls for,
// evaluated against the same injector the attack uses — temporal
// redundancy, a per-lane parity guard, and infective output that
// starves the analysis of usable faulty digests.
//
//	go run ./examples/countermeasures
package main

import (
	"bytes"
	"fmt"

	"sha3afa/internal/countermeasure"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	mode := keccak.SHA3_256
	msg := []byte("protect me")
	correct := keccak.Sum(mode, msg)
	const trials = 1000

	fmt.Println("Fault-detection countermeasures vs the attack's injector")
	fmt.Printf("(%d byte-fault injections at the θ input of round 22)\n\n", trials)

	inj := fault.NewInjector(fault.Byte, 7)
	temporal, parity, leaked := 0, 0, 0
	for i := 0; i < trials; i++ {
		delta := inj.Sample().Delta()

		dTemp := countermeasure.TemporalRedundancy(mode, msg, 2, 22, &delta)
		if dTemp.Detected {
			temporal++
		}
		if countermeasure.ParityGuard(mode, msg, 22, &delta).Detected {
			parity++
		}
		// A protected device emits infective output on detection: does
		// the attacker ever see a usable faulty digest?
		out := countermeasure.Infective(dTemp, mode)
		if !dTemp.Detected && !bytes.Equal(out, correct) {
			leaked++
		}
	}

	fmt.Printf("temporal redundancy (guard rounds 22-23): %5.1f%% detected\n",
		100*float64(temporal)/trials)
	fmt.Printf("per-lane parity guard:                    %5.1f%% detected (theory: 128/255 = 50.2%%)\n",
		100*float64(parity)/trials)
	fmt.Printf("usable faulty digests leaked with infective output: %d/%d\n\n", leaked, trials)

	// The coverage boundary: a fault striking before the redundancy
	// snapshot is baked into both computations.
	var early keccak.State
	early.SetBit(42, true)
	d := countermeasure.TemporalRedundancy(mode, msg, 2, 10, &early)
	fmt.Printf("fault at round 10 with a rounds-22..23 guard: detected=%v (coverage boundary)\n", d.Detected)
	fmt.Println("=> guard every round whose faults an attacker can exploit.")
}
