// Algebraic analysis: verify by direct computation the algebraic
// properties of Keccak that AFA exploits — the degrees of χ and χ⁻¹,
// the affine shape of χ's difference equations, and the size of the
// two-round circuit/CNF the attack actually solves.
//
//	go run ./examples/algebraic-analysis
package main

import (
	"fmt"

	"sha3afa/internal/cnf"
	"sha3afa/internal/keccak"
	"sha3afa/internal/symbolic"
)

func main() {
	fmt.Println("== Algebraic properties of the Keccak round ==")

	chi := symbolic.ChiRowANF()
	fmt.Println("\nχ row map, output coordinates in algebraic normal form:")
	for x, p := range chi {
		fmt.Printf("  out%d = %-28s (degree %d)\n", x, p, p.Degree())
	}

	inv := symbolic.InvChiRowANF()
	fmt.Println("\nχ⁻¹ row map (degree 3 — why attacks run forward, not backward):")
	maxDeg := 0
	for x, p := range inv {
		if d := p.Degree(); d > maxDeg {
			maxDeg = d
		}
		fmt.Printf("  out%d: %2d monomials, degree %d\n", x, len(p), p.Degree())
	}
	fmt.Printf("  max degree over outputs: %d\n", maxDeg)

	fmt.Println("\nProduct of any two χ⁻¹ outputs stays at degree ≤ 3 (Duan–Lai):")
	worst := 0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d := inv[i].Mul(inv[j]).Degree(); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("  max degree of pairwise products: %d\n", worst)

	fmt.Println("\n== The two-round attack circuit ==")
	circ := symbolic.NewCircuit()
	alpha := symbolic.NewSymInput(circ)
	out := alpha.Clone()
	out.Chi(circ)
	out.Iota(22)
	out.Round(circ, 23)
	and, xor := circ.GateCounts()
	fmt.Printf("  gates: %d AND (two χ layers), %d XOR\n", and, xor)

	for _, mode := range keccak.FixedModes {
		f := cnf.New()
		enc := symbolic.NewEncoder(circ, f)
		for _, r := range out.DigestRefs(mode.DigestBits()) {
			enc.Lit(r)
		}
		full := circ.ConeSize(out.Bits[:])
		pruned := circ.ConeSize(out.DigestRefs(mode.DigestBits()))
		fmt.Printf("  %-10s digest cone: %5d/%5d nodes -> CNF %s\n",
			mode, pruned, full, f.ComputeStats())
	}
}
