// Relaxed 16-bit faults: the paper's headline relaxed-model result —
// AFA breaks all four SHA-3 modes when each fault flips an unknown
// non-zero pattern inside an unknown aligned 16-bit window, a model
// under which classical DFA cannot even identify the fault (candidate
// space 100·2^16 per injection).
//
//	go run ./examples/relaxed16            # all four modes
//	go run ./examples/relaxed16 SHA3-512   # one mode
package main

import (
	"fmt"
	"os"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func main() {
	modes := keccak.FixedModes
	if len(os.Args) > 1 {
		m, err := keccak.ParseMode(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		modes = []keccak.Mode{m}
	}

	fmt.Println("AFA under the relaxed 16-bit fault model")
	fmt.Println("(fault position and value unknown; DFA identification is infeasible here)")
	fmt.Println()
	for _, mode := range modes {
		run := campaign.RunAFA(mode, fault.Word16, 7, campaign.AFAOptions{MaxFaults: 60})
		if run.Recovered {
			fmt.Printf("%-10s BROKEN: %2d faults, %v wall clock (%v SAT), message recovered: %v\n",
				mode, run.FaultsUsed, run.TotalTime.Round(time.Second),
				run.SolveTime.Round(time.Second), run.MessageOK)
		} else {
			fmt.Printf("%-10s not recovered within %d faults (%v)\n",
				mode, run.FaultsUsed, run.TotalTime.Round(time.Second))
		}
	}
}
