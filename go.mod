module sha3afa

go 1.22
