// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver from scratch: two-watched-literal propagation with a
// dedicated binary-clause fast path, first-UIP conflict analysis with
// clause minimization, EVSIDS variable activities, phase saving,
// Luby-sequence restarts and LBD-based learned-clause database
// reduction over an arena-backed clause store.
//
// The Go ecosystem has no standard SAT solver and this reproduction is
// built offline from the standard library only, so the solver the
// paper delegates to (an off-the-shelf CDCL solver) is itself part of
// the reproduction. The external API speaks DIMACS conventions
// (signed integer literals, variables numbered from 1) so it plugs
// directly under the cnf package.
//
// Internally clauses of three or more literals live in a flat []lit
// arena addressed by int32 crefs (see arena.go); binary clauses are
// stored inline in per-literal binary watch lists and propagate
// without touching clause memory at all — the attack CNFs are
// dominated by 2–3-literal Tseitin and pairwise AtMostOne clauses,
// so both hot loops are arranged around that shape.
package sat

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sha3afa/internal/obs"
)

// Status is the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// lit is an internal literal: variable v (0-based) positive = 2v,
// negative = 2v+1.
type lit int32

func mkLit(v int32, neg bool) lit {
	if neg {
		return lit(2*v + 1)
	}
	return lit(2 * v)
}

func (l lit) vari() int32 { return int32(l) >> 1 }
func (l lit) neg() lit    { return l ^ 1 }
func (l lit) sign() bool  { return l&1 == 1 } // true = negated

// extToLit converts a DIMACS literal (±v, v ≥ 1) to internal form.
func (s *Solver) extToLit(x int) lit {
	if x == 0 {
		panic("sat: literal 0")
	}
	v := x
	if v < 0 {
		v = -v
	}
	for int32(v) > s.numVars {
		s.NewVar()
	}
	return mkLit(int32(v-1), x < 0)
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// Propagation reasons are int32-tagged so binary clauses need no
// clause storage: rNone for decisions/units, cref<<1 for an arena
// clause, (other<<1)|1 for a binary clause whose remaining literal is
// `other`. binConflict is propagate's sentinel for "the conflict is
// the binary clause in s.binConfl".
const (
	rNone       int32 = -1
	binConflict int32 = -2
)

func clauseReason(cr int32) int32 { return cr << 1 }
func binReason(other lit) int32   { return int32(other)<<1 | 1 }
func isBinReason(r int32) bool    { return r&1 == 1 }

// watcher is one entry of a long-clause watch list; blocker is a
// clause literal that, when already true, lets propagation skip the
// clause without touching the arena.
type watcher struct {
	cr      int32
	blocker lit
}

// PhaseMode selects the polarity a fresh variable is tried with first.
type PhaseMode int

// Initial-phase policies, used to diversify portfolio members.
const (
	PhaseFalse  PhaseMode = iota // try false first (classic MiniSat default)
	PhaseTrue                    // try true first
	PhaseRandom                  // seed-deterministic random initial phase
)

// Options toggle individual solver features, used by the ablation
// benchmarks to quantify what each heuristic buys on attack instances,
// and carry the diversification knobs the parallel portfolio varies
// across its members.
type Options struct {
	NoVSIDS       bool // branch on lowest-index unassigned var instead
	NoRestarts    bool
	NoPhaseSaving bool
	NoMinimize    bool          // skip learned-clause minimization
	NoReduce      bool          // never delete learned clauses
	MaxConflicts  int64         // 0 = unlimited
	Timeout       time.Duration // 0 = unlimited; sugar over Interrupt

	// Diversification knobs (zero values = classic defaults).
	Seed          int64     // seeds the tie-breaking RNG; 0 = no randomness
	RandomVarFreq float64   // probability of a random branching variable
	VarDecay      float64   // EVSIDS activity decay, (0,1); 0 = 0.95
	RestartBase   int64     // conflicts per Luby restart unit; 0 = 100
	InitialPhase  PhaseMode // polarity fresh variables are tried with first

	// ProgressEvery is the conflict-count cadence of solver.progress
	// events (0 = 4096). It only matters once a recorder is attached
	// via SetRecorder; without one the solver emits nothing.
	ProgressEvery int64
}

// Stats counts solver work, exposed for the evaluation figures.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	Minimized    int64 // literals removed by minimization
	Deleted      int64 // learned clauses dropped by reduction
	Imported     int64 // clauses accepted from other portfolio solvers
	Exported     int64 // learned clauses handed to the exchange
	Compactions  int64 // copying collections of the clause arena
}

// Solver is a CDCL SAT solver. Zero value is not usable; call New.
type Solver struct {
	opts Options

	numVars int32
	ca      clauseArena
	clauses []int32     // crefs of problem clauses (3+ literals)
	learnts []int32     // crefs of learnt clauses (3+ literals)
	watches [][]watcher // indexed by lit; long clauses only

	// binWatches[p] holds, for every binary clause (¬p ∨ other), the
	// literal `other` inline — propagating p walks this flat list and
	// never touches clause memory. Binary clauses (problem and learnt
	// alike) live only here and are never deleted.
	binWatches [][]lit
	binConfl   [2]lit // conflict-clause scratch for binary conflicts
	binScratch [1]lit // reason scratch during analysis

	assigns  []lbool // per var
	level    []int32
	reason   []int32 // tagged: rNone / clauseReason / binReason
	trail    []lit
	trailLim []int32
	qhead    int

	// decision heuristic
	activity []float64
	varInc   float64
	heap     varHeap
	polarity []bool // saved phase: true = assign false first

	// conflict analysis scratch
	seen       []bool
	analyzeTmp []lit

	// clause activity
	claInc float64

	// AddClause duplicate/tautology detection without a per-clause map:
	// litStamp[l] == stampCtr marks l as present in the current clause.
	litStamp []int32
	stampCtr int32

	unsat bool // formula is UNSAT at level 0

	stats      Stats
	model      []bool
	learntCap  int
	lbdSeen    []int32
	lbdCounter int32
	failedCore []int // failed assumptions of the last assumption-UNSAT

	rng *rand.Rand // diversification randomness; nil = fully deterministic

	// interrupt is set asynchronously (Interrupt, the Timeout timer, a
	// portfolio canceling a losing solver) and consumed by the Solve
	// that observes it. Everything else on the solver is single-owner.
	interrupt int32

	// Clause exchange: imports are queued by other goroutines under
	// importMu and drained by the owning goroutine at decision level 0;
	// exports call learnCB synchronously from inside Solve.
	importMu    sync.Mutex
	importQ     []sharedClause
	importLimit int
	learnCB     func(lits []int, lbd int)
	learnMaxLen int
	learnMaxLBD int

	// Observability (nil rec = off; every emission site is guarded by
	// one rec != nil branch, so the disabled path costs one branch —
	// the contract cmd/benchjson's BENCH_obs.json comparison enforces).
	rec           obs.Recorder
	recSrc        string    // component label in emitted events
	lbdHist       [12]int64 // learnt-LBD histogram: bucket i = LBD i, last = 11+
	progEvery     int64     // cached cadence for the current Solve
	lastEmitTime  time.Time // previous progress emission, for rates
	lastEmitConf  int64
	lastEmitProps int64
}

// sharedClause is a learned clause in transit between portfolio
// members, in DIMACS literal form.
type sharedClause struct {
	lits []int
	lbd  int
}

// New returns an empty solver with default options.
func New() *Solver { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty solver with the given feature set.
func NewWithOptions(opts Options) *Solver {
	s := &Solver{
		opts:        opts,
		varInc:      1,
		claInc:      1,
		learntCap:   4000,
		importLimit: 4096,
	}
	if opts.Seed != 0 || opts.RandomVarFreq > 0 || opts.InitialPhase == PhaseRandom {
		s.rng = rand.New(rand.NewSource(opts.Seed))
	}
	s.heap.activity = &s.activity
	return s
}

// NumVars returns the number of variables (DIMACS: valid vars are 1..NumVars).
func (s *Solver) NumVars() int { return int(s.numVars) }

// NewVar allocates a variable, returning its DIMACS index.
func (s *Solver) NewVar() int {
	s.numVars++
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.litStamp = append(s.litStamp, 0, 0)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, rNone)
	s.activity = append(s.activity, 0)
	// polarity true = try false first (the classic default).
	pol := true
	switch s.opts.InitialPhase {
	case PhaseTrue:
		pol = false
	case PhaseRandom:
		if s.rng != nil {
			pol = s.rng.Intn(2) == 0
		}
	}
	s.polarity = append(s.polarity, pol)
	s.seen = append(s.seen, false)
	s.lbdSeen = append(s.lbdSeen, 0)
	s.heap.insert(s.numVars - 1)
	return int(s.numVars)
}

// Stats returns work counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// SetRecorder attaches an observability recorder; src labels this
// solver's events (e.g. "sat[2]:stable"). The solver then emits
// solver.progress events every Options.ProgressEvery conflicts plus a
// final one per Solve, feeds the global sat.* counters, and tracks the
// learnt-LBD histogram. A nil r turns instrumentation off again; with
// it off the only residue is one untaken branch per conflict.
func (s *Solver) SetRecorder(r obs.Recorder, src string) {
	s.rec = r
	if src == "" {
		src = "sat"
	}
	s.recSrc = src
}

// noteLearnt buckets a learnt clause's LBD into the histogram emitted
// with solver.progress events. Called only with a recorder attached.
func (s *Solver) noteLearnt(lbd int32) {
	b := int(lbd)
	if b < 0 {
		b = 0
	}
	if b >= len(s.lbdHist) {
		b = len(s.lbdHist) - 1
	}
	s.lbdHist[b]++
}

// emitProgress emits one solver.progress event with cumulative work
// counters, rates since the previous emission, search depth, arena
// occupancy and the learnt-LBD histogram, and feeds the deltas into
// the recorder's global sat.* counters (the -progress ticker's feed).
// Called only with a recorder attached.
func (s *Solver) emitProgress(final bool) {
	now := time.Now()
	dt := now.Sub(s.lastEmitTime).Seconds()
	confDelta := s.stats.Conflicts - s.lastEmitConf
	propDelta := s.stats.Propagations - s.lastEmitProps
	propsPerSec := 0.0
	if dt > 0 {
		propsPerSec = float64(propDelta) / dt
	}
	s.lastEmitTime, s.lastEmitConf, s.lastEmitProps = now, s.stats.Conflicts, s.stats.Propagations
	m := s.rec.Metrics()
	m.Counter("sat.conflicts").Add(confDelta)
	m.Counter("sat.propagations").Add(propDelta)
	hist := make([]int64, len(s.lbdHist))
	copy(hist, s.lbdHist[:])
	s.rec.Emit(s.recSrc, "solver.progress",
		obs.F("final", final),
		obs.F("conflicts", s.stats.Conflicts),
		obs.F("decisions", s.stats.Decisions),
		obs.F("propagations", s.stats.Propagations),
		obs.F("props_per_sec", int64(propsPerSec)),
		obs.F("restarts", s.stats.Restarts),
		obs.F("learnts", len(s.learnts)),
		obs.F("deleted", s.stats.Deleted),
		obs.F("imported", s.stats.Imported),
		obs.F("exported", s.stats.Exported),
		obs.F("trail", len(s.trail)),
		obs.F("level", s.decisionLevel()),
		obs.F("arena_words", len(s.ca.data)),
		obs.F("arena_wasted", s.ca.wasted),
		obs.F("compactions", s.stats.Compactions),
		obs.F("lbd_hist", hist))
}

// Interrupt asks the running (or next) Solve to stop. It is safe to
// call from any goroutine; the search loop polls the flag every 256
// conflicts and returns Unknown with the solver left reusable. The
// flag is consumed by the Solve call that observes it.
func (s *Solver) Interrupt() { atomic.StoreInt32(&s.interrupt, 1) }

// ClearInterrupt discards a pending interrupt that no Solve consumed
// (e.g. a portfolio cancellation that raced with a solver finishing on
// its own budget).
func (s *Solver) ClearInterrupt() { atomic.StoreInt32(&s.interrupt, 0) }

// Interrupted reports whether an interrupt is pending.
func (s *Solver) Interrupted() bool { return atomic.LoadInt32(&s.interrupt) != 0 }

// SolveContext is Solve with context cancellation: when ctx is done
// the solver is interrupted and Unknown is returned promptly.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...int) Status {
	if err := ctx.Err(); err != nil {
		return Unknown
	}
	done := make(chan struct{})
	watcherGone := make(chan struct{})
	go func() {
		defer close(watcherGone)
		select {
		case <-ctx.Done():
			s.Interrupt()
		case <-done:
		}
	}()
	st := s.Solve(assumptions...)
	close(done)
	<-watcherGone
	if st == Unknown {
		// Consume an interrupt the watcher set after Solve returned.
		s.ClearInterrupt()
	}
	return st
}

// SetLearnCallback registers cb to receive learned clauses (DIMACS
// literals, asserting literal first) that have at most maxLen literals
// or LBD at most maxLBD. The callback runs synchronously on the
// solving goroutine; it must not call back into this solver. A nil cb
// disables export.
func (s *Solver) SetLearnCallback(maxLen, maxLBD int, cb func(lits []int, lbd int)) {
	s.learnMaxLen, s.learnMaxLBD, s.learnCB = maxLen, maxLBD, cb
}

// SetImportLimit bounds the pending-import queue; clauses arriving
// while the queue is full are dropped (sharing is best-effort). The
// default is 4096.
func (s *Solver) SetImportLimit(n int) {
	s.importMu.Lock()
	s.importLimit = n
	s.importMu.Unlock()
}

// ImportClause queues a clause learned by another solver over the same
// formula for injection at the next decision-level-0 point. It is safe
// to call from any goroutine; the literals are in DIMACS form and the
// slice is only read, never written, so one slice may be shared across
// several importing solvers.
func (s *Solver) ImportClause(lits []int, lbd int) {
	s.importMu.Lock()
	if len(s.importQ) < s.importLimit {
		s.importQ = append(s.importQ, sharedClause{lits, lbd})
	}
	s.importMu.Unlock()
}

// hasImports reports whether imported clauses are waiting (owner
// goroutine only; used to decide whether a restart should fall all the
// way back to level 0).
func (s *Solver) hasImports() bool {
	s.importMu.Lock()
	n := len(s.importQ)
	s.importMu.Unlock()
	return n > 0
}

// drainImports attaches pending imported clauses. Must be called at
// decision level 0. Returns false if an import proves the formula
// unsatisfiable (sound because imports are implied by the shared
// problem clauses).
func (s *Solver) drainImports() bool {
	s.importMu.Lock()
	pending := s.importQ
	s.importQ = nil
	s.importMu.Unlock()
	for _, sc := range pending {
		lits := make([]lit, 0, len(sc.lits))
		satisfied := false
		for _, x := range sc.lits {
			l := s.extToLit(x)
			switch s.value(l) {
			case lTrue:
				satisfied = true
			case lFalse:
				// false at level 0: drop the literal
			default:
				lits = append(lits, l)
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		switch len(lits) {
		case 0:
			s.unsat = true
			return false
		case 1:
			s.uncheckedEnqueue(lits[0], rNone)
			if s.propagate() != rNone {
				s.unsat = true
				return false
			}
		case 2:
			s.attachBin(lits[0], lits[1])
		default:
			cr := s.ca.alloc(lits, true, int32(sc.lbd))
			s.learnts = append(s.learnts, cr)
			s.attach(cr)
		}
		s.stats.Imported++
	}
	return true
}

// export hands a freshly learned clause to the exchange callback if it
// passes the sharing filter.
func (s *Solver) export(lits []lit, lbd int32) {
	if s.learnCB == nil {
		return
	}
	if len(lits) > s.learnMaxLen && int(lbd) > s.learnMaxLBD {
		return
	}
	ext := make([]int, len(lits))
	for i, l := range lits {
		ext[i] = s.extLit(l)
	}
	s.stats.Exported++
	s.learnCB(ext, int(lbd))
}

func (s *Solver) value(l lit) lbool {
	v := s.assigns[l.vari()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a problem clause in DIMACS form. Returns an error if
// the solver is already proven unsatisfiable at level 0.
func (s *Solver) AddClause(ext ...int) error {
	if s.unsat {
		return errors.New("sat: formula already unsatisfiable")
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	lits := make([]lit, 0, len(ext))
	for _, x := range ext {
		lits = append(lits, s.extToLit(x))
	}
	// Remove duplicates / satisfied-at-0 / false-at-0 literals and
	// detect tautologies, using the stamp array instead of a map.
	s.stampCtr++
	stamp := s.stampCtr
	out := lits[:0]
	for _, l := range lits {
		switch {
		case s.value(l) == lTrue, s.litStamp[l.neg()] == stamp:
			return nil // satisfied or tautology: drop the clause
		case s.value(l) == lFalse, s.litStamp[l] == stamp:
			continue
		default:
			s.litStamp[l] = stamp
			out = append(out, l)
		}
	}
	lits = out
	switch len(lits) {
	case 0:
		s.unsat = true
		return nil
	case 1:
		s.uncheckedEnqueue(lits[0], rNone)
		if s.propagate() != rNone {
			s.unsat = true
		}
		return nil
	case 2:
		s.attachBin(lits[0], lits[1])
		return nil
	}
	cr := s.ca.alloc(lits, false, 0)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return nil
}

func (s *Solver) attach(cr int32) {
	cl := s.ca.litsOf(cr)
	l0, l1 := cl[0], cl[1]
	s.watches[l0.neg()] = append(s.watches[l0.neg()], watcher{cr, l1})
	s.watches[l1.neg()] = append(s.watches[l1.neg()], watcher{cr, l0})
}

// attachBin records the binary clause (a ∨ b) in both binary watch
// lists; the clause has no arena presence and is never deleted.
func (s *Solver) attachBin(a, b lit) {
	s.binWatches[a.neg()] = append(s.binWatches[a.neg()], b)
	s.binWatches[b.neg()] = append(s.binWatches[b.neg()], a)
}

func (s *Solver) uncheckedEnqueue(l lit, from int32) {
	v := l.vari()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation from qhead. It returns rNone when a
// fixpoint is reached without conflict, binConflict when a binary
// clause (materialized in s.binConfl) is conflicting, or the tagged
// cref of a conflicting arena clause. For each trail literal the flat
// binary watch list is walked first — no clause memory is touched —
// then the long-clause watchers.
func (s *Solver) propagate() int32 {
	// The arena slab never grows during propagation, so hoist it out
	// of the loop; clause literal windows are sliced directly from it.
	data := s.ca.data
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		// Binary fast path: clauses (¬p ∨ other) with `other` inline.
		np := p.neg()
		for _, other := range s.binWatches[p] {
			switch s.value(other) {
			case lTrue:
			case lFalse:
				s.binConfl[0], s.binConfl[1] = other, np
				s.qhead = len(s.trail)
				return binConflict
			default:
				s.uncheckedEnqueue(other, binReason(np))
			}
		}

		ws := s.watches[p]
		kept := ws[:0]
		conflict := rNone
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			base := w.cr + hdrWords
			cl := data[base : base+(int32(data[w.cr])>>sizeShift)]
			// Normalize: make cl[1] the false literal (¬p).
			if cl[0] == np {
				cl[0], cl[1] = cl[1], cl[0]
			}
			first := cl[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{w.cr, first})
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != lFalse {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[cl[1].neg()] = append(s.watches[cl[1].neg()], watcher{w.cr, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cr, first})
			if s.value(first) == lFalse {
				conflict = clauseReason(w.cr)
				// Copy remaining watchers and stop.
				kept = append(kept, ws[i+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, clauseReason(w.cr))
		}
		s.watches[p] = kept
		if conflict != rNone {
			return conflict
		}
	}
	return rNone
}

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.vari()
		if !s.opts.NoPhaseSaving {
			s.polarity[v] = l.sign()
		}
		s.assigns[v] = lUndef
		s.reason[v] = rNone
		s.heap.insertIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(cr int32) {
	a := s.ca.activity(cr) + float32(s.claInc)
	s.ca.setActivity(cr, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

// computeLBD returns the number of distinct decision levels in the clause.
func (s *Solver) computeLBD(lits []lit) int32 {
	s.lbdCounter++
	var n int32
	for _, l := range lits {
		lv := s.level[l.vari()]
		if lv > 0 && s.lbdSeen[lv%int32(len(s.lbdSeen))] != s.lbdCounter {
			s.lbdSeen[lv%int32(len(s.lbdSeen))] = s.lbdCounter
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level. confl is
// propagate's tagged conflict: binConflict or a tagged cref. Reasons
// are walked through the same tagged encoding, so resolving on a
// binary clause reads its single remaining literal from the reason
// word itself — no clause memory involved.
func (s *Solver) analyze(confl int32) ([]lit, int32) {
	learnt := s.analyzeTmp[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	var p lit = -1
	idx := len(s.trail) - 1
	counter := 0
	r := confl

	for {
		// cur holds the literals this clause contributes; for a reason
		// clause the asserting literal (cl[0] == p) is skipped.
		var cur []lit
		switch {
		case r == binConflict:
			cur = s.binConfl[:]
		case isBinReason(r):
			s.binScratch[0] = lit(r >> 1)
			cur = s.binScratch[:]
		default:
			cr := r >> 1
			if s.ca.isLearnt(cr) {
				s.bumpClause(cr)
			}
			cur = s.ca.litsOf(cr)
			if p != -1 {
				cur = cur[1:]
			}
		}
		for _, q := range cur {
			v := q.vari()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk back the trail to the next marked literal.
		for !s.seen[s.trail[idx].vari()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.vari()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		r = s.reason[v]
	}
	learnt[0] = p.neg()

	// Everything marked so far must be unmarked at the end, including
	// literals the minimization below removes from the clause.
	toClear := make([]lit, len(learnt))
	copy(toClear, learnt)

	// Minimization: drop literals whose reason is subsumed by the rest
	// of the clause (local / non-recursive form). The seen flags are
	// still set for exactly the vars of learnt[1:], so they double as
	// the marked set.
	if !s.opts.NoMinimize {
		out := learnt[:1]
		for _, l := range learnt[1:] {
			r := s.reason[l.vari()]
			if r == rNone {
				out = append(out, l)
				continue
			}
			redundant := true
			if isBinReason(r) {
				q := lit(r >> 1)
				if !s.seen[q.vari()] && s.level[q.vari()] > 0 {
					redundant = false
				}
			} else {
				for _, q := range s.ca.litsOf(r >> 1) {
					if q.vari() == l.vari() {
						continue
					}
					if !s.seen[q.vari()] && s.level[q.vari()] > 0 {
						redundant = false
						break
					}
				}
			}
			if redundant {
				s.stats.Minimized++
			} else {
				out = append(out, l)
			}
		}
		learnt = out
	}

	// Clear seen flags for every marked literal (removed ones included).
	for _, l := range toClear {
		s.seen[l.vari()] = false
	}

	// Backtrack level: second-highest level in the clause.
	btLevel := int32(0)
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].vari()] > s.level[learnt[maxI].vari()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].vari()]
	}
	s.analyzeTmp = learnt[:0]
	cp := make([]lit, len(learnt))
	copy(cp, learnt)
	return cp, btLevel
}

// keepLearnt is the Glucose-style retention rule, in one place: a
// learnt clause survives reduction unconditionally iff its LBD is at
// most 3 or it is locked as the reason of a current assignment.
func (s *Solver) keepLearnt(cr int32) bool {
	return s.ca.lbd(cr) <= 3 || s.isReason(cr)
}

// reduceDB deletes roughly half of the learned clauses, keeping
// low-LBD and recently useful ones, then compacts the arena when
// enough of it is dead. Binary learnt clauses live outside the arena
// and are always kept.
func (s *Solver) reduceDB() {
	if s.opts.NoReduce {
		return
	}
	var keep, candidates []int32
	for _, cr := range s.learnts {
		if s.keepLearnt(cr) {
			keep = append(keep, cr)
		} else {
			candidates = append(candidates, cr)
		}
	}
	// Order candidates by activity, most active first.
	sort.Slice(candidates, func(i, j int) bool {
		return s.ca.activity(candidates[i]) > s.ca.activity(candidates[j])
	})
	cut := len(candidates) / 2
	for i, cr := range candidates {
		if i < cut {
			keep = append(keep, cr)
		} else {
			s.detach(cr)
			s.ca.free(cr)
			s.stats.Deleted++
		}
	}
	s.learnts = keep
	if s.ca.shouldCompact() {
		s.compactArena()
	}
}

func (s *Solver) isReason(cr int32) bool {
	v := s.ca.litsOf(cr)[0].vari()
	return s.assigns[v] != lUndef && s.reason[v] == clauseReason(cr)
}

func (s *Solver) detach(cr int32) {
	cl := s.ca.litsOf(cr)
	for _, w := range []lit{cl[0].neg(), cl[1].neg()} {
		ws := s.watches[w]
		for i, wt := range ws {
			if wt.cr == cr {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) pickBranchLit() lit {
	if s.rng != nil && s.opts.RandomVarFreq > 0 && s.numVars > 0 &&
		s.rng.Float64() < s.opts.RandomVarFreq {
		if v := int32(s.rng.Intn(int(s.numVars))); s.assigns[v] == lUndef {
			return mkLit(v, s.polarity[v])
		}
	}
	if s.opts.NoVSIDS {
		for v := int32(0); v < s.numVars; v++ {
			if s.assigns[v] == lUndef {
				return mkLit(v, s.polarity[v])
			}
		}
		return -1
	}
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assigns[v] == lUndef {
			return mkLit(v, s.polarity[v])
		}
	}
	return -1
}

// luby returns the i-th element (1-based) of the Luby restart
// sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve determines satisfiability under optional DIMACS assumptions.
// It returns Unknown only if a conflict/time budget from Options ran out.
func (s *Solver) Solve(assumptions ...int) (st Status) {
	if s.rec != nil {
		s.progEvery = s.opts.ProgressEvery
		if s.progEvery <= 0 {
			s.progEvery = 4096
		}
		s.lastEmitTime = time.Now()
		s.lastEmitConf, s.lastEmitProps = s.stats.Conflicts, s.stats.Propagations
		// Every Solve ends with one final progress snapshot, so even a
		// call that never reaches the cadence leaves a trace record.
		defer func() { s.emitProgress(true) }()
	}
	s.failedCore = nil
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	if !s.drainImports() {
		return Unsat
	}
	if s.Interrupted() {
		s.ClearInterrupt()
		return Unknown
	}
	assume := make([]lit, 0, len(assumptions))
	for _, a := range assumptions {
		assume = append(assume, s.extToLit(a))
	}

	// Timeout is sugar over the interrupt flag: one timer, no
	// time.Now() polling on the hot path. A timer that fired just as
	// this call returns must not abort the next Solve.
	if s.opts.Timeout > 0 {
		timer := time.AfterFunc(s.opts.Timeout, s.Interrupt)
		defer func() {
			if !timer.Stop() {
				s.ClearInterrupt()
			}
		}()
	}
	startConflicts := s.stats.Conflicts
	restartUnit := s.opts.RestartBase
	if restartUnit <= 0 {
		restartUnit = 100
	}
	varDecay := s.opts.VarDecay
	if varDecay <= 0 || varDecay >= 1 {
		varDecay = 0.95
	}
	restartNum := int64(0)
	conflictsUntilRestart := func() int64 {
		restartNum++
		return restartUnit * luby(restartNum)
	}
	budget := conflictsUntilRestart()

	for {
		confl := s.propagate()
		if confl != rNone {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			// Conflicts below the assumption levels: check whether the
			// conflict is independent of assumptions by analyzing
			// normally; if the backtrack level falls inside the
			// assumption prefix we just retract to it and re-decide.
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			lbd := int32(1)
			switch len(learnt) {
			case 1:
				s.uncheckedEnqueue(learnt[0], rNone)
				s.export(learnt, 1)
			case 2:
				s.attachBin(learnt[0], learnt[1])
				s.uncheckedEnqueue(learnt[0], binReason(learnt[1]))
				s.stats.Learned++
				lbd = s.computeLBD(learnt)
				s.export(learnt, lbd)
			default:
				lbd = s.computeLBD(learnt)
				cr := s.ca.alloc(learnt, true, lbd)
				s.learnts = append(s.learnts, cr)
				s.attach(cr)
				s.bumpClause(cr)
				s.uncheckedEnqueue(learnt[0], clauseReason(cr))
				s.stats.Learned++
				s.export(learnt, lbd)
			}
			if s.rec != nil {
				s.noteLearnt(lbd)
				if s.stats.Conflicts%s.progEvery == 0 {
					s.emitProgress(false)
				}
			}
			s.varInc /= varDecay
			s.claInc /= 0.999
			budget--
			if s.stats.Conflicts&255 == 0 && s.Interrupted() {
				s.ClearInterrupt()
				s.cancelUntil(0)
				return Unknown
			}
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts-startConflicts >= s.opts.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if budget <= 0 && !s.opts.NoRestarts && s.decisionLevel() > int32(len(assume)) {
			s.stats.Restarts++
			restartLevel := int32(len(assume))
			if s.hasImports() {
				// Fall back to level 0 so foreign clauses can be
				// attached; pending assumptions are re-applied below.
				restartLevel = 0
			}
			s.cancelUntil(restartLevel)
			if restartLevel == 0 && !s.drainImports() {
				return Unsat
			}
			budget = conflictsUntilRestart()
		}
		if len(s.learnts) > s.learntCap {
			s.reduceDB()
			s.learntCap += s.learntCap / 10
		}

		// Apply pending assumptions as pseudo-decisions.
		if int(s.decisionLevel()) < len(assume) {
			a := assume[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: introduce an empty decision level
				// so indices stay aligned.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				// Assumption contradicted: extract which assumptions
				// imply its negation before reporting Unsat.
				s.failedCore = append([]int{s.extLit(a)}, s.analyzeFinal(a.neg())...)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.uncheckedEnqueue(a, rNone)
				continue
			}
		}

		next := s.pickBranchLit()
		if next == -1 {
			// All variables assigned: SAT.
			s.model = make([]bool, s.numVars+1)
			for v := int32(0); v < s.numVars; v++ {
				s.model[v+1] = s.assigns[v] == lTrue
			}
			s.cancelUntil(int32(len(assume)))
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, rNone)
	}
}

// Model returns the satisfying assignment found by the last Sat call:
// Model()[v] is the value of DIMACS variable v. Index 0 is unused.
func (s *Solver) Model() []bool { return s.model }

// FailedAssumptions returns, after an Unsat result from Solve with
// assumptions, a subset of the assumptions (in DIMACS form) that is
// already sufficient for unsatisfiability — an unsat core over the
// assumption set. It is empty when the formula is unsatisfiable on its
// own.
func (s *Solver) FailedAssumptions() []int {
	return append([]int(nil), s.failedCore...)
}

// analyzeFinal computes the assumptions implying ¬p: it walks the
// implication graph from p back to decision (assumption) literals.
// Must be called before backtracking past the conflict.
func (s *Solver) analyzeFinal(p lit) []int {
	var core []int
	if s.decisionLevel() == 0 {
		return core
	}
	s.seen[p.vari()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		q := s.trail[i]
		v := q.vari()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == rNone {
			core = append(core, s.extLit(q))
		} else if isBinReason(r) {
			if o := lit(r >> 1); s.level[o.vari()] > 0 {
				s.seen[o.vari()] = true
			}
		} else {
			for _, l := range s.ca.litsOf(r >> 1) {
				if s.level[l.vari()] > 0 {
					s.seen[l.vari()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.vari()] = false
	return core
}

// SetSavedPhase overrides the phase-saving polarity of DIMACS
// variable v: the next branching decision on v tries `val` first.
// Callers can use it to diversify successive models during
// enumeration (the attack's candidate search).
func (s *Solver) SetSavedPhase(v int, val bool) {
	for s.NumVars() < v {
		s.NewVar()
	}
	s.polarity[v-1] = !val
}

// extLit converts an internal literal to DIMACS form.
func (s *Solver) extLit(l lit) int {
	v := int(l.vari()) + 1
	if l.sign() {
		return -v
	}
	return v
}
