package sat

import (
	"fmt"
	"math/rand"
	"testing"

	"sha3afa/internal/cnf"
)

// bruteForceSat enumerates all assignments of f.
func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars()
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m>>(v-1)&1 == 1
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestTrivial(t *testing.T) {
	s := New()
	v := s.NewVar()
	if err := s.AddClause(v); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("x: %v", got)
	}
	if !s.Model()[v] {
		t.Fatal("model violates unit clause")
	}
	if err := s.AddClause(-v); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("x & !x: %v", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.AddClause() // empty clause
	if s.Solve() != Unsat {
		t.Fatal("empty clause not UNSAT")
	}
}

func TestNoClausesSat(t *testing.T) {
	s := New()
	s.NewVar()
	s.NewVar()
	if s.Solve() != Sat {
		t.Fatal("empty formula not SAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(v, -v)
	if s.Solve() != Sat {
		t.Fatal("tautology made formula UNSAT")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	s := New()
	n := 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(-vars[i], vars[i+1])
	}
	s.AddClause(vars[0])
	if s.Solve() != Sat {
		t.Fatal("implication chain UNSAT")
	}
	for i, v := range vars {
		if !s.Model()[v] {
			t.Fatalf("var %d not propagated true", i)
		}
	}
}

// pigeonhole encodes PHP(holes+1 pigeons, holes) — classically UNSAT
// and a real workout for clause learning.
func pigeonhole(holes int) *cnf.Formula {
	f := cnf.New()
	pigeons := holes + 1
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = f.NewVars(holes)
		f.AddClause(p[i]...) // every pigeon in some hole
	}
	for h := 0; h < holes; h++ {
		for i := 0; i < pigeons; i++ {
			for j := i + 1; j < pigeons; j++ {
				f.AddClause(-p[i][h], -p[j][h])
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		st, _ := SolveFormula(pigeonhole(holes), Options{})
		if st != Unsat {
			t.Fatalf("PHP(%d) = %v, want UNSAT", holes, st)
		}
	}
}

func randomFormula(rng *rand.Rand, nVars, nClauses, width int) *cnf.Formula {
	f := cnf.New()
	f.NewVars(nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(width)
		c := make([]int, w)
		for j := range c {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		f.AddClause(c...)
	}
	return f
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(12)
		nClauses := 1 + rng.Intn(5*nVars)
		f := randomFormula(rng, nVars, nClauses, 3)
		want := bruteForceSat(f)
		st, model := SolveFormula(f, Options{})
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v", trial, st, want)
		}
		if st == Sat && !f.Eval(model) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

func TestRandomWithFeatureAblations(t *testing.T) {
	optSets := map[string]Options{
		"noVSIDS":    {NoVSIDS: true},
		"noRestart":  {NoRestarts: true},
		"noPhase":    {NoPhaseSaving: true},
		"noMinimize": {NoMinimize: true},
		"noReduce":   {NoReduce: true},
		"allOff":     {NoVSIDS: true, NoRestarts: true, NoPhaseSaving: true, NoMinimize: true, NoReduce: true},
	}
	for name, opts := range optSets {
		opts := opts
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			for trial := 0; trial < 80; trial++ {
				nVars := 3 + rng.Intn(10)
				f := randomFormula(rng, nVars, 1+rng.Intn(4*nVars), 3)
				want := bruteForceSat(f)
				st, model := SolveFormula(f, opts)
				if (st == Sat) != want {
					t.Fatalf("trial %d: solver=%v bruteforce=%v", trial, st, want)
				}
				if st == Sat && !f.Eval(model) {
					t.Fatalf("trial %d: bad model", trial)
				}
			}
		})
	}
}

func TestXorSystemAgainstLinearAlgebra(t *testing.T) {
	// Encode random GF(2) linear systems as XOR gadgets; SAT answer
	// must match linear-algebra solvability, and models must satisfy
	// the parity constraints.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		rows := 1 + rng.Intn(2*n)
		f := cnf.New()
		vars := f.NewVars(n)
		type eq struct {
			lits []int
			rhs  bool
		}
		var eqs []eq
		for r := 0; r < rows; r++ {
			var lits []int
			for _, v := range vars {
				if rng.Intn(2) == 1 {
					lits = append(lits, v)
				}
			}
			if len(lits) == 0 {
				continue
			}
			rhs := rng.Intn(2) == 1
			if len(lits) <= 5 {
				f.AddXorClause(lits, rhs)
			} else {
				out := f.GateXorMany(lits)
				if rhs {
					f.Unit(out)
				} else {
					f.Unit(-out)
				}
			}
			eqs = append(eqs, eq{lits, rhs})
		}
		st, model := SolveFormula(f, Options{})
		if st == Sat {
			for _, e := range eqs {
				p := false
				for _, l := range e.lits {
					if model[l] {
						p = !p
					}
				}
				if p != e.rhs {
					t.Fatalf("trial %d: model violates parity equation", trial)
				}
			}
		}
		// Solvability cross-check via brute force over the n real vars.
		want := false
		for m := 0; m < 1<<n && !want; m++ {
			all := true
			for _, e := range eqs {
				p := false
				for _, l := range e.lits {
					if m>>(l-1)&1 == 1 {
						p = !p
					}
				}
				if p != e.rhs {
					all = false
					break
				}
			}
			want = all
		}
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver=%v, linear solvability=%v", trial, st, want)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	if s.Solve(-a) != Sat {
		t.Fatal("(a|b) with ¬a should be SAT")
	}
	if !s.Model()[b] {
		t.Fatal("b must be true under ¬a")
	}
	if s.Solve(-a, -b) != Unsat {
		t.Fatal("(a|b) with ¬a∧¬b should be UNSAT")
	}
	// Solver remains usable after assumption UNSAT.
	if s.Solve() != Sat {
		t.Fatal("solver unusable after assumption conflict")
	}
	if s.Solve(a) != Sat {
		t.Fatal("assuming a should be SAT")
	}
	if !s.Model()[a] {
		t.Fatal("model ignores assumption")
	}
}

func TestModelEnumeration(t *testing.T) {
	// Count models of (a|b)&(a|c) by blocking; compare to brute force.
	build := func() *cnf.Formula {
		f := cnf.New()
		v := f.NewVars(3)
		f.AddClause(v[0], v[1])
		f.AddClause(v[0], v[2])
		return f
	}
	f := build()
	want := 0
	for m := 0; m < 8; m++ {
		assign := []bool{false, m&1 == 1, m&2 == 2, m&4 == 4}
		if f.Eval(assign) {
			want++
		}
	}
	s := FromFormula(f, Options{})
	got := 0
	for s.Solve() == Sat {
		got++
		if got > 8 {
			t.Fatal("enumeration does not terminate")
		}
		model := s.Model()
		block := make([]int, 3)
		for v := 1; v <= 3; v++ {
			if model[v] {
				block[v-1] = -v
			} else {
				block[v-1] = v
			}
		}
		if err := s.AddClause(block...); err != nil {
			break
		}
	}
	if got != want {
		t.Fatalf("enumerated %d models, want %d", got, want)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(a, b, c)
	if s.Solve() != Sat {
		t.Fatal("initial SAT failed")
	}
	s.AddClause(-a)
	s.AddClause(-b)
	if s.Solve() != Sat {
		t.Fatal("still satisfiable with c")
	}
	if !s.Model()[c] {
		t.Fatal("c must be true")
	}
	s.AddClause(-c)
	if s.Solve() != Unsat {
		t.Fatal("should be UNSAT now")
	}
}

func TestMaxConflictsUnknown(t *testing.T) {
	f := pigeonhole(8) // large enough to exceed one conflict
	st, _ := SolveFormula(f, Options{MaxConflicts: 1})
	if st != Unknown {
		t.Fatalf("budget of 1 conflict returned %v", st)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	st, _ := SolveFormula(pigeonhole(5), Options{})
	if st != Unsat {
		t.Fatal("PHP(5) not UNSAT")
	}
	s := FromFormula(pigeonhole(5), Options{})
	s.Solve()
	stats := s.Stats()
	if stats.Conflicts == 0 || stats.Decisions == 0 || stats.Propagations == 0 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestLargeRandom3SATSatisfiable(t *testing.T) {
	// Planted-solution instances: always SAT, solver must find a model.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 200
		planted := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			planted[v] = rng.Intn(2) == 1
		}
		f := cnf.New()
		f.NewVars(n)
		for i := 0; i < 4*n; i++ {
			c := make([]int, 3)
			for {
				ok := false
				for j := range c {
					v := 1 + rng.Intn(n)
					if rng.Intn(2) == 0 {
						v = -v
					}
					c[j] = v
					if planted[absInt(v)] == (v > 0) {
						ok = true
					}
				}
				if ok {
					break
				}
			}
			f.AddClause(c...)
		}
		st, model := SolveFormula(f, Options{})
		if st != Sat {
			t.Fatalf("planted instance %d not solved: %v", trial, st)
		}
		if !f.Eval(model) {
			t.Fatalf("planted instance %d: invalid model", trial)
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAddClauseAfterUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(v)
	s.AddClause(-v)
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	if err := s.AddClause(v, -v); err == nil {
		t.Fatal("AddClause after UNSAT should error")
	}
}

func TestStatusString(t *testing.T) {
	if fmt.Sprint(Sat, Unsat, Unknown) != "SAT UNSAT UNKNOWN" {
		t.Fatal("Status strings wrong")
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, _ := SolveFormula(pigeonhole(7), Options{})
		if st != Unsat {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkPlanted3SAT600(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 600
	planted := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		planted[v] = rng.Intn(2) == 1
	}
	f := cnf.New()
	f.NewVars(n)
	for i := 0; i < 4*n; i++ {
		c := make([]int, 3)
		for {
			ok := false
			for j := range c {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
				if planted[absInt(v)] == (v > 0) {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		f.AddClause(c...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := SolveFormula(f, Options{})
		if st != Sat {
			b.Fatal("wrong answer")
		}
	}
}
