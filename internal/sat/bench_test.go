package sat

import (
	"testing"
)

// BenchmarkPropagateArena measures the propagation-dominated hot loop
// on the clause shape the attack encoder emits: pigeonhole instances
// are almost entirely pairwise AtMostOne binaries, so nearly every
// propagation and conflict walks binary clauses. This is the benchmark
// the clause-arena + binary-watch work is gated on (EXPERIMENTS.md §P2).
func BenchmarkPropagateArena(b *testing.B) {
	f := pigeonhole(7)
	b.ReportAllocs()
	b.ResetTimer()
	props := int64(0)
	for i := 0; i < b.N; i++ {
		s := FromFormula(f, Options{})
		if st := s.Solve(); st != Unsat {
			b.Fatalf("got %v", st)
		}
		props = s.Stats().Propagations
	}
	b.ReportMetric(float64(props), "props")
}
