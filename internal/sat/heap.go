package sat

// varHeap is a binary max-heap of variables ordered by activity, with
// a position index for O(log n) updates — the EVSIDS decision queue.
type varHeap struct {
	activity *[]float64
	heap     []int32
	pos      []int32 // pos[v] = index in heap, -1 if absent
}

func (h *varHeap) less(a, b int32) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v int32) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v int32) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(h.pos[v])
}

func (h *varHeap) insertIfAbsent(v int32) { h.insert(v) }

func (h *varHeap) pop() int32 {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return top
}

// update re-heapifies after v's activity increased.
func (h *varHeap) update(v int32) {
	if h.contains(v) {
		h.up(h.pos[v])
	}
}

func (h *varHeap) up(i int32) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int32) {
	v := h.heap[i]
	n := int32(len(h.heap))
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && h.less(h.heap[right], h.heap[left]) {
			best = right
		}
		if !h.less(h.heap[best], v) {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.pos[v] = i
}
