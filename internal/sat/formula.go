package sat

import "sha3afa/internal/cnf"

// FromFormula loads every clause of a cnf.Formula into a fresh solver
// with the given options. Variable numbering is preserved, so models
// index directly back into the formula's variables.
func FromFormula(f *cnf.Formula, opts Options) *Solver {
	s := NewWithOptions(opts)
	for s.NumVars() < f.NumVars() {
		s.NewVar()
	}
	for _, c := range f.Clauses() {
		if err := s.AddClause(c...); err != nil {
			// Already UNSAT at level 0: remaining clauses are irrelevant.
			break
		}
	}
	return s
}

// SolveFormula is a convenience one-shot: load, solve, return status
// and model (nil unless Sat).
func SolveFormula(f *cnf.Formula, opts Options) (Status, []bool) {
	s := FromFormula(f, opts)
	st := s.Solve()
	if st == Sat {
		return st, s.Model()
	}
	return st, nil
}
