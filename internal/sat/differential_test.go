package sat

import (
	"math/rand"
	"sync"
	"testing"

	"sha3afa/internal/cnf"
)

// satisfyingMasks enumerates every assignment of f (nVars small) and
// returns the set of satisfying assignments as bitmasks (bit v-1 =
// variable v). It is the reference path for the differential test:
// pure enumeration, sharing no code with the CDCL engine.
func satisfyingMasks(f *cnf.Formula, nVars int) []uint32 {
	var out []uint32
	for m := uint32(0); m < 1<<nVars; m++ {
	clauseLoop:
		for _, c := range f.Clauses() {
			for _, l := range c {
				v := l
				if v < 0 {
					v = -v
				}
				bit := m>>(v-1)&1 == 1
				if (l > 0) == bit {
					continue clauseLoop // clause satisfied
				}
			}
			goto falsified
		}
		out = append(out, m)
	falsified:
	}
	return out
}

// maskConsistent reports whether mask agrees with every assumption
// literal.
func maskConsistent(mask uint32, assumptions []int) bool {
	for _, a := range assumptions {
		v := a
		if v < 0 {
			v = -v
		}
		if (mask>>(v-1)&1 == 1) != (a > 0) {
			return false
		}
	}
	return true
}

// messyFormula generates a small random CNF deliberately covering the
// AddClause edge cases: unit clauses, duplicate literals inside a
// clause, and tautological clauses.
func messyFormula(rng *rand.Rand, nVars int) *cnf.Formula {
	f := cnf.New()
	f.NewVars(nVars)
	nClauses := 1 + rng.Intn(6*nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(4) // width 1..4: units are common
		c := make([]int, 0, w+2)
		for j := 0; j < w; j++ {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c = append(c, v)
		}
		if rng.Intn(4) == 0 { // duplicate an existing literal
			c = append(c, c[rng.Intn(len(c))])
		}
		if rng.Intn(6) == 0 { // make the clause a tautology
			l := c[rng.Intn(len(c))]
			c = append(c, -l)
		}
		f.AddClause(c...)
	}
	return f
}

// TestDifferentialAgainstEnumeration drives the arena-backed solver
// over ~200 random messy CNFs, each queried incrementally under
// several assumption sets, and checks every answer against exhaustive
// enumeration. This is the agreement proof for the clause-arena
// rewrite: same Sat/Unsat answers, and every claimed model actually
// satisfies formula and assumptions.
func TestDifferentialAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 200; trial++ {
		nVars := 3 + rng.Intn(10)
		f := messyFormula(rng, nVars)
		models := satisfyingMasks(f, nVars)

		s := FromFormula(f, Options{})
		// First an unconditional solve, then several assumption sets on
		// the same solver so learned clauses and the arena persist
		// across queries.
		queries := make([][]int, 1, 4)
		queries[0] = nil
		for q := 0; q < 3; q++ {
			var as []int
			for v := 1; v <= nVars; v++ {
				if rng.Intn(3) == 0 {
					if rng.Intn(2) == 0 {
						as = append(as, v)
					} else {
						as = append(as, -v)
					}
				}
			}
			queries = append(queries, as)
		}

		for qi, as := range queries {
			want := false
			for _, m := range models {
				if maskConsistent(m, as) {
					want = true
					break
				}
			}
			st := s.Solve(as...)
			if (st == Sat) != want {
				t.Fatalf("trial %d query %d (%v): solver=%v enumeration-sat=%v",
					trial, qi, as, st, want)
			}
			if st == Sat {
				model := s.Model()
				if !f.Eval(model) {
					t.Fatalf("trial %d query %d: model does not satisfy formula", trial, qi)
				}
				for _, a := range as {
					v := a
					if v < 0 {
						v = -v
					}
					if model[v] != (a > 0) {
						t.Fatalf("trial %d query %d: model violates assumption %d", trial, qi, a)
					}
				}
			} else {
				// The failed-assumption core must be a subset of the
				// assumptions and itself unsatisfiable with the formula.
				core := s.FailedAssumptions()
				inAs := make(map[int]bool, len(as))
				for _, a := range as {
					inAs[a] = true
				}
				for _, a := range core {
					if !inAs[a] {
						t.Fatalf("trial %d query %d: failed assumption %d not assumed", trial, qi, a)
					}
				}
				for _, m := range models {
					if maskConsistent(m, core) {
						t.Fatalf("trial %d query %d: failed-assumption core %v is not a core", trial, qi, core)
					}
				}
			}
		}
	}
}

// TestArenaGCStress interleaves everything that moves clauses through
// the arena: a tiny learnt cap forces reduceDB (and with it arena
// free + compaction) constantly, a concurrent goroutine injects
// implied clauses via ImportClause while Solve runs, and incremental
// AddClause calls land between solves. Every query is built from a
// planted model, so the expected answer (Sat, and a model consistent
// with the formula) is known throughout. Run under -race this also
// checks the import queue locking against the arena mutation paths.
func TestArenaGCStress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 400
	planted := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		planted[v] = rng.Intn(2) == 1
	}
	f := cnf.New()
	f.NewVars(n)
	for i := 0; i < 4*n; i++ {
		c := make([]int, 3)
		for {
			ok := false
			for j := range c {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
				if planted[absInt(v)] == (v > 0) {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		f.AddClause(c...)
	}

	s := FromFormula(f, Options{})
	s.learntCap = 15 // force reduceDB (and arena GC) almost every restart

	// Importer: supersets of original clauses are implied by the
	// formula, so injecting them never changes satisfiability.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		irng := rand.New(rand.NewSource(78))
		cls := f.Clauses()
		for {
			select {
			case <-stop:
				return
			default:
			}
			base := cls[irng.Intn(len(cls))]
			c := append([]int(nil), base...)
			for k := 0; k < 1+irng.Intn(3); k++ {
				v := 1 + irng.Intn(n)
				if irng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			s.ImportClause(c, len(c))
		}
	}()

	cls := f.Clauses()
	for iter := 0; iter < 25; iter++ {
		// Prime the import queue synchronously so Solve's level-0 drain
		// always has work, independent of goroutine scheduling (the
		// concurrent importer above supplies the race coverage).
		for k := 0; k < 10; k++ {
			base := cls[rng.Intn(len(cls))]
			c := append(append([]int(nil), base...), 1+rng.Intn(n))
			s.ImportClause(c, len(c))
		}
		// Assume a few literals of the planted model: stays Sat.
		var as []int
		for k := 0; k < 5; k++ {
			v := 1 + rng.Intn(n)
			if planted[v] {
				as = append(as, v)
			} else {
				as = append(as, -v)
			}
		}
		if st := s.Solve(as...); st != Sat {
			t.Fatalf("iter %d: %v, want SAT", iter, st)
		}
		model := s.Model()
		if !f.Eval(model) {
			t.Fatalf("iter %d: invalid model after GC/import interleaving", iter)
		}
		// Grow the formula with another implied clause mid-stream.
		base := cls[rng.Intn(len(cls))]
		extra := append(append([]int(nil), base...), 1+rng.Intn(n))
		if err := s.AddClause(extra...); err != nil {
			t.Fatalf("iter %d: AddClause: %v", iter, err)
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Deleted == 0 {
		t.Fatal("stress never triggered reduceDB clause deletion — arena GC untested")
	}
	if st.Imported == 0 {
		t.Fatal("stress never drained an imported clause")
	}
}
