package sat

import (
	"math/rand"
	"testing"

	"sha3afa/internal/cnf"
)

func TestFailedAssumptionsSimple(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(-a, -b) // a and b cannot both hold
	_ = c
	if s.Solve(a, b, c) != Unsat {
		t.Fatal("expected UNSAT")
	}
	core := s.FailedAssumptions()
	if len(core) == 0 {
		t.Fatal("empty failed core")
	}
	inCore := map[int]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if !inCore[a] && !inCore[b] {
		t.Fatalf("core %v misses both conflicting assumptions", core)
	}
	if inCore[c] {
		t.Fatalf("core %v includes irrelevant assumption", core)
	}
}

func TestFailedAssumptionsContradictoryPair(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.NewVar()
	if s.Solve(-v, v) != Unsat {
		t.Fatal("expected UNSAT for contradictory assumptions")
	}
	core := s.FailedAssumptions()
	seen := map[int]bool{}
	for _, l := range core {
		seen[l] = true
	}
	if !seen[v] || !seen[-v] {
		t.Fatalf("core %v should contain both polarities", core)
	}
}

func TestFailedAssumptionsChain(t *testing.T) {
	// a -> x1 -> x2 -> ... -> xn, and assume a plus ¬xn.
	s := New()
	n := 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(-vars[i], vars[i+1])
	}
	extra := s.NewVar()
	if s.Solve(vars[0], -vars[n-1], extra) != Unsat {
		t.Fatal("expected UNSAT")
	}
	core := s.FailedAssumptions()
	seen := map[int]bool{}
	for _, l := range core {
		seen[l] = true
	}
	if !seen[vars[0]] || !seen[-vars[n-1]] {
		t.Fatalf("core %v misses the chain endpoints", core)
	}
	if seen[extra] {
		t.Fatalf("core %v includes irrelevant assumption", core)
	}
}

func TestFailedAssumptionsIsActuallyUnsat(t *testing.T) {
	// Property: re-solving with only the failed core must stay UNSAT.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		nVars := 5 + rng.Intn(10)
		f := randomFormula(rng, nVars, 3*nVars, 3)
		s := FromFormula(f, Options{})
		var assume []int
		for v := 1; v <= nVars; v++ {
			if rng.Intn(2) == 0 {
				continue
			}
			l := v
			if rng.Intn(2) == 0 {
				l = -v
			}
			assume = append(assume, l)
		}
		if s.Solve(assume...) != Unsat {
			continue
		}
		core := s.FailedAssumptions()
		if len(core) > len(assume)+1 {
			t.Fatalf("core larger than assumption set: %v vs %v", core, assume)
		}
		s2 := FromFormula(f, Options{})
		if st := s2.Solve(core...); st != Unsat {
			t.Fatalf("trial %d: core %v not sufficient for UNSAT (got %v, assume %v)",
				trial, core, st, assume)
		}
	}
}

func TestFailedAssumptionsEmptyOnPlainUnsat(t *testing.T) {
	f := cnf.New()
	v := f.NewVar()
	f.AddClause(v)
	f.AddClause(-v)
	s := FromFormula(f, Options{})
	if s.Solve(1) != Unsat {
		t.Fatal("expected UNSAT")
	}
	if len(s.FailedAssumptions()) != 0 {
		t.Fatal("plain UNSAT should yield an empty failed core")
	}
}

func TestSetSavedPhase(t *testing.T) {
	// With no constraints, the first model follows the saved phases.
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.SetSavedPhase(a, true)
	s.SetSavedPhase(b, false)
	if s.Solve() != Sat {
		t.Fatal("free formula UNSAT")
	}
	m := s.Model()
	if !m[a] || m[b] {
		t.Fatalf("model %v ignores saved phases", m)
	}
	s.SetSavedPhase(a, false)
	s.SetSavedPhase(b, true)
	if s.Solve() != Sat {
		t.Fatal("free formula UNSAT")
	}
	m = s.Model()
	if m[a] || !m[b] {
		t.Fatalf("model %v ignores flipped phases", m)
	}
}

func TestFailedAssumptionsClearedOnSat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(-a, -b)
	if s.Solve(a, b) != Unsat {
		t.Fatal("setup failed")
	}
	if s.Solve(a) != Sat {
		t.Fatal("should be SAT with one assumption")
	}
	if len(s.FailedAssumptions()) != 0 {
		t.Fatal("failed core not cleared after SAT")
	}
}
