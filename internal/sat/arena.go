package sat

import (
	"math"

	"sha3afa/internal/obs"
)

// Clause arena: every clause with three or more literals lives in one
// flat []lit slab and is addressed by a cref — the int32 index of its
// header word. This removes the per-clause allocation and the pointer
// chase of a []*clause store from the propagate/analyze hot loops; the
// layout and GC scheme follow MiniSat's ClauseAllocator (see
// DESIGN.md, "Clause arena layout").
//
// Layout of one clause at cref c:
//
//	data[c+0]  header: size<<3 | relocated<<2 | learnt<<1 | deleted
//	data[c+1]  LBD (learnt clauses; forwarding cref while relocated)
//	data[c+2]  activity as float32 bits (learnt clauses)
//	data[c+3 .. c+3+size)  literals; lits[0] is the asserting literal
//	                       when the clause is a propagation reason
//
// Binary clauses never enter the arena at all: they are stored inline
// in the dedicated binary watch lists (solver.binWatches) and encoded
// as tagged reasons, so propagating or resolving them touches no
// clause memory.

// crefUndef marks "no clause".
const crefUndef int32 = -1

const (
	hdrWords = 3 // header word, LBD word, activity word

	flagDeleted   = 1 << 0
	flagLearnt    = 1 << 1
	flagRelocated = 1 << 2
	sizeShift     = 3
)

type clauseArena struct {
	data   []lit
	wasted int // words occupied by deleted clauses, reclaimed by compact
}

// alloc appends a clause and returns its cref.
func (a *clauseArena) alloc(lits []lit, learnt bool, lbd int32) int32 {
	cr := int32(len(a.data))
	hdr := lit(int32(len(lits)) << sizeShift)
	if learnt {
		hdr |= flagLearnt
	}
	a.data = append(a.data, hdr, lit(lbd), 0)
	a.data = append(a.data, lits...)
	return cr
}

func (a *clauseArena) size(c int32) int32   { return int32(a.data[c]) >> sizeShift }
func (a *clauseArena) isLearnt(c int32) bool { return a.data[c]&flagLearnt != 0 }
func (a *clauseArena) lbd(c int32) int32    { return int32(a.data[c+1]) }

// litsOf returns the clause's literal slice (a live view into the
// slab; element swaps are how propagate reorders watches).
func (a *clauseArena) litsOf(c int32) []lit {
	return a.data[c+hdrWords : c+hdrWords+a.size(c)]
}

func (a *clauseArena) activity(c int32) float32 {
	return math.Float32frombits(uint32(a.data[c+2]))
}

func (a *clauseArena) setActivity(c int32, v float32) {
	a.data[c+2] = lit(int32(math.Float32bits(v)))
}

// free marks the clause deleted; the words are reclaimed by the next
// compaction. The caller must have detached its watchers first.
func (a *clauseArena) free(c int32) {
	a.data[c] |= flagDeleted
	a.wasted += int(hdrWords + a.size(c))
}

// shouldCompact reports whether enough of the slab is dead to be worth
// a copying collection (MiniSat's 20% rule).
func (a *clauseArena) shouldCompact() bool {
	return a.wasted > 0 && a.wasted*5 > len(a.data)
}

// compactArena performs a two-space copying collection of the clause
// slab: every live clause — reachable from the problem list, the
// learnt list, the watch lists, or as a propagation reason — is copied
// into a fresh slab in list order, a forwarding cref is left in the
// old header (LBD slot), and every cref in the solver is rewritten
// through it. Deleted clauses are simply not copied. Watchers of
// deleted clauses were detached when the clause was freed, so every
// cref encountered here is live.
func (s *Solver) compactArena() {
	wastedBefore, wordsBefore := s.ca.wasted, len(s.ca.data)
	old := s.ca.data
	newData := make([]lit, 0, len(old)-s.ca.wasted)
	reloc := func(c int32) int32 {
		if old[c]&flagRelocated != 0 {
			return int32(old[c+1])
		}
		nc := int32(len(newData))
		end := c + hdrWords + (int32(old[c]) >> sizeShift)
		newData = append(newData, old[c:end]...)
		old[c] |= flagRelocated
		old[c+1] = lit(nc)
		return nc
	}
	for i, c := range s.clauses {
		s.clauses[i] = reloc(c)
	}
	for i, c := range s.learnts {
		s.learnts[i] = reloc(c)
	}
	for p := range s.watches {
		ws := s.watches[p]
		for i := range ws {
			ws[i].cr = reloc(ws[i].cr)
		}
	}
	for v := int32(0); v < s.numVars; v++ {
		if r := s.reason[v]; r >= 0 && !isBinReason(r) {
			s.reason[v] = clauseReason(reloc(r >> 1))
		}
	}
	s.ca.data = newData
	s.ca.wasted = 0
	s.stats.Compactions++
	if s.rec != nil {
		s.rec.Emit(s.recSrc, "solver.compact",
			obs.F("words_before", wordsBefore),
			obs.F("words_after", len(newData)),
			obs.F("reclaimed", wastedBefore))
	}
}
