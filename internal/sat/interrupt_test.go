package sat

import (
	"context"
	"testing"
	"time"

	"sha3afa/internal/cnf"
)

// TestInterruptStopsLongSolve interrupts a solve that would otherwise
// run for a very long time (PHP(9) is far beyond the check interval)
// and asserts Unknown comes back promptly with the solver reusable.
func TestInterruptStopsLongSolve(t *testing.T) {
	holes := 9
	f := pigeonhole(holes)
	s := FromFormula(f, Options{})

	status := make(chan Status, 1)
	go func() { status <- s.Solve() }()
	time.Sleep(50 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-status:
		if st != Unknown {
			t.Fatalf("interrupted solve returned %v, want UNKNOWN", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupt not honored within 30s")
	}

	// The solver must be left reusable: pin pigeon i to hole i, which
	// makes the instance UNSAT by pure propagation (pigeon holes+1 has
	// nowhere left), and solve to completion.
	pigeonVar := func(i, h int) int { return i*holes + h + 1 }
	for i := 0; i < holes; i++ {
		if err := s.AddClause(pigeonVar(i, i)); err != nil {
			// Level-0 propagation may already expose the contradiction
			// while the units are being added — that is the expected
			// endgame, not a failure.
			break
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("pinned PHP(%d) after interrupt = %v, want UNSAT", holes, st)
	}
}

// TestInterruptPendingConsumedByNextSolve: an interrupt raised while
// no solve is running aborts the next Solve and is consumed by it.
func TestInterruptPendingConsumedByNextSolve(t *testing.T) {
	s := FromFormula(pigeonhole(5), Options{})
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-interrupted solve returned %v", st)
	}
	if s.Interrupted() {
		t.Fatal("interrupt flag not consumed")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("solve after consumed interrupt = %v, want UNSAT", st)
	}
}

// TestTimeoutIsSugarOverInterrupt: the Timeout option must behave as a
// self-armed interrupt — Unknown promptly, solver reusable, and no
// stale flag leaking into a later call.
func TestTimeoutIsSugarOverInterrupt(t *testing.T) {
	s := FromFormula(pigeonhole(9), Options{Timeout: 50 * time.Millisecond})
	start := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("timed-out solve returned %v", st)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timeout honored only after %v", elapsed)
	}
	if s.Interrupted() {
		t.Fatal("stale interrupt after timeout")
	}
}

func TestSolveContextCancellation(t *testing.T) {
	s := FromFormula(pigeonhole(9), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if st := s.SolveContext(ctx); st != Unknown {
		t.Fatalf("cancelled SolveContext returned %v", st)
	}
	if s.Interrupted() {
		t.Fatal("stale interrupt after context cancellation")
	}
	// A fresh, undone context solves normally.
	s2 := FromFormula(pigeonhole(4), Options{})
	if st := s2.SolveContext(context.Background()); st != Unsat {
		t.Fatalf("SolveContext on PHP(4) = %v", st)
	}
}

// TestSolveContextExpiredDeadline: a context that is already past its
// deadline returns Unknown immediately without doing any solving work
// — the service layer's per-attempt deadline relies on this so a blown
// deadline fails the attempt promptly instead of starting a solve that
// will only be interrupted moments later.
func TestSolveContextExpiredDeadline(t *testing.T) {
	s := FromFormula(pigeonhole(9), Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if st := s.SolveContext(ctx); st != Unknown {
		t.Fatalf("expired-deadline SolveContext returned %v", st)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired-deadline SolveContext took %v, want immediate return", elapsed)
	}
	if got := s.Stats().Conflicts; got != 0 {
		t.Fatalf("expired-deadline solve did %d conflicts of work, want 0", got)
	}
	if s.Interrupted() {
		t.Fatal("stale interrupt left behind by expired-deadline solve")
	}
}

func TestImportClauseForcesLiteral(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.ImportClause([]int{-a}, 1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Model()[a] || !s.Model()[b] {
		t.Fatalf("imported unit ignored: model %v", s.Model())
	}
	if s.Stats().Imported != 1 {
		t.Fatalf("Imported = %d, want 1", s.Stats().Imported)
	}
}

func TestImportConflictingUnitsUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.NewVar()
	s.ImportClause([]int{v}, 1)
	s.ImportClause([]int{-v}, 1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("conflicting imports = %v, want UNSAT", st)
	}
}

func TestImportLimitBoundsQueue(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	s.SetImportLimit(2)
	for i := 0; i < 10; i++ {
		s.ImportClause([]int{a, b}, 2)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if got := s.Stats().Imported; got != 2 {
		t.Fatalf("Imported = %d, want 2 (queue bounded)", got)
	}
}

func TestLearnCallbackExportsFilteredClauses(t *testing.T) {
	var got [][]int
	s := FromFormula(pigeonhole(5), Options{})
	maxLen, maxLBD := 3, 2
	s.SetLearnCallback(maxLen, maxLBD, func(lits []int, lbd int) {
		if len(lits) > maxLen && lbd > maxLBD {
			t.Fatalf("exported clause violates filter: len=%d lbd=%d", len(lits), lbd)
		}
		got = append(got, lits)
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(5) = %v", st)
	}
	if len(got) == 0 {
		t.Fatal("no clauses exported from a learning-heavy solve")
	}
	if int64(len(got)) != s.Stats().Exported {
		t.Fatalf("callback count %d != Exported stat %d", len(got), s.Stats().Exported)
	}
}

func TestDiversifiedOptionsStillCorrect(t *testing.T) {
	// Every diversification knob must preserve answers.
	variants := []Options{
		{Seed: 7, RandomVarFreq: 0.1},
		{Seed: 3, InitialPhase: PhaseRandom},
		{InitialPhase: PhaseTrue},
		{VarDecay: 0.99, RestartBase: 16},
		{Seed: 9, RandomVarFreq: 0.05, InitialPhase: PhaseRandom, VarDecay: 0.90, RestartBase: 512},
	}
	for vi, opts := range variants {
		if st, _ := SolveFormula(pigeonhole(5), opts); st != Unsat {
			t.Fatalf("variant %d: PHP(5) = %v", vi, st)
		}
		st, model := SolveFormula(pigeonhole5Sat(), opts)
		if st != Sat {
			t.Fatalf("variant %d: satisfiable instance = %v", vi, st)
		}
		_ = model
	}
}

// pigeonhole5Sat: PHP with as many holes as pigeons — satisfiable.
func pigeonhole5Sat() *cnf.Formula {
	f := cnf.New()
	n := 5
	p := make([][]int, n)
	for i := range p {
		p[i] = f.NewVars(n)
		f.AddClause(p[i]...)
	}
	for h := 0; h < n; h++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				f.AddClause(-p[i][h], -p[j][h])
			}
		}
	}
	return f
}
