package keccak

import "math/bits"

// RoundConstants are the ι constants RC[0..23] of Keccak-f[1600].
var RoundConstants = [NumRounds]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// RhoOffsets[x][y] is the ρ rotation of lane (x, y).
var RhoOffsets = [5][5]int{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// Theta applies the θ step: each bit is XORed with the parities of two
// neighbouring columns. θ is linear and is the only step mixing across
// lanes in the x/y plane.
func (s *State) Theta() {
	var c [5]uint64
	for x := 0; x < 5; x++ {
		c[x] = s[x] ^ s[x+5] ^ s[x+10] ^ s[x+15] ^ s[x+20]
	}
	for x := 0; x < 5; x++ {
		d := c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		for y := 0; y < 5; y++ {
			s[LaneIndex(x, y)] ^= d
		}
	}
}

// Rho applies the ρ step: per-lane rotations.
func (s *State) Rho() {
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			i := LaneIndex(x, y)
			s[i] = bits.RotateLeft64(s[i], RhoOffsets[x][y])
		}
	}
}

// Pi applies the π step: lane transposition A'[x][y] = A[x+3y][x].
func (s *State) Pi() {
	var t State
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			t[LaneIndex(x, y)] = s[LaneIndex((x+3*y)%5, x)]
		}
	}
	*s = t
}

// Chi applies the χ step, the only non-linear layer:
// A'[x][y] = A[x][y] XOR (NOT A[x+1][y] AND A[x+2][y]). Degree 2.
func (s *State) Chi() {
	for y := 0; y < 5; y++ {
		var row [5]uint64
		for x := 0; x < 5; x++ {
			row[x] = s[LaneIndex(x, y)]
		}
		for x := 0; x < 5; x++ {
			s[LaneIndex(x, y)] = row[x] ^ (^row[(x+1)%5] & row[(x+2)%5])
		}
	}
}

// Iota XORs the round constant of round r into lane (0,0).
func (s *State) Iota(r int) {
	s[0] ^= RoundConstants[r]
}

// LinearLayer applies L = π ∘ ρ ∘ θ, the linear part of a round.
func (s *State) LinearLayer() {
	s.Theta()
	s.Rho()
	s.Pi()
}

// Round applies one full round R = ι ∘ χ ∘ π ∘ ρ ∘ θ with round index r.
func (s *State) Round(r int) {
	s.LinearLayer()
	s.Chi()
	s.Iota(r)
}

// Permute applies the full 24-round Keccak-f[1600] permutation.
func (s *State) Permute() {
	for r := 0; r < NumRounds; r++ {
		s.Round(r)
	}
}

// PermuteRounds applies rounds from..to-1 (half-open). It allows the
// attack code to run "the last two rounds" or "everything up to round
// 22" without reimplementing the schedule.
func (s *State) PermuteRounds(from, to int) {
	if from < 0 || to > NumRounds || from > to {
		panic("keccak: invalid round range")
	}
	for r := from; r < to; r++ {
		s.Round(r)
	}
}

// RoundHook receives the state as it stands at the entry of round r
// (i.e. the θ input). Returning a non-nil delta XORs it into the state
// before the round executes — this is the fault-injection point used
// throughout the reproduction.
type RoundHook func(r int, s *State) *State

// PermuteWithHook runs the full permutation, calling hook at the entry
// of every round. A nil hook degenerates to Permute.
func (s *State) PermuteWithHook(hook RoundHook) {
	for r := 0; r < NumRounds; r++ {
		if hook != nil {
			if delta := hook(r, s); delta != nil {
				s.Xor(delta)
			}
		}
		s.Round(r)
	}
}

// Snapshots runs the permutation and returns the state at the entry of
// every round plus the final state: element r is the θ input of round
// r for r < 24, element 24 is the permutation output. The receiver is
// updated to the output.
func (s *State) Snapshots() [NumRounds + 1]State {
	var snaps [NumRounds + 1]State
	for r := 0; r < NumRounds; r++ {
		snaps[r] = *s
		s.Round(r)
	}
	snaps[NumRounds] = *s
	return snaps
}
