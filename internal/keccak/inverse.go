package keccak

import (
	"math/bits"
	"sync"

	"sha3afa/internal/bitmat"
)

// chiRowTable and invChiRowTable hold the 5-bit χ row S-box and its
// inverse. χ restricted to one row of five bits is a bijection (the
// row length is odd), so inversion is a 32-entry lookup.
var chiRowTable, invChiRowTable [32]uint8

func init() {
	for in := 0; in < 32; in++ {
		out := 0
		for x := 0; x < 5; x++ {
			b := in >> x & 1
			b1 := in >> ((x + 1) % 5) & 1
			b2 := in >> ((x + 2) % 5) & 1
			out |= (b ^ (^b1 & 1 & b2)) << x
		}
		chiRowTable[in] = uint8(out)
		invChiRowTable[out] = uint8(in)
	}
}

// InvChi applies χ⁻¹. The inverse has algebraic degree 3 (versus χ's
// degree 2) — the asymmetry the paper's algebraic analysis leans on.
func (s *State) InvChi() {
	for y := 0; y < 5; y++ {
		var row [5]uint64
		for x := 0; x < 5; x++ {
			row[x] = s[LaneIndex(x, y)]
		}
		var out [5]uint64
		for z := 0; z < LaneBits; z++ {
			v := 0
			for x := 0; x < 5; x++ {
				v |= int(row[x]>>uint(z)&1) << x
			}
			inv := invChiRowTable[v]
			for x := 0; x < 5; x++ {
				out[x] |= uint64(inv>>x&1) << uint(z)
			}
		}
		for x := 0; x < 5; x++ {
			s[LaneIndex(x, y)] = out[x]
		}
	}
}

// InvRho undoes the per-lane rotations.
func (s *State) InvRho() {
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			i := LaneIndex(x, y)
			s[i] = bits.RotateLeft64(s[i], -RhoOffsets[x][y])
		}
	}
}

// InvPi undoes the lane transposition.
func (s *State) InvPi() {
	var t State
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			t[LaneIndex((x+3*y)%5, x)] = s[LaneIndex(x, y)]
		}
	}
	*s = t
}

// InvIota is self-inverse (XOR with the same constant).
func (s *State) InvIota(r int) { s.Iota(r) }

var (
	invThetaOnce sync.Once
	invThetaMat  *bitmat.Mat
)

// invTheta returns the cached 1600×1600 inverse of the θ matrix. θ is
// invertible on Keccak-f[1600]; we build its matrix by probing unit
// vectors and invert it once with GF(2) Gaussian elimination.
func invTheta() *bitmat.Mat {
	invThetaOnce.Do(func() {
		m := bitmat.NewMat(StateBits, StateBits)
		for j := 0; j < StateBits; j++ {
			var probe State
			probe.SetBit(j, true)
			probe.Theta()
			for i := 0; i < StateBits; i++ {
				if probe.Bit(i) {
					m.Set(i, j, true)
				}
			}
		}
		inv, err := m.Inverse()
		if err != nil {
			panic("keccak: θ matrix is singular — implementation bug: " + err.Error())
		}
		invThetaMat = inv
	})
	return invThetaMat
}

// ToVec copies the state into a 1600-bit vector (global bit order).
func (s *State) ToVec() *bitmat.Vec {
	v := bitmat.NewVec(StateBits)
	for l, lane := range s {
		for lane != 0 {
			z := bits.TrailingZeros64(lane)
			v.Set(l*LaneBits+z, true)
			lane &= lane - 1
		}
	}
	return v
}

// FromVec loads the state from a 1600-bit vector.
func FromVec(v *bitmat.Vec) State {
	if v.Len() != StateBits {
		panic("keccak: FromVec needs a 1600-bit vector")
	}
	var s State
	for i := v.FirstSet(); i >= 0; i = v.NextSet(i + 1) {
		s.SetBit(i, true)
	}
	return s
}

// InvTheta applies θ⁻¹ via the cached inverse matrix.
func (s *State) InvTheta() {
	*s = FromVec(invTheta().MulVec(s.ToVec()))
}

// InvLinearLayer applies L⁻¹ = θ⁻¹ ∘ ρ⁻¹ ∘ π⁻¹.
func (s *State) InvLinearLayer() {
	s.InvPi()
	s.InvRho()
	s.InvTheta()
}

// InvRound undoes round r.
func (s *State) InvRound(r int) {
	s.InvIota(r)
	s.InvChi()
	s.InvLinearLayer()
}

// InvPermute applies the full inverse permutation Keccak-f⁻¹[1600].
// The attack uses it to walk a recovered χ-input state of round 22
// back to the sponge input and hence to the message block.
func (s *State) InvPermute() {
	for r := NumRounds - 1; r >= 0; r-- {
		s.InvRound(r)
	}
}

// InvPermuteRounds undoes rounds from..to-1 (half-open), i.e. it maps
// the θ input of round `to` back to the θ input of round `from`.
func (s *State) InvPermuteRounds(from, to int) {
	if from < 0 || to > NumRounds || from > to {
		panic("keccak: invalid round range")
	}
	for r := to - 1; r >= from; r-- {
		s.InvRound(r)
	}
}
