package keccak

// This file exposes the inside of a hash computation to the fault
// analysis: the input of the final permutation, the state at the entry
// of every round, and digest computation with a fault XORed into the
// θ input of a chosen round — the paper's injection point.

// Trace records the internals of the final permutation of one hash
// computation.
type Trace struct {
	Mode      Mode
	Message   []byte
	PermInput State                // input of the final (digest-producing) permutation
	Rounds    [NumRounds + 1]State // Rounds[r] = θ input of round r; Rounds[24] = output
	Digest    []byte
}

// ChiInput returns the χ input of round r, i.e. L(Rounds[r]) — the
// 1600-bit secret the attack recovers for r = 22.
func (t *Trace) ChiInput(r int) State {
	s := t.Rounds[r]
	s.LinearLayer()
	return s
}

// finalPermInput absorbs the padded message and returns the state just
// before the final permutation, plus the number of preceding blocks.
func finalPermInput(m Mode, msg []byte) State {
	rate := m.RateBytes()
	padded := append(append([]byte(nil), msg...), make([]byte, 0)...)
	// Multi-rate padding: the tail (possibly empty) becomes one final block.
	nFull := len(msg) / rate
	tail := msg[nFull*rate:]
	last := PadBlock(tail, rate, m.DomainByte())

	var s State
	for i := 0; i < nFull; i++ {
		s.XorBytes(padded[i*rate : (i+1)*rate])
		s.Permute()
	}
	s.XorBytes(last)
	return s
}

// TraceHash hashes msg under mode m, recording the final permutation's
// round-by-round states. For SHAKE modes the default output length is
// used and must fit in one squeeze (it does for both defaults).
func TraceHash(m Mode, msg []byte) *Trace {
	t := &Trace{Mode: m, Message: append([]byte(nil), msg...)}
	t.PermInput = finalPermInput(m, msg)
	s := t.PermInput
	t.Rounds = s.Snapshots()
	t.Digest = t.Rounds[NumRounds].ExtractBytes(m.DigestBits() / 8)
	return t
}

// HashWithFault hashes msg under mode m with delta XORed into the θ
// input of the given round of the final permutation, returning the
// faulty digest. round 22 is the paper's penultimate-round target.
func HashWithFault(m Mode, msg []byte, round int, delta *State) []byte {
	if round < 0 || round >= NumRounds {
		panic("keccak: fault round out of range")
	}
	s := finalPermInput(m, msg)
	s.PermuteWithHook(func(r int, _ *State) *State {
		if r == round {
			return delta
		}
		return nil
	})
	return s.ExtractBytes(m.DigestBits() / 8)
}

// DigestBitsOf extracts digest bit i (little-endian bit order within
// bytes, matching the state bit order) from a digest byte slice.
func DigestBitsOf(digest []byte, i int) bool {
	return digest[i/8]>>(uint(i)%8)&1 == 1
}

// RecoverPermInput inverts the final permutation from a recovered χ
// input of round `round`: it applies χ, ι for that round, nothing
// further forward, and instead walks backwards to round 0. The result
// is the input of the final permutation, from which the message block
// and capacity bits can be read.
func RecoverPermInput(chiInput State, round int) State {
	s := chiInput
	// χ input of round r = L(θ input of round r); undo L to get the
	// round entry, then undo all earlier rounds.
	s.InvPi()
	s.InvRho()
	s.InvTheta()
	s.InvPermuteRounds(0, round)
	return s
}

// VerifyRecovery checks a recovered χ-input state of round `round`
// against the true message: it recomputes the permutation input and
// verifies capacity bits are zero-consistent with the mode and that
// the resulting digest matches.
func VerifyRecovery(m Mode, msg []byte, chiInput State, round int) bool {
	want := finalPermInput(m, msg)
	got := RecoverPermInput(chiInput, round)
	return got.Equal(&want)
}
