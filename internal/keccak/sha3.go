package keccak

import (
	"fmt"
	"hash"
)

// Mode identifies one of the four SHA-3 fixed-output modes (the
// paper's four attack targets) or one of the two SHAKE XOFs.
type Mode int

// The supported hashing modes.
const (
	SHA3_224 Mode = iota
	SHA3_256
	SHA3_384
	SHA3_512
	SHAKE128
	SHAKE256
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case SHA3_224:
		return "SHA3-224"
	case SHA3_256:
		return "SHA3-256"
	case SHA3_384:
		return "SHA3-384"
	case SHA3_512:
		return "SHA3-512"
	case SHAKE128:
		return "SHAKE128"
	case SHAKE256:
		return "SHAKE256"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// FixedModes lists the four SHA-3 modes the paper attacks.
var FixedModes = []Mode{SHA3_224, SHA3_256, SHA3_384, SHA3_512}

// DigestBits returns the digest length in bits (the default output
// length for the SHAKE modes).
func (m Mode) DigestBits() int {
	switch m {
	case SHA3_224:
		return 224
	case SHA3_256, SHAKE128:
		return 256
	case SHA3_384:
		return 384
	case SHA3_512, SHAKE256:
		return 512
	default:
		panic("keccak: unknown mode")
	}
}

// CapacityBits returns the sponge capacity c of the mode.
func (m Mode) CapacityBits() int {
	switch m {
	case SHA3_224:
		return 448
	case SHA3_256, SHAKE256:
		return 512
	case SHA3_384:
		return 768
	case SHA3_512:
		return 1024
	case SHAKE128:
		return 256
	default:
		panic("keccak: unknown mode")
	}
}

// RateBits returns the sponge rate r = 1600 - c.
func (m Mode) RateBits() int { return StateBits - m.CapacityBits() }

// RateBytes returns the rate in bytes.
func (m Mode) RateBytes() int { return m.RateBits() / 8 }

// DomainByte returns the padding domain-separation byte (0x06 for the
// SHA-3 modes, 0x1F for SHAKE).
func (m Mode) DomainByte() byte {
	switch m {
	case SHAKE128, SHAKE256:
		return 0x1F
	default:
		return 0x06
	}
}

// IsXOF reports whether the mode is an extendable-output function.
func (m Mode) IsXOF() bool { return m == SHAKE128 || m == SHAKE256 }

// ParseMode maps a conventional name to a Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "SHA3-224", "sha3-224", "224":
		return SHA3_224, nil
	case "SHA3-256", "sha3-256", "256":
		return SHA3_256, nil
	case "SHA3-384", "sha3-384", "384":
		return SHA3_384, nil
	case "SHA3-512", "sha3-512", "512":
		return SHA3_512, nil
	case "SHAKE128", "shake128":
		return SHAKE128, nil
	case "SHAKE256", "shake256":
		return SHAKE256, nil
	default:
		return 0, fmt.Errorf("keccak: unknown mode %q", name)
	}
}

// Hasher is a streaming SHA-3/SHAKE hasher implementing hash.Hash.
type Hasher struct {
	mode   Mode
	sponge *Sponge
}

var _ hash.Hash = (*Hasher)(nil)

// New returns a streaming hasher for the given mode.
func New(m Mode) *Hasher {
	return &Hasher{mode: m, sponge: NewSponge(m.RateBytes(), m.DomainByte())}
}

// Write absorbs p; it never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	h.sponge.Absorb(p)
	return len(p), nil
}

// Sum appends the digest of the absorbed data to b without disturbing
// the hasher state.
func (h *Hasher) Sum(b []byte) []byte {
	c := h.sponge.Clone()
	return append(b, c.Squeeze(h.Size())...)
}

// Reset restores the initial state.
func (h *Hasher) Reset() {
	h.sponge = NewSponge(h.mode.RateBytes(), h.mode.DomainByte())
}

// Size returns the digest length in bytes.
func (h *Hasher) Size() int { return h.mode.DigestBits() / 8 }

// BlockSize returns the sponge rate in bytes.
func (h *Hasher) BlockSize() int { return h.mode.RateBytes() }

// Mode returns the hasher's mode.
func (h *Hasher) Mode() Mode { return h.mode }

// Sum computes the digest of msg under mode m in one call.
func Sum(m Mode, msg []byte) []byte {
	h := New(m)
	h.Write(msg)
	return h.Sum(nil)
}

// ShakeSum computes n bytes of SHAKE output for msg.
func ShakeSum(m Mode, msg []byte, n int) []byte {
	if !m.IsXOF() {
		panic("keccak: ShakeSum requires a SHAKE mode")
	}
	sp := NewSponge(m.RateBytes(), m.DomainByte())
	sp.Absorb(msg)
	return sp.Squeeze(n)
}
