package keccak

import (
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the permutation's core
// algebraic invariants.

func fromLanes(lanes [NumLanes]uint64) State { return State(lanes) }

func TestQuickPermutationBijective(t *testing.T) {
	f := func(lanes [NumLanes]uint64) bool {
		s := fromLanes(lanes)
		p := s
		p.Permute()
		p.InvPermute()
		return p.Equal(&s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinearLayerLinearity(t *testing.T) {
	f := func(a, b [NumLanes]uint64) bool {
		x, y := fromLanes(a), fromLanes(b)
		sum := x
		sum.Xor(&y)
		sum.LinearLayer()
		x.LinearLayer()
		y.LinearLayer()
		x.Xor(&y)
		return sum.Equal(&x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChiRowLocality(t *testing.T) {
	// χ acts independently per row: changing row y=2 must not affect
	// any other row's output.
	f := func(lanes [NumLanes]uint64, mod uint64) bool {
		s := fromLanes(lanes)
		s2 := s
		s2[LaneIndex(1, 2)] ^= mod | 1
		a, b := s, s2
		a.Chi()
		b.Chi()
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				same := a[LaneIndex(x, y)] == b[LaneIndex(x, y)]
				if y != 2 && !same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickThetaColumnParityInvariant(t *testing.T) {
	// θ's effect depends only on column parities: adding any pattern
	// with all-zero column parities to the input changes θ's output by
	// exactly that pattern.
	f := func(lanes [NumLanes]uint64, e0, e1 uint64) bool {
		s := fromLanes(lanes)
		// Build a parity-free pattern: equal bits in two lanes of the
		// same column cancel in the parity.
		var e State
		e[LaneIndex(2, 0)] = e0
		e[LaneIndex(2, 3)] = e0
		e[LaneIndex(4, 1)] = e1
		e[LaneIndex(4, 2)] = e1
		s2 := s
		s2.Xor(&e)
		s.Theta()
		s2.Theta()
		s.Xor(&s2)
		return s.Equal(&e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTraceDigestMatchesSum(t *testing.T) {
	f := func(msg []byte) bool {
		if len(msg) > 4000 {
			msg = msg[:4000]
		}
		tr := TraceHash(SHA3_256, msg)
		d := Sum(SHA3_256, msg)
		return string(tr.Digest) == string(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStateBytesInvolution(t *testing.T) {
	f := func(lanes [NumLanes]uint64) bool {
		s := fromLanes(lanes)
		var s2 State
		s2.SetBytes(s.Bytes())
		return s2.Equal(&s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundBijective(t *testing.T) {
	f := func(lanes [NumLanes]uint64, r uint8) bool {
		round := int(r) % NumRounds
		s := fromLanes(lanes)
		p := s
		p.Round(round)
		p.InvRound(round)
		return p.Equal(&s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
