// Package keccak implements the Keccak-f[1600] permutation and the
// SHA-3 / SHAKE function family from scratch, with the per-round and
// per-step access the fault-analysis attack needs: individual step
// mappings (θ, ρ, π, χ, ι), round-range execution, state snapshots
// inside a hash computation, and the full inverse permutation used to
// walk a recovered internal state back to the message block.
//
// Bit-index convention (matching FIPS 202): state bit i corresponds to
// lane (x, y) with x = (i/64) mod 5, y = (i/64) / 5, and bit z = i mod
// 64 within the lane, so i = 64*(x + 5*y) + z.
package keccak

import (
	"encoding/binary"
	"fmt"
)

// Width of the permutation in bits, lanes and bytes.
const (
	StateBits  = 1600
	LaneBits   = 64
	NumLanes   = 25
	StateBytes = StateBits / 8
	NumRounds  = 24
)

// State is the 1600-bit Keccak state as 25 lanes of 64 bits. Lane
// (x,y) is stored at index x + 5*y.
type State [NumLanes]uint64

// LaneIndex returns the lane index of coordinates (x, y).
func LaneIndex(x, y int) int { return x + 5*y }

// BitIndex returns the global bit index of (x, y, z).
func BitIndex(x, y, z int) int { return LaneBits*LaneIndex(x, y) + z }

// BitCoords returns the (x, y, z) coordinates of global bit index i.
func BitCoords(i int) (x, y, z int) {
	if i < 0 || i >= StateBits {
		panic(fmt.Sprintf("keccak: bit index %d out of range", i))
	}
	return (i / LaneBits) % 5, i / (5 * LaneBits), i % LaneBits
}

// Bit returns state bit i.
func (s *State) Bit(i int) bool {
	if i < 0 || i >= StateBits {
		panic(fmt.Sprintf("keccak: bit index %d out of range", i))
	}
	return s[i/LaneBits]>>(uint(i)%LaneBits)&1 == 1
}

// SetBit assigns state bit i.
func (s *State) SetBit(i int, b bool) {
	if i < 0 || i >= StateBits {
		panic(fmt.Sprintf("keccak: bit index %d out of range", i))
	}
	mask := uint64(1) << (uint(i) % LaneBits)
	if b {
		s[i/LaneBits] |= mask
	} else {
		s[i/LaneBits] &^= mask
	}
}

// FlipBit toggles state bit i.
func (s *State) FlipBit(i int) {
	s[i/LaneBits] ^= uint64(1) << (uint(i) % LaneBits)
}

// Xor accumulates o into s bitwise.
func (s *State) Xor(o *State) {
	for i := range s {
		s[i] ^= o[i]
	}
}

// Equal reports whether the two states are identical.
func (s *State) Equal(o *State) bool { return *s == *o }

// IsZero reports whether every bit is zero.
func (s *State) IsZero() bool {
	for _, l := range s {
		if l != 0 {
			return false
		}
	}
	return true
}

// Bytes serializes the state in the FIPS 202 byte order (lane 0 first,
// little-endian lanes).
func (s *State) Bytes() []byte {
	out := make([]byte, StateBytes)
	for i, l := range s {
		binary.LittleEndian.PutUint64(out[8*i:], l)
	}
	return out
}

// SetBytes loads the state from a 200-byte serialization.
func (s *State) SetBytes(b []byte) {
	if len(b) != StateBytes {
		panic(fmt.Sprintf("keccak: SetBytes needs %d bytes, got %d", StateBytes, len(b)))
	}
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// XorBytes XORs up to 200 bytes into the front of the state — the
// sponge absorb primitive.
func (s *State) XorBytes(b []byte) {
	if len(b) > StateBytes {
		panic("keccak: XorBytes block too large")
	}
	var full [StateBytes]byte
	copy(full[:], b)
	for i := range s {
		s[i] ^= binary.LittleEndian.Uint64(full[8*i:])
	}
}

// ExtractBytes copies the first n bytes of the state — the sponge
// squeeze primitive.
func (s *State) ExtractBytes(n int) []byte {
	if n < 0 || n > StateBytes {
		panic("keccak: ExtractBytes length out of range")
	}
	return s.Bytes()[:n]
}

// String formats the state as 25 hex lanes, for debugging.
func (s *State) String() string {
	out := ""
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			out += fmt.Sprintf("%016x ", s[LaneIndex(x, y)])
		}
		out += "\n"
	}
	return out
}
