package keccak

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
)

// FIPS 202 known-answer vectors.
var katEmpty = map[Mode]string{
	SHA3_224: "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7",
	SHA3_256: "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a",
	SHA3_384: "0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2ac3713831264adb47fb6bd1e058d5f004",
	SHA3_512: "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26",
}

var katABC = map[Mode]string{
	SHA3_224: "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf",
	SHA3_256: "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532",
	SHA3_384: "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b298d88cea927ac7f539f1edf228376d25",
	SHA3_512: "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0",
}

func TestSHA3KnownAnswers(t *testing.T) {
	for m, want := range katEmpty {
		if got := hex.EncodeToString(Sum(m, nil)); got != want {
			t.Errorf("%s(\"\") = %s, want %s", m, got, want)
		}
	}
	for m, want := range katABC {
		if got := hex.EncodeToString(Sum(m, []byte("abc"))); got != want {
			t.Errorf("%s(\"abc\") = %s, want %s", m, got, want)
		}
	}
}

func TestSHAKEKnownAnswers(t *testing.T) {
	want128 := "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
	if got := hex.EncodeToString(ShakeSum(SHAKE128, nil, 32)); got != want128 {
		t.Errorf("SHAKE128(\"\") = %s, want %s", got, want128)
	}
	want256 := "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f" +
		"d75dc4ddd8c0f200cb05019d67b592f6fc821c49479ab48640292eacb3b7c4be"
	if got := hex.EncodeToString(ShakeSum(SHAKE256, nil, 64)); got != want256 {
		t.Errorf("SHAKE256(\"\") = %s, want %s", got, want256)
	}
}

func TestPermuteZeroStateVector(t *testing.T) {
	// First lane of Keccak-f[1600] applied to the all-zero state.
	var s State
	s.Permute()
	if s[0] != 0xF1258F7940E1DDE7 {
		t.Fatalf("Keccak-f(0) lane 0 = %016x, want f1258f7940e1dde7", s[0])
	}
}

func randState(rng *rand.Rand) State {
	var s State
	for i := range s {
		s[i] = rng.Uint64()
	}
	return s
}

func TestStepInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		orig := randState(rng)

		s := orig
		s.Theta()
		s.InvTheta()
		if !s.Equal(&orig) {
			t.Fatal("θ⁻¹∘θ != id")
		}

		s = orig
		s.Rho()
		s.InvRho()
		if !s.Equal(&orig) {
			t.Fatal("ρ⁻¹∘ρ != id")
		}

		s = orig
		s.Pi()
		s.InvPi()
		if !s.Equal(&orig) {
			t.Fatal("π⁻¹∘π != id")
		}

		s = orig
		s.Chi()
		s.InvChi()
		if !s.Equal(&orig) {
			t.Fatal("χ⁻¹∘χ != id")
		}

		s = orig
		s.Iota(5)
		s.InvIota(5)
		if !s.Equal(&orig) {
			t.Fatal("ι⁻¹∘ι != id")
		}
	}
}

func TestPermuteInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		orig := randState(rng)
		s := orig
		s.Permute()
		s.InvPermute()
		if !s.Equal(&orig) {
			t.Fatal("InvPermute does not invert Permute")
		}
	}
}

func TestPermuteRoundsComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := randState(rng)
	a := orig
	a.Permute()
	b := orig
	b.PermuteRounds(0, 22)
	b.PermuteRounds(22, 24)
	if !a.Equal(&b) {
		t.Fatal("PermuteRounds(0,22)+(22,24) != Permute")
	}
	c := orig
	c.PermuteRounds(0, 24)
	c.InvPermuteRounds(22, 24)
	d := orig
	d.PermuteRounds(0, 22)
	if !c.Equal(&d) {
		t.Fatal("InvPermuteRounds does not undo the last two rounds")
	}
}

func TestBitIndexingRoundTrip(t *testing.T) {
	for i := 0; i < StateBits; i++ {
		x, y, z := BitCoords(i)
		if BitIndex(x, y, z) != i {
			t.Fatalf("BitIndex(BitCoords(%d)) = %d", i, BitIndex(x, y, z))
		}
		var s State
		s.SetBit(i, true)
		if !s.Bit(i) || s.ToVec().PopCount() != 1 || !s.ToVec().Get(i) {
			t.Fatalf("bit %d set/get inconsistent", i)
		}
		s.FlipBit(i)
		if !s.IsZero() {
			t.Fatalf("FlipBit(%d) did not clear", i)
		}
	}
}

func TestStateBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randState(rng)
	var s2 State
	s2.SetBytes(s.Bytes())
	if !s.Equal(&s2) {
		t.Fatal("SetBytes(Bytes()) != id")
	}
	// Byte order: bit i of the state is bit i%8 of byte i/8.
	for _, i := range []int{0, 7, 8, 63, 64, 1599} {
		var u State
		u.SetBit(i, true)
		b := u.Bytes()
		if b[i/8] != 1<<(uint(i)%8) {
			t.Fatalf("bit %d lands in wrong byte position", i)
		}
	}
}

func TestToVecFromVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randState(rng)
	if got := FromVec(s.ToVec()); !got.Equal(&s) {
		t.Fatal("FromVec(ToVec()) != id")
	}
}

func TestHasherStreamingMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	msg := make([]byte, 1000)
	rng.Read(msg)
	for _, m := range FixedModes {
		h := New(m)
		// Write in ragged chunks.
		for off := 0; off < len(msg); {
			n := 1 + rng.Intn(97)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			h.Write(msg[off : off+n])
			off += n
		}
		if !bytes.Equal(h.Sum(nil), Sum(m, msg)) {
			t.Errorf("%s: streaming digest differs from one-shot", m)
		}
		// Sum must not disturb state: calling twice gives same answer.
		if !bytes.Equal(h.Sum(nil), h.Sum(nil)) {
			t.Errorf("%s: Sum is not idempotent", m)
		}
		h.Reset()
		h.Write([]byte("abc"))
		if !bytes.Equal(h.Sum(nil), Sum(m, []byte("abc"))) {
			t.Errorf("%s: Reset did not restore initial state", m)
		}
	}
}

func TestHasherInterfaceSizes(t *testing.T) {
	for _, m := range FixedModes {
		h := New(m)
		if h.Size() != m.DigestBits()/8 {
			t.Errorf("%s: Size() = %d", m, h.Size())
		}
		if h.BlockSize() != m.RateBytes() {
			t.Errorf("%s: BlockSize() = %d", m, h.BlockSize())
		}
		if h.Mode() != m {
			t.Errorf("%s: Mode() mismatch", m)
		}
	}
}

func TestModeMetadata(t *testing.T) {
	for _, m := range append(append([]Mode{}, FixedModes...), SHAKE128, SHAKE256) {
		if m.RateBits()+m.CapacityBits() != StateBits {
			t.Errorf("%s: rate+capacity != 1600", m)
		}
		if m.RateBits()%8 != 0 {
			t.Errorf("%s: rate not byte aligned", m)
		}
		if m.DigestBits() > m.RateBits() {
			t.Errorf("%s: digest does not fit one squeeze", m)
		}
	}
	if SHA3_256.DomainByte() != 0x06 || SHAKE128.DomainByte() != 0x1F {
		t.Error("wrong domain separation bytes")
	}
	if !SHAKE128.IsXOF() || SHA3_512.IsXOF() {
		t.Error("IsXOF misclassifies")
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range []Mode{SHA3_224, SHA3_256, SHA3_384, SHA3_512, SHAKE128, SHAKE256} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMode("MD5"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}

func TestShakeSqueezeAcrossRateBoundary(t *testing.T) {
	// Squeezing byte-by-byte must match one big squeeze, across the
	// permutation boundary.
	msg := []byte("squeeze boundary")
	n := SHAKE128.RateBytes() + 40
	big := ShakeSum(SHAKE128, msg, n)
	sp := NewSponge(SHAKE128.RateBytes(), SHAKE128.DomainByte())
	sp.Absorb(msg)
	var small []byte
	for len(small) < n {
		small = append(small, sp.Squeeze(1)...)
	}
	if !bytes.Equal(big, small) {
		t.Fatal("incremental squeeze differs from bulk squeeze")
	}
}

func TestSpongeAbsorbAfterSqueezePanics(t *testing.T) {
	sp := NewSponge(136, 0x06)
	sp.Absorb([]byte("x"))
	sp.Squeeze(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Absorb after Squeeze")
		}
	}()
	sp.Absorb([]byte("y"))
}

func TestPadBlockStructure(t *testing.T) {
	rate := 136
	// Empty tail: 0x06 then zeros then 0x80.
	b := PadBlock(nil, rate, 0x06)
	if b[0] != 0x06 || b[rate-1] != 0x80 {
		t.Fatal("empty-tail padding wrong")
	}
	for i := 1; i < rate-1; i++ {
		if b[i] != 0 {
			t.Fatal("padding interior not zero")
		}
	}
	// Tail of rate-1 bytes: ds byte and final bit share the last byte.
	tail := bytes.Repeat([]byte{0xAA}, rate-1)
	b = PadBlock(tail, rate, 0x06)
	if b[rate-1] != 0x06^0x80 {
		t.Fatalf("merged pad byte = %02x, want %02x", b[rate-1], 0x06^0x80)
	}
}

func TestTraceHashConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range FixedModes {
		msg := make([]byte, 1+rng.Intn(m.RateBytes()-1))
		rng.Read(msg)
		tr := TraceHash(m, msg)
		if !bytes.Equal(tr.Digest, Sum(m, msg)) {
			t.Fatalf("%s: trace digest mismatch", m)
		}
		// Rounds[0] is the permutation input; Rounds[24] its output.
		if !tr.Rounds[0].Equal(&tr.PermInput) {
			t.Fatalf("%s: Rounds[0] != PermInput", m)
		}
		out := tr.PermInput
		out.Permute()
		if !tr.Rounds[NumRounds].Equal(&out) {
			t.Fatalf("%s: Rounds[24] != Permute(PermInput)", m)
		}
		// ChiInput(r) then χ, ι must give Rounds[r+1].
		for _, r := range []int{0, 10, 22, 23} {
			ci := tr.ChiInput(r)
			ci.Chi()
			ci.Iota(r)
			if !ci.Equal(&tr.Rounds[r+1]) {
				t.Fatalf("%s: ChiInput(%d) inconsistent", m, r)
			}
		}
	}
}

func TestTraceHashMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := SHA3_256
	msg := make([]byte, 3*m.RateBytes()+17) // four blocks after padding
	rng.Read(msg)
	tr := TraceHash(m, msg)
	if !bytes.Equal(tr.Digest, Sum(m, msg)) {
		t.Fatal("multi-block trace digest mismatch")
	}
}

func TestHashWithFault(t *testing.T) {
	msg := []byte("fault target message")
	m := SHA3_256
	// Zero fault: digest unchanged.
	var zero State
	if !bytes.Equal(HashWithFault(m, msg, 22, &zero), Sum(m, msg)) {
		t.Fatal("zero fault changed the digest")
	}
	// Single-bit fault at round 22 changes the digest.
	var delta State
	delta.SetBit(777, true)
	faulty := HashWithFault(m, msg, 22, &delta)
	if bytes.Equal(faulty, Sum(m, msg)) {
		t.Fatal("fault did not change the digest")
	}
	// Injecting at the θ input of round 22 must agree with manual
	// reconstruction via the trace.
	tr := TraceHash(m, msg)
	s := tr.Rounds[22]
	s.Xor(&delta)
	s.PermuteRounds(22, 24)
	if !bytes.Equal(faulty, s.ExtractBytes(m.DigestBits()/8)) {
		t.Fatal("HashWithFault disagrees with trace reconstruction")
	}
}

func TestRecoverPermInputAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range FixedModes {
		msg := make([]byte, 1+rng.Intn(m.RateBytes()-1))
		rng.Read(msg)
		tr := TraceHash(m, msg)
		chi22 := tr.ChiInput(22)
		got := RecoverPermInput(chi22, 22)
		if !got.Equal(&tr.PermInput) {
			t.Fatalf("%s: RecoverPermInput failed", m)
		}
		if !VerifyRecovery(m, msg, chi22, 22) {
			t.Fatalf("%s: VerifyRecovery rejected the true state", m)
		}
		// A wrong state must not verify.
		bad := chi22
		bad.FlipBit(3)
		if VerifyRecovery(m, msg, bad, 22) {
			t.Fatalf("%s: VerifyRecovery accepted a wrong state", m)
		}
	}
}

func TestDigestBitsOf(t *testing.T) {
	d := []byte{0b00000001, 0b10000000}
	if !DigestBitsOf(d, 0) || DigestBitsOf(d, 1) || !DigestBitsOf(d, 15) {
		t.Fatal("DigestBitsOf bit order wrong")
	}
}

func TestChiRowTablesAreInverse(t *testing.T) {
	seen := map[uint8]bool{}
	for in := 0; in < 32; in++ {
		out := chiRowTable[in]
		if invChiRowTable[out] != uint8(in) {
			t.Fatalf("inv(χ(%d)) = %d", in, invChiRowTable[out])
		}
		if seen[out] {
			t.Fatalf("χ row map not a bijection at %d", in)
		}
		seen[out] = true
	}
}

func TestThetaParityProperty(t *testing.T) {
	// After θ, every column parity equals the old parity of columns
	// x-1 and x+1 combined... simpler invariant: θ is linear.
	rng := rand.New(rand.NewSource(10))
	a, b := randState(rng), randState(rng)
	sum := a
	sum.Xor(&b)
	sum.Theta()
	a.Theta()
	b.Theta()
	a.Xor(&b)
	if !sum.Equal(&a) {
		t.Fatal("θ is not linear")
	}
}

func BenchmarkPermute(b *testing.B) {
	var s State
	b.SetBytes(StateBytes)
	for i := 0; i < b.N; i++ {
		s.Permute()
	}
}

func BenchmarkSHA3_256_1KiB(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		Sum(SHA3_256, msg)
	}
}
