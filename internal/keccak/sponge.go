package keccak

import "fmt"

// Sponge is the Keccak sponge construction over Keccak-f[1600] with a
// byte-granular rate. It implements multi-rate padding (pad10*1) with a
// caller-supplied domain-separation suffix, as specified by FIPS 202.
type Sponge struct {
	state     State
	rateBytes int
	dsByte    byte // domain suffix bits, LSB-first, with the first pad bit appended
	buf       []byte
	squeezing bool
	sqOffset  int
}

// NewSponge returns a sponge with the given rate (in bytes) and domain
// separation byte. dsByte packs the suffix bits LSB-first followed by
// the leading 1 of pad10*1: SHA-3 uses 0x06, SHAKE uses 0x1F, raw
// Keccak uses 0x01.
func NewSponge(rateBytes int, dsByte byte) *Sponge {
	if rateBytes <= 0 || rateBytes >= StateBytes {
		panic(fmt.Sprintf("keccak: invalid rate %d bytes", rateBytes))
	}
	return &Sponge{rateBytes: rateBytes, dsByte: dsByte}
}

// RateBytes returns the sponge rate in bytes.
func (sp *Sponge) RateBytes() int { return sp.rateBytes }

// Absorb feeds message bytes into the sponge. It panics if called
// after squeezing started.
func (sp *Sponge) Absorb(p []byte) {
	if sp.squeezing {
		panic("keccak: Absorb after Squeeze")
	}
	sp.buf = append(sp.buf, p...)
	for len(sp.buf) >= sp.rateBytes {
		sp.state.XorBytes(sp.buf[:sp.rateBytes])
		sp.state.Permute()
		sp.buf = sp.buf[sp.rateBytes:]
	}
}

// pad finalizes absorption: domain suffix, pad10*1, final permutation
// is NOT yet applied — the padded block is XORed and permuted here so
// the first squeeze reads valid output.
func (sp *Sponge) pad() {
	block := make([]byte, sp.rateBytes)
	copy(block, sp.buf)
	block[len(sp.buf)] ^= sp.dsByte
	block[sp.rateBytes-1] ^= 0x80
	sp.state.XorBytes(block)
	sp.state.Permute()
	sp.buf = nil
	sp.squeezing = true
	sp.sqOffset = 0
}

// Squeeze produces n output bytes, permuting as needed.
func (sp *Sponge) Squeeze(n int) []byte {
	if !sp.squeezing {
		sp.pad()
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		if sp.sqOffset == sp.rateBytes {
			sp.state.Permute()
			sp.sqOffset = 0
		}
		avail := sp.rateBytes - sp.sqOffset
		take := n - len(out)
		if take > avail {
			take = avail
		}
		out = append(out, sp.state.Bytes()[sp.sqOffset:sp.sqOffset+take]...)
		sp.sqOffset += take
	}
	return out
}

// Clone returns an independent copy of the sponge, including buffered
// input and squeeze position.
func (sp *Sponge) Clone() *Sponge {
	c := *sp
	c.buf = append([]byte(nil), sp.buf...)
	return &c
}

// PadBlock returns the final padded rate-block for a message tail (the
// bytes that did not fill a whole block), without touching the sponge.
// The attack uses it to reconstruct the known padding bits of the last
// permutation input.
func PadBlock(tail []byte, rateBytes int, dsByte byte) []byte {
	if len(tail) >= rateBytes {
		panic("keccak: PadBlock tail must be shorter than the rate")
	}
	block := make([]byte, rateBytes)
	copy(block, tail)
	block[len(tail)] ^= dsByte
	block[rateBytes-1] ^= 0x80
	return block
}
