package service

import (
	"errors"
	"sync"
)

// Errors the queue reports to the HTTP layer. Full and shed map to 429
// (backpressure: retry later), closed to 503 (the daemon is draining).
var (
	ErrQueueFull   = errors.New("service: queue full")
	ErrQueueShed   = errors.New("service: queue above shed watermark, low-priority work shed")
	ErrQueueClosed = errors.New("service: queue closed")
)

// queue is the bounded, batch-grouping job queue: jobs wait under
// their batchKey, and popBatch hands a worker up to maxBatch jobs of
// one key at a time — the unit that shares a single encoded template.
// Keys are served oldest-first and re-queued at the back after a pop,
// so one hot shape cannot starve the others.
type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	max   int
	shed  int // high watermark: above it, only Priority > 0 submits are admitted
	byKey map[string][]*Job
	order []string // keys with pending jobs, arrival order
	n     int
	done  bool
}

func newQueue(max, shed int) *queue {
	if shed < 1 || shed > max {
		shed = max
	}
	q := &queue{max: max, shed: shed, byKey: make(map[string][]*Job)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one newly submitted job, failing fast when the queue
// is at depth (backpressure), above its shed watermark for the job's
// priority (overload shedding: lowest-priority work is refused first,
// before memory grows unbounded), or closed (drain).
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return ErrQueueClosed
	}
	if q.n >= q.max {
		return ErrQueueFull
	}
	if q.n >= q.shed && j.Spec.Priority <= 0 {
		return ErrQueueShed
	}
	q.add(j)
	return nil
}

// requeue enqueues already-accepted work (restart resume, lease steal,
// retry release). Unlike push it ignores the depth bound and the shed
// watermark — accepted jobs were admitted once and must never be lost
// to backpressure — but still refuses when closed: a draining daemon
// leaves the job persisted as queued for the next start.
func (q *queue) requeue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return ErrQueueClosed
	}
	q.add(j)
	return nil
}

func (q *queue) add(j *Job) {
	key := j.Spec.batchKey()
	if len(q.byKey[key]) == 0 {
		q.order = append(q.order, key)
	}
	q.byKey[key] = append(q.byKey[key], j)
	q.n++
	q.cond.Signal()
}

// popBatch blocks until jobs are available and returns up to maxBatch
// jobs sharing one batchKey, or ok=false once the queue is closed.
// Close wins over remaining content: a draining daemon must not start
// new work, so whatever is still queued stays queued (and persisted)
// for the next start.
func (q *queue) popBatch(maxBatch int) ([]*Job, bool) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.done {
		q.cond.Wait()
	}
	if q.done {
		return nil, false
	}
	key := q.order[0]
	pending := q.byKey[key]
	take := len(pending)
	if take > maxBatch {
		take = maxBatch
	}
	batch := pending[:take]
	rest := pending[take:]
	q.order = q.order[1:]
	if len(rest) > 0 {
		q.byKey[key] = rest
		q.order = append(q.order, key) // back of the line: no starvation
	} else {
		delete(q.byKey, key)
	}
	q.n -= take
	return batch, true
}

// close wakes every waiter and makes all further operations fail.
func (q *queue) close() {
	q.mu.Lock()
	q.done = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len reports the number of queued jobs.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
