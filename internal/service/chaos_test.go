package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// chaosOpts is the aggressive-timing daemon config the chaos tests
// share: leases expire fast, retries release fast, and the janitor
// runs hot, so every recovery path fires within a sub-second window.
func chaosOpts(dir string, workers int, c *Chaos) Options {
	return Options{
		StateDir:       dir,
		Workers:        workers,
		QueueDepth:     64,
		LeaseTTL:       250 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		ReapEvery:      100 * time.Millisecond,
		RetryBase:      20 * time.Millisecond,
		RetryMax:       100 * time.Millisecond,
		Chaos:          c,
	}
}

// readStoreResults loads every done job from the state directory and
// returns its normalized record bytes — the monotonicity ledger: once
// a job is done on disk, every later epoch must show the identical
// bytes, or a job was double-completed or its result rewritten.
func readStoreResults(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for _, j := range jobs {
		if j.State == StateDone {
			b, _ := json.Marshal(normalize(j))
			out[j.ID] = b
		}
	}
	return out
}

// TestChaosConvergence is the chaos acceptance test: a job load is
// driven through a sequence of daemon lives, each with deterministic
// fault injection (panics, hung workers, dropped heartbeats) and a
// hard mid-flight kill, until every job completes. The invariants:
//
//  1. no job is lost — every submitted job eventually reaches done;
//  2. no job is double-completed — once a job's result is on disk it
//     never changes in a later epoch (the gen/lease fencing at work);
//  3. the final results are byte-identical (modulo timing/scheduling
//     fields) to an undisturbed reference run of the same specs;
//  4. no job is quarantined — all injected faults are transient
//     (attempt 1 only), so retry/backoff must absorb them all.
//
// Runs under -race in -short mode with a reduced job count.
func TestChaosConvergence(t *testing.T) {
	nJobs, maxEpochs := 8, 24
	if testing.Short() {
		nJobs = 4
	}
	var specs []JobSpec
	for i := 0; i < nJobs; i++ {
		specs = append(specs, inconsistentSpec(keccak.SHA3_224, "1-bit", true, fmt.Sprintf("chaos%d", i)))
	}

	// Reference: one quiet life, no chaos, run to completion.
	refDir := t.TempDir()
	ref, err := New(chaosOpts(refDir, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, s := range specs {
		j, err := ref.Submit(s, "chaos-test")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	waitTerminal(t, ref, ids, 2*time.Minute)
	ref.Drain()
	want := readStoreResults(t, refDir)
	if len(want) != nJobs {
		t.Fatalf("reference run finished %d/%d jobs", len(want), nJobs)
	}

	// Chaos: epochs of (start, disturb, kill) on one state directory
	// until the store has every job done. Seeds vary per epoch so the
	// injection pattern shifts, but within an epoch it is deterministic.
	dir := t.TempDir()
	sinkDir := t.TempDir() // one JSONL sink per daemon life, as N daemons would have
	seen := make(map[string][]byte)
	submitted := false
	converged := false
	prevDone := 0
	for epoch := 0; epoch < maxEpochs && !converged; epoch++ {
		c := &Chaos{
			Seed:         int64(epoch + 1),
			PanicFrac:    0.3,
			SlowFrac:     0.3,
			SlowBy:       200 * time.Millisecond,
			DropBeatFrac: 0.3,
			MaxAttempt:   1, // transient: retries always run clean
		}
		sink, err := os.Create(filepath.Join(sinkDir, fmt.Sprintf("epoch%02d.jsonl", epoch)))
		if err != nil {
			t.Fatal(err)
		}
		o := chaosOpts(dir, 2, c)
		o.Recorder = obs.NewTrace(sink, 0)
		d, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		if !submitted {
			for i, s := range specs {
				j, err := d.Submit(s, "chaos-test")
				if err != nil {
					t.Fatal(err)
				}
				if j.ID != ids[i] {
					t.Fatalf("chaos run assigned id %s, reference %s", j.ID, ids[i])
				}
			}
			submitted = true
		}

		// Let the epoch run until it makes progress — at least one more
		// job done than the previous epoch left on disk (the per-life
		// template re-encode can dominate the early window, especially
		// under -race) — then kill it mid-flight. A clean drain happens
		// only when everything already finished.
		target := prevDone + 1
		if target > nJobs {
			target = nJobs
		}
		hardCap := time.Now().Add(30 * time.Second)
		doneNow := 0
		for time.Now().Before(hardCap) {
			doneNow = 0
			for _, id := range ids {
				if j := d.Job(id); j != nil && j.State == StateDone {
					doneNow++
				}
			}
			if doneNow >= target {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		allDone := doneNow == nJobs
		if allDone {
			d.Drain()
		} else {
			d.Kill()
		}
		sink.Close() // workers are stopped; the epoch's sink is complete

		// Monotonicity: results already on disk never change.
		now := readStoreResults(t, dir)
		for id, b := range now {
			if prev, ok := seen[id]; ok && !bytes.Equal(prev, b) {
				t.Fatalf("epoch %d: job %s result changed after completion:\n  was %s\n  now %s", epoch, id, prev, b)
			}
			seen[id] = b
		}
		converged = len(now) == nJobs
		prevDone = len(now)
		t.Logf("epoch %d (killed=%v): %d/%d done", epoch, !allDone, len(now), nJobs)
	}
	if !converged {
		t.Fatalf("not converged after %d epochs: %d/%d done", maxEpochs, len(seen), nJobs)
	}

	// Final state matches the undisturbed reference byte for byte.
	got := readStoreResults(t, dir)
	for _, id := range ids {
		if !bytes.Equal(got[id], want[id]) {
			t.Errorf("job %s diverges from reference:\n  got  %s\n  want %s", id, got[id], want[id])
		}
	}
	// And nothing was quarantined: the faults were all transient.
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range onDisk {
		if j.State == StateQuarantined {
			t.Errorf("job %s quarantined under transient chaos: %s", j.ID, j.Error)
		}
	}

	// Tracing acceptance: greping the concatenated JSONL sinks of every
	// daemon life must reconstruct, per job, a gap-free lifecycle under
	// one trace ID — kills, retries and steals included.
	assertTraceContinuity(t, sinkDir, ids)
}

// traceEvent is the JSONL shape assertTraceContinuity parses.
type traceEvent struct {
	Ev     string         `json:"ev"`
	Fields map[string]any `json:"f"`
}

func (e traceEvent) str(k string) string {
	s, _ := e.Fields[k].(string)
	return s
}

func (e traceEvent) num(k string) int {
	f, ok := e.Fields[k].(float64)
	if !ok {
		return -1
	}
	return int(f)
}

// assertTraceContinuity replays every epoch sink in order and checks,
// for each job: a single non-empty trace_id across all its events,
// exactly one submission, every start carrying owner and attempt,
// attempt numbers forming a contiguous 1..max set (kills may replay a
// number — the crash never persisted it — but can't skip one), exactly
// one terminal finish, and nothing starting after it.
func assertTraceContinuity(t *testing.T, sinkDir string, ids []string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(sinkDir, "epoch*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files) // epoch order == time order: lives are sequential
	perJob := make(map[string][]traceEvent)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			var e traceEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("%s: malformed sink line: %v: %s", path, err, sc.Text())
			}
			if id := e.str("job"); id != "" {
				perJob[id] = append(perJob[id], e)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	for _, id := range ids {
		evs := perJob[id]
		if len(evs) == 0 {
			t.Errorf("job %s: no events in any sink", id)
			continue
		}
		traces := make(map[string]bool)
		var submitted, finished int
		attempts := make(map[int]bool)
		maxAttempt := 0
		for _, e := range evs {
			if tid := e.str("trace_id"); tid != "" {
				traces[tid] = true
			}
			switch e.Ev {
			case "job.submitted":
				submitted++
			case "job.start":
				if finished > 0 {
					t.Errorf("job %s: job.start after job.finish", id)
				}
				if e.str("owner") == "" {
					t.Errorf("job %s: job.start without owner: %+v", id, e)
				}
				a := e.num("attempt")
				if a < 1 {
					t.Errorf("job %s: job.start with attempt %d", id, a)
				}
				attempts[a] = true
				if a > maxAttempt {
					maxAttempt = a
				}
			case "job.finish":
				finished++
				if e.str("trace_id") == "" {
					t.Errorf("job %s: job.finish without trace_id", id)
				}
			}
		}
		if len(traces) != 1 {
			t.Errorf("job %s: %d distinct trace IDs %v, want exactly 1", id, len(traces), traces)
		}
		if submitted != 1 {
			t.Errorf("job %s: %d job.submitted events, want 1", id, submitted)
		}
		if finished != 1 {
			t.Errorf("job %s: %d job.finish events, want 1", id, finished)
		}
		if maxAttempt == 0 {
			t.Errorf("job %s: no attempts recorded", id)
		}
		for a := 1; a <= maxAttempt; a++ {
			if !attempts[a] {
				t.Errorf("job %s: attempt %d missing from trace (saw %v) — gap in lifecycle", id, a, attempts)
			}
		}
	}
}

// waitTerminal polls the daemon API (not HTTP) until the listed jobs
// all reach a terminal state.
func waitTerminal(t *testing.T, d *Daemon, ids []string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := 0
		for _, id := range ids {
			if j := d.Job(id); j != nil && terminal(j.State) {
				done++
			}
		}
		if done == len(ids) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("jobs not terminal within %v", timeout)
}

// TestChaosPoisonQuarantine: a job whose every attempt panics must hit
// the PoisonPanics threshold and land in quarantine — with the panic
// message preserved, the attempt history intact, and the job visible
// on GET /v1/quarantine — instead of crash-looping a worker forever.
func TestChaosPoisonQuarantine(t *testing.T) {
	c := &Chaos{Seed: 7, PanicFrac: 1.0, MaxAttempt: 100}
	d, err := New(chaosOpts(t.TempDir(), 1, c))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	j, code := httpSubmit(t, base, inconsistentSpec(keccak.SHA3_224, "1-bit", true, "poison"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	jobs := waitDone(t, base, []string{j.ID}, time.Minute)
	q := jobs[j.ID]
	if q.State != StateQuarantined {
		t.Fatalf("poison job state = %s, want quarantined", q.State)
	}
	if q.Panics != PoisonPanics {
		t.Errorf("poison job panics = %d, want %d", q.Panics, PoisonPanics)
	}
	if !strings.Contains(q.Error, "panicked") {
		t.Errorf("poison job error = %q, want the panic message", q.Error)
	}

	// The quarantine endpoint lists it.
	resp, err := http.Get(base + "/v1/quarantine")
	if err != nil {
		t.Fatal(err)
	}
	var listed []*Job
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].ID != j.ID {
		t.Errorf("/v1/quarantine = %+v, want exactly the poison job", listed)
	}

	// The event tail tells the story: panics, retries, quarantine.
	tail, err := d.Events(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []string{"job.panic", "job.retry", "job.quarantined"} {
		if !bytes.Contains(tail, []byte(ev)) {
			t.Errorf("event tail missing %s: %s", ev, tail)
		}
	}

	// The quarantined job exposes a non-empty flight record: the ring of
	// its final attempt, every line valid JSONL, carrying the job's
	// trace ID and the panic that killed it.
	resp, err = http.Get(base + "/v1/jobs/" + j.ID + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight endpoint: %d, want 200", resp.StatusCode)
	}
	var flight bytes.Buffer
	if _, err := flight.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if flight.Len() == 0 {
		t.Fatal("flight record empty")
	}
	sawPanic, sawQuarantine := false, false
	for _, line := range bytes.Split(bytes.TrimSpace(flight.Bytes()), []byte("\n")) {
		var e traceEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("flight line not JSON: %v: %s", err, line)
		}
		if e.str("trace_id") != q.TraceID {
			t.Errorf("flight event %s trace_id = %q, want %q", e.Ev, e.str("trace_id"), q.TraceID)
		}
		switch e.Ev {
		case "job.panic":
			sawPanic = true
		case "job.quarantined":
			sawQuarantine = true
		}
	}
	if !sawPanic || !sawQuarantine {
		t.Errorf("flight record missing the failure story (panic=%v quarantine=%v):\n%s",
			sawPanic, sawQuarantine, flight.String())
	}

	// An unknown job 404s; a healthy job has no flight record to serve.
	if resp, err = http.Get(base + "/v1/jobs/nope/flight"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("flight of unknown job: %d, want 404", resp.StatusCode)
	}
	srv.Close()
	d.Drain()
}

// TestChaosDeadlineRetryQuarantine: a per-attempt deadline far below
// the solve time fails every attempt; the job retries with backoff up
// to its MaxAttempts, then quarantines carrying the partial-progress
// checkpoint of its last attempt.
func TestChaosDeadlineRetryQuarantine(t *testing.T) {
	d, err := New(chaosOpts(t.TempDir(), 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	// The relaxed (unknown-position) SHA3-512 refutation takes far
	// longer than 30ms, so every attempt blows its deadline.
	spec := inconsistentSpec(keccak.SHA3_512, "1-bit", false, "deadline")
	spec.DeadlineMs = 30
	spec.MaxAttempts = 2
	j, err := d.Submit(spec, "chaos-test")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, []string{j.ID}, time.Minute)
	got := d.Job(j.ID)
	if got.State != StateQuarantined {
		t.Fatalf("deadline job = %+v, want quarantined", got)
	}
	if got.Attempts != 2 {
		t.Errorf("deadline job attempts = %d, want 2 (MaxAttempts honoured)", got.Attempts)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("deadline job error = %q, want deadline message", got.Error)
	}
	if got.Checkpoint == nil || got.Checkpoint.Status != "budget-exceeded" {
		t.Errorf("deadline job checkpoint = %+v, want the interrupted attempt's partial result", got.Checkpoint)
	}
	if got.Result != nil {
		t.Errorf("deadline job result = %+v, want nil (never completed)", got.Result)
	}
	d.Drain()
}

// TestChaosDeadlineGenerous: a deadline the solve comfortably beats
// must not disturb the result — first attempt, done, no checkpoint.
func TestChaosDeadlineGenerous(t *testing.T) {
	d, err := New(chaosOpts(t.TempDir(), 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	spec := inconsistentSpec(keccak.SHA3_224, "1-bit", true, "roomy")
	spec.DeadlineMs = 60_000
	j, err := d.Submit(spec, "chaos-test")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, []string{j.ID}, time.Minute)
	got := d.Job(j.ID)
	if got.State != StateDone || got.Attempts != 1 || got.Checkpoint != nil {
		t.Fatalf("roomy-deadline job = state %s attempts %d checkpoint %+v, want done/1/nil",
			got.State, got.Attempts, got.Checkpoint)
	}
	d.Drain()
}
