package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// traceOpts is a single-worker daemon with a ring-only recorder,
// enough to observe events and metrics without a sink file.
func traceOpts(dir string) Options {
	return Options{
		StateDir: dir,
		Workers:  1,
		Recorder: obs.NewTrace(nil, 4096),
	}
}

// TestTraceIDHeaderPropagation: a client-supplied X-Afa-Trace-Id must
// ride the job record, the response header, the on-disk event tail and
// the daemon-wide sink — the end-to-end correlation contract.
func TestTraceIDHeaderPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	d, err := New(traceOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	const want = "trace-test-0123_ABC"
	body, _ := json.Marshal(inconsistentSpec(keccak.SHA3_224, "1-bit", true, "traced"))
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Afa-Trace-Id", want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Afa-Trace-Id"); got != want {
		t.Errorf("response trace header = %q, want %q", got, want)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.TraceID != want {
		t.Fatalf("job trace_id = %q, want %q", j.TraceID, want)
	}

	waitDone(t, base, []string{j.ID}, time.Minute)

	// The persisted record still carries it.
	if got := httpJob(t, base, j.ID); got.TraceID != want {
		t.Errorf("finished job trace_id = %q, want %q", got.TraceID, want)
	}
	// Every event of the on-disk tail is stamped.
	tail, err := d.Events(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) == 0 {
		t.Fatal("empty event tail")
	}
	for _, line := range bytes.Split(bytes.TrimSpace(tail), []byte("\n")) {
		var e traceEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("tail line not JSON: %v: %s", err, line)
		}
		if e.str("trace_id") != want {
			t.Errorf("tail event %s trace_id = %q, want %q", e.Ev, e.str("trace_id"), want)
		}
	}
	// The daemon-wide sink saw the full lifecycle under the same ID.
	var sawSubmit, sawStart, sawFinish bool
	for _, e := range d.opts.Recorder.Events() {
		if f, _ := e.Fields["trace_id"].(string); f != want {
			continue
		}
		switch e.Ev {
		case "job.submitted":
			sawSubmit = true
		case "job.start":
			sawStart = true
			if o, _ := e.Fields["owner"].(string); o == "" {
				t.Error("job.start in daemon sink missing owner")
			}
		case "job.finish":
			sawFinish = true
		}
	}
	if !sawSubmit || !sawStart || !sawFinish {
		t.Errorf("daemon sink lifecycle incomplete: submit=%v start=%v finish=%v",
			sawSubmit, sawStart, sawFinish)
	}
	srv.Close()
	d.Drain()
}

func TestTraceIDMintedWhenAbsentOrInvalid(t *testing.T) {
	d, err := New(Options{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := inconsistentSpec(keccak.SHA3_224, "1-bit", true, "minted")
	j1, err := d.Submit(spec, "c")
	if err != nil {
		t.Fatal(err)
	}
	if j1.TraceID == "" || !validTraceID(j1.TraceID) {
		t.Errorf("minted trace_id = %q, want non-empty valid", j1.TraceID)
	}
	j2, err := d.SubmitTraced(spec, "c", "bad id\nwith junk")
	if err != nil {
		t.Fatal(err)
	}
	if j2.TraceID == "bad id\nwith junk" || !validTraceID(j2.TraceID) {
		t.Errorf("invalid client trace accepted: %q", j2.TraceID)
	}
	if j1.TraceID == j2.TraceID {
		t.Error("two submissions minted the same trace_id")
	}
	d.Drain()
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc-123_XYZ":           true,
		"a":                     true,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
		"":                      false,
		"has space":             false,
		"has\nnl":               false,
		"päth":                  false,
	} {
		if got := validTraceID(id); got != want {
			t.Errorf("validTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestMetricsEndpoint: after one job solves, GET /metrics must serve
// well-formed Prometheus text including the queue-wait and
// attempt-duration histograms of the tentpole contract.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	d, err := New(traceOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	j, code := httpSubmit(t, base, inconsistentSpec(keccak.SHA3_224, "1-bit", true, "metrics"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitDone(t, base, []string{j.ID}, time.Minute)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Errorf("content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE service_queue_wait_seconds histogram",
		`service_queue_wait_seconds_bucket{le="+Inf"} 1`,
		"# TYPE service_attempt_seconds histogram",
		"service_attempt_seconds_count 1",
		"# TYPE service_submitted_total counter",
		"service_submitted_total 1",
		"# TYPE attack_solve_seconds histogram", // span-fed solver phase histogram
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	srv.Close()
	d.Drain()
}

// TestRatelimitDenied: a refused submit must surface as the
// ratelimit.denied event (with the derived Retry-After) and the
// service.ratelimit_denied counter.
func TestRatelimitDenied(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Options{
		StateDir: dir,
		Workers:  1,
		Rate:     0.01, // one token per 100s: the second call must be denied
		Burst:    1,
		Recorder: obs.NewTrace(nil, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.Allow("client-a"); !ok {
		t.Fatal("first call should pass on the burst token")
	}
	ok, wait := d.Allow("client-a")
	if ok {
		t.Fatal("second call should be denied")
	}
	if wait <= 0 {
		t.Errorf("denied wait = %v, want > 0", wait)
	}
	if d.limiter.deniedCount() != 1 {
		t.Errorf("deniedCount = %d, want 1", d.limiter.deniedCount())
	}
	if got := d.Metrics().Counter("service.ratelimit_denied").Value(); got != 1 {
		t.Errorf("service.ratelimit_denied = %d, want 1", got)
	}
	found := false
	for _, e := range d.opts.Recorder.Events() {
		if e.Ev == "ratelimit.denied" {
			found = true
			if c, _ := e.Fields["client"].(string); c != "client-a" {
				t.Errorf("denied event client = %v", e.Fields)
			}
			if ms, _ := e.Fields["retry_after_ms"].(int64); ms <= 0 {
				// JSON round-trips would give float64; in-ring it is int64.
				if msf, _ := e.Fields["retry_after_ms"].(float64); msf <= 0 {
					t.Errorf("denied event retry_after_ms = %v", e.Fields["retry_after_ms"])
				}
			}
		}
	}
	if !found {
		t.Error("no ratelimit.denied event in the daemon sink")
	}
	d.Drain()
}
