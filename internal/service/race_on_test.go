//go:build race

package service

// raceEnabled lets solver-heavy tests skip themselves under -race: the
// instrumented solver is an order of magnitude slower, and the race
// coverage they would add is already provided by the cheaper e2e test.
const raceEnabled = true
