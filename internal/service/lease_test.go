package service

import (
	"os"
	"testing"
	"time"

	"sha3afa/internal/keccak"
)

// TestLeaseGoldenWireFormat pins the on-disk lease format byte for
// byte. The lease file is the cross-node work-stealing contract for
// daemons sharing a state directory — possibly different builds of
// afad — so a change here is a protocol break, not a refactor. If this
// test fails, you changed the wire format: bump it deliberately and
// say so in DESIGN.md, do not just update the literal.
func TestLeaseGoldenWireFormat(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := &Lease{
		JobID:     "j-000042",
		Owner:     "afad-31337-abc123-7",
		Attempt:   3,
		Acquired:  time.Date(2026, 2, 3, 4, 5, 6, 123456789, time.UTC),
		Heartbeat: time.Date(2026, 2, 3, 4, 5, 7, 500000000, time.UTC),
	}
	if err := st.SaveLease(in); err != nil {
		t.Fatal(err)
	}

	const golden = `{
  "job_id": "j-000042",
  "owner": "afad-31337-abc123-7",
  "attempt": 3,
  "acquired": "2026-02-03T04:05:06.123456789Z",
  "heartbeat": "2026-02-03T04:05:07.5Z"
}`
	raw, err := os.ReadFile(st.leasePath("j-000042"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != golden {
		t.Errorf("lease wire format changed:\n  got  %s\n  want %s", raw, golden)
	}

	// And the round trip restores every field exactly.
	out, err := st.ReadLease("j-000042")
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || *out != *in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

// TestLeaseStealArbiter: the unlink is the steal primitive — exactly
// one of two contenders removing the same lease succeeds, the loser
// sees ENOENT and must treat the steal as lost.
func TestLeaseStealArbiter(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := &Lease{JobID: "j-000001", Owner: "afad-dead", Attempt: 1,
		Acquired: time.Now().UTC(), Heartbeat: time.Now().UTC().Add(-time.Hour)}
	if err := st.SaveLease(l); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveLease("j-000001"); err != nil {
		t.Fatalf("first steal = %v, want success", err)
	}
	if err := st.RemoveLease("j-000001"); !os.IsNotExist(err) {
		t.Fatalf("second steal = %v, want ENOENT (lost the race)", err)
	}
	// ReadLease reports a missing lease as nil, nil — not an error.
	if got, err := st.ReadLease("j-000001"); err != nil || got != nil {
		t.Fatalf("ReadLease after steal = %+v, %v, want nil, nil", got, err)
	}
}

// TestReaperStealsStaleForeignLease: a job parked on the shared state
// directory under a dead daemon's stale lease is reaped, adopted and
// completed by a live daemon that never saw the original submit.
func TestReaperStealsStaleForeignLease(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the dead peer: a running job whose lease stopped beating.
	spec := inconsistentSpecKP("steal")
	orphan := &Job{ID: "j-900001", Spec: spec, State: StateRunning,
		Submitted: time.Now().UTC(), Started: time.Now().UTC(), Attempts: 1}
	if err := st.SaveJob(orphan); err != nil {
		t.Fatal(err)
	}
	stale := &Lease{JobID: orphan.ID, Owner: "afad-deadpeer-1", Attempt: 1,
		Acquired:  time.Now().UTC().Add(-time.Hour),
		Heartbeat: time.Now().UTC().Add(-time.Hour)}
	if err := st.SaveLease(stale); err != nil {
		t.Fatal(err)
	}

	d, err := New(Options{StateDir: dir, Workers: 1,
		LeaseTTL: 200 * time.Millisecond, HeartbeatEvery: 40 * time.Millisecond,
		ReapEvery: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()

	// New() itself resumes running jobs with stale leases; either that
	// path or the periodic reaper must finish the orphan.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if j := d.Job(orphan.ID); j != nil && terminal(j.State) {
			if j.State != StateDone || j.Result == nil || j.Result.Status != "inconsistent" {
				t.Fatalf("adopted job = %+v, want done/inconsistent", j)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned job never adopted: %+v", d.Job(orphan.ID))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The stale lease is gone and no fresh one remains.
	if l, err := st.ReadLease(orphan.ID); err != nil || l != nil {
		t.Fatalf("lease after adoption = %+v, %v, want nil, nil", l, err)
	}
}

// TestReaperAdoptMidRun: the stale foreign lease appears while the
// daemon is already running (not at startup), so only the janitor's
// reap pass can find it.
func TestReaperAdoptMidRun(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Options{StateDir: dir, Workers: 1,
		LeaseTTL: 200 * time.Millisecond, HeartbeatEvery: 40 * time.Millisecond,
		ReapEvery: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Drain()

	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	orphan := &Job{ID: "j-900002", Spec: inconsistentSpecKP("midrun"), State: StateLeased,
		Submitted: time.Now().UTC(), Attempts: 1}
	if err := st.SaveJob(orphan); err != nil {
		t.Fatal(err)
	}
	stale := &Lease{JobID: orphan.ID, Owner: "afad-deadpeer-2", Attempt: 1,
		Acquired:  time.Now().UTC().Add(-time.Minute),
		Heartbeat: time.Now().UTC().Add(-time.Minute)}
	if err := st.SaveLease(stale); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if j := d.Job(orphan.ID); j != nil && j.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mid-run orphan never adopted: %+v", d.Job(orphan.ID))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// inconsistentSpecKP is the cheap refutable job shape the lease tests
// use (known-position refutations solve in milliseconds).
func inconsistentSpecKP(salt string) JobSpec {
	return inconsistentSpec(keccak.SHA3_224, "1-bit", true, salt)
}
