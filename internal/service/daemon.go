package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/core"
	"sha3afa/internal/obs"
)

// ErrDraining is returned by Submit once a drain has begun (HTTP 503).
var ErrDraining = errors.New("service: daemon is draining")

// Options configures a Daemon. Zero values get sensible defaults.
type Options struct {
	StateDir   string  // job store directory (required)
	Workers    int     // concurrent jobs (default 1)
	QueueDepth int     // queued-job bound before 429 (default 64)
	BatchMax   int     // max jobs popped per shared-template batch (default 8)
	Rate       float64 // submits/second per client, 0 = unlimited
	Burst      float64 // token-bucket burst (default 8 when Rate > 0)
	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// interrupting their solves and re-queueing them (default 30s).
	DrainTimeout time.Duration
	// Recorder receives daemon-level events and metrics (job lifecycle,
	// queue depth); per-job solver events go to each job's own tail.
	Recorder *obs.Trace
	// DisableBatching encodes every job from scratch instead of
	// instantiating shared templates — the benchmark baseline that
	// quantifies what batching buys.
	DisableBatching bool
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.BatchMax < 1 {
		o.BatchMax = 8
	}
	if o.Rate > 0 && o.Burst < 1 {
		o.Burst = 8
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	return o
}

// Daemon owns the queue, the template cache, the worker pool and the
// job store. One dispatcher goroutine pops key-grouped batches and
// submits each job to the pool; workers run jobs to completion,
// persisting every transition.
type Daemon struct {
	opts    Options
	store   *Store
	queue   *queue
	limiter *rateLimiter

	ctx    context.Context // root: done only on Kill / post-drain-timeout interrupt
	cancel context.CancelFunc
	pool   *campaign.Pool

	mu        sync.Mutex
	jobs      map[string]*Job
	templates map[string]*core.Template
	nextID    int64

	draining atomic.Bool
	killed   atomic.Bool // test hook: simulate SIGKILL (skip all persists)

	dispatcherDone chan struct{}
	drainOnce      sync.Once
}

// New opens the state directory, re-enqueues unfinished jobs from a
// previous life (queued and running alike — a running record means the
// process died mid-job), and starts the dispatcher and worker pool.
func New(opts Options) (*Daemon, error) {
	opts = opts.withDefaults()
	store, err := NewStore(opts.StateDir)
	if err != nil {
		return nil, err
	}
	prev, err := store.LoadJobs()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts:           opts,
		store:          store,
		queue:          newQueue(opts.QueueDepth),
		limiter:        newRateLimiter(opts.Rate, opts.Burst),
		ctx:            ctx,
		cancel:         cancel,
		jobs:           make(map[string]*Job),
		templates:      make(map[string]*core.Template),
		nextID:         nextSeq(prev),
		dispatcherDone: make(chan struct{}),
	}
	for _, j := range prev {
		d.jobs[j.ID] = j
		if j.State == StateQueued || j.State == StateRunning {
			if j.State == StateRunning {
				// Interrupted mid-run by a kill: back to the queue.
				j.State = StateQueued
				if err := store.SaveJob(j); err != nil {
					cancel()
					return nil, err
				}
			}
			if err := d.queue.push(j); err != nil {
				cancel()
				return nil, fmt.Errorf("service: %d unfinished jobs exceed the queue depth %d: %w",
					len(prev), opts.QueueDepth, err)
			}
			obs.Emit(recOf(opts.Recorder), "service", "job.resumed", obs.F("job", j.ID))
		}
	}
	d.pool = campaign.NewPool(ctx, opts.Workers)
	go d.dispatch()
	return d, nil
}

// Submit validates, persists and enqueues one job. The returned Job is
// a snapshot; poll Job(id) for progress.
func (d *Daemon) Submit(spec JobSpec, client string) (*Job, error) {
	if _, err := spec.parse(); err != nil {
		return nil, err
	}
	if d.draining.Load() {
		return nil, ErrDraining
	}
	d.mu.Lock()
	id := fmt.Sprintf("j-%06d", d.nextID)
	d.nextID++
	job := &Job{
		ID: id, Client: client, Spec: spec,
		State: StateQueued, Submitted: time.Now().UTC(),
	}
	d.jobs[id] = job
	snap := job.clone()
	err := d.store.SaveJob(job)
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := d.queue.push(job); err != nil {
		// Rolled back: the record must not resurrect on restart.
		d.mu.Lock()
		delete(d.jobs, id)
		d.mu.Unlock()
		_ = d.store.DeleteJob(id)
		if errors.Is(err, ErrQueueClosed) {
			return nil, ErrDraining
		}
		return nil, err
	}
	obs.Emit(d.rec(), "service", "job.submitted",
		obs.F("job", id), obs.F("key", spec.batchKey()), obs.F("queued", d.queue.len()))
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Counter("service.submitted").Add(1)
		d.opts.Recorder.Metrics().Gauge("service.queue_depth").Set(int64(d.queue.len()))
	}
	return snap, nil
}

// Allow applies the per-client rate limit (one token per submit).
func (d *Daemon) Allow(client string) bool { return d.limiter.allow(client) }

// Draining reports whether a drain has begun.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Job returns a snapshot of one job, or nil when unknown.
func (d *Daemon) Job(id string) *Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j, ok := d.jobs[id]; ok {
		return j.clone()
	}
	return nil
}

// Jobs returns snapshots of every known job in ID (submission) order.
func (d *Daemon) Jobs() []*Job {
	d.mu.Lock()
	out := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, j.clone())
	}
	d.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// rec converts the configured trace to the Recorder interface without
// the typed-nil foot-gun (a nil *Trace must be a nil interface).
func (d *Daemon) rec() obs.Recorder { return recOf(d.opts.Recorder) }

func recOf(t *obs.Trace) obs.Recorder {
	if t == nil {
		return nil
	}
	return t
}

// Events returns the raw JSONL event tail of a job.
func (d *Daemon) Events(id string) ([]byte, error) { return d.store.ReadEvents(id) }

// dispatch pops key-grouped batches and fans each job out to the
// worker pool. All jobs of one batch share one template lookup (and
// therefore one encode pass the first time a shape is seen).
func (d *Daemon) dispatch() {
	defer close(d.dispatcherDone)
	for {
		batch, ok := d.queue.popBatch(d.opts.BatchMax)
		if !ok {
			return
		}
		tpl := d.templateFor(batch[0].Spec)
		obs.Emit(d.rec(), "service", "batch.dispatch",
			obs.F("key", batch[0].Spec.batchKey()), obs.F("jobs", len(batch)),
			obs.F("batched", tpl != nil))
		for _, j := range batch {
			j := j
			if err := d.pool.Submit(func(ctx context.Context) { d.runJob(ctx, j, tpl) }); err != nil {
				// Pool closed or root context canceled: the job was never
				// started and its record still says queued — exactly what
				// the next start expects.
				return
			}
		}
	}
}

// templateFor returns (building or growing on first use) the shared
// template for the spec's shape, or nil when batching is disabled.
// Template construction is the expensive encode pass; instantiation
// per job is a prefix memcpy plus unit clauses.
func (d *Daemon) templateFor(spec JobSpec) *core.Template {
	if d.opts.DisableBatching {
		return nil
	}
	p, err := spec.parse() // validated at submit; cannot fail here
	if err != nil {
		return nil
	}
	key := spec.batchKey()
	d.mu.Lock()
	tpl, ok := d.templates[key]
	d.mu.Unlock()
	if !ok {
		cfg := core.DefaultConfig(p.mode, p.model)
		cfg.KnownPosition = spec.KnownPosition
		stop := obs.Span(d.rec(), "service", "template.encode", obs.F("key", key))
		tpl, err = core.NewTemplate(cfg)
		stop(obs.F("err", err != nil))
		if err != nil {
			return nil
		}
		d.mu.Lock()
		if prior, ok := d.templates[key]; ok {
			tpl = prior // lost a (harmless) race with another dispatcher life
		} else {
			d.templates[key] = tpl
		}
		d.mu.Unlock()
	}
	return tpl
}

// runJob executes one job on a worker: instantiate (or encode), solve
// under the job's budgets, decode, persist. A root-context
// cancellation (kill or drain timeout) re-queues the job instead of
// failing it — the drain contract is finish or checkpoint, never lose.
func (d *Daemon) runJob(ctx context.Context, j *Job, tpl *core.Template) {
	d.setState(j, func() {
		j.State = StateRunning
		j.Started = time.Now().UTC()
		j.Attempts++
	})
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Gauge("service.queue_depth").Set(int64(d.queue.len()))
	}

	// Per-job recorder: the JSONL sink is the job's event tail, which
	// persists across re-runs (O_APPEND) — no ring needed, the events
	// endpoint serves the file.
	var rec obs.Recorder
	ef, err := d.store.OpenEvents(j.ID)
	if err == nil {
		rec = obs.NewTrace(ef, 0)
		defer ef.Close()
	}
	obs.Emit(rec, "service", "job.start", obs.F("job", j.ID), obs.F("attempt", j.Attempts))

	res, jerr := d.solve(ctx, j, tpl, rec)
	if d.ctx.Err() != nil {
		// Killed or drain-interrupted, not a job outcome. With a real
		// SIGKILL (or its test double) nothing more is persisted and the
		// record stays at running; a drain interrupt checkpoints the job
		// back to queued so the next start re-runs it.
		obs.Emit(rec, "service", "job.interrupted", obs.F("job", j.ID))
		if !d.killed.Load() {
			d.setState(j, func() {
				j.State = StateQueued
			})
		}
		return
	}
	d.setState(j, func() {
		j.Finished = time.Now().UTC()
		if jerr != nil {
			j.State = StateFailed
			j.Error = jerr.Error()
		} else {
			j.State = StateDone
			j.Result = res
		}
	})
	obs.Emit(rec, "service", "job.finish",
		obs.F("job", j.ID), obs.F("state", j.State), obs.F("status", resultStatus(res)))
	obs.Emit(d.rec(), "service", "job.finish",
		obs.F("job", j.ID), obs.F("state", j.State), obs.F("status", resultStatus(res)))
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Counter("service.finished").Add(1)
	}
}

func resultStatus(r *JobResult) string {
	if r == nil {
		return ""
	}
	return r.Status
}

// solve runs the attack for one job. tpl == nil means the classic
// per-job encode path.
func (d *Daemon) solve(ctx context.Context, j *Job, tpl *core.Template, rec obs.Recorder) (*JobResult, error) {
	p, err := j.Spec.parse()
	if err != nil {
		return nil, err // unreachable: validated at submit
	}
	cfg := core.DefaultConfig(p.mode, p.model)
	cfg.KnownPosition = j.Spec.KnownPosition
	if j.Spec.MaxCandidates > 0 {
		cfg.MaxCandidates = j.Spec.MaxCandidates
	}
	if j.Spec.MaxConflicts > 0 {
		cfg.SolverOptions.MaxConflicts = j.Spec.MaxConflicts
	}
	if rec != nil {
		cfg.Recorder = rec
	}

	var atk *core.Attack
	batched := false
	if tpl != nil {
		atk, err = tpl.Instantiate(cfg, p.correct, p.faulty, p.windows)
		if err != nil {
			return nil, err
		}
		batched = true
	} else {
		atk = core.NewAttack(cfg)
		if err := atk.AddCorrect(p.correct); err != nil {
			return nil, err
		}
		for i, fd := range p.faulty {
			w := -1
			if j.Spec.KnownPosition {
				w = p.windows[i]
			}
			if err := atk.AddFaulty(fd, w); err != nil {
				return nil, err
			}
		}
	}

	jobCtx := ctx
	if j.Spec.TimeoutSec > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
		defer cancel()
	}
	res, err := atk.SolveContext(jobCtx)
	if err != nil {
		return nil, err
	}

	out := &JobResult{
		Status:      res.Status.String(),
		Candidates:  res.Candidates,
		Vars:        res.Vars,
		Clauses:     res.Clauses,
		SolveMillis: float64(res.SolveTime) / float64(time.Millisecond),
		Batched:     batched,
	}
	for _, st := range atk.SolverStats() {
		out.Conflicts += st.Stats.Conflicts
		out.Propagations += st.Stats.Propagations
	}
	if res.Status == core.Recovered {
		out.ChiInput = hex.EncodeToString(res.ChiInput.Bytes())
		if msg, ok := atk.ExtractMessage(res.ChiInput); ok {
			out.Message = hex.EncodeToString(msg)
		}
	}
	return out, nil
}

// setState applies a mutation to a job and persists it, all under the
// daemon lock so HTTP snapshots never see a half-applied transition.
// Persists are suppressed after Kill: a SIGKILLed process would not
// have reached the disk either, and the restart path must cope.
func (d *Daemon) setState(j *Job, mutate func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mutate()
	if !d.killed.Load() {
		_ = d.store.SaveJob(j)
	}
}

// Drain gracefully shuts the daemon down: new submits fail with
// ErrDraining, queued jobs stay persisted for the next start, and
// in-flight jobs get DrainTimeout to finish before their solves are
// interrupted and the jobs checkpointed back to queued. It returns
// once every worker has stopped.
func (d *Daemon) Drain() {
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		d.queue.close()
		<-d.dispatcherDone
		obs.Emit(d.rec(), "service", "daemon.drain", obs.F("queued", d.queue.len()))
		done := make(chan struct{})
		go func() { d.pool.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(d.opts.DrainTimeout):
			d.cancel() // interrupt in-flight solves; runJob re-queues them
			<-done
		}
		d.cancel()
	})
}

// Kill is the SIGKILL test double: it hard-stops the daemon without
// letting in-flight jobs persist anything further, so the state
// directory looks exactly like a process that died mid-run. Tests
// restart a fresh Daemon on the same directory afterwards.
func (d *Daemon) Kill() {
	d.killed.Store(true)
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		d.queue.close()
		d.cancel()
		<-d.dispatcherDone
		d.pool.Close()
	})
}
