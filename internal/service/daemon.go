package service

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sha3afa/internal/campaign"
	"sha3afa/internal/core"
	"sha3afa/internal/obs"
)

// ErrDraining is returned by Submit once a drain has begun (HTTP 503).
var ErrDraining = errors.New("service: daemon is draining")

// Options configures a Daemon. Zero values get sensible defaults.
type Options struct {
	StateDir   string  // job store directory (required)
	Workers    int     // concurrent jobs (default 1)
	QueueDepth int     // queued-job bound before 429 (default 64)
	BatchMax   int     // max jobs popped per shared-template batch (default 8)
	Rate       float64 // submits/second per client, 0 = unlimited
	Burst      float64 // token-bucket burst (default 8 when Rate > 0)
	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// interrupting their solves and re-queueing them (default 30s).
	DrainTimeout time.Duration

	// LeaseTTL is how long a lease may go without a heartbeat before
	// any daemon on the state directory may steal the job (default 15s).
	// HeartbeatEvery is the refresh cadence (default LeaseTTL/3) and
	// ReapEvery how often stale leases are hunted (default LeaseTTL/2).
	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	ReapEvery      time.Duration

	// MaxAttempts is the default attempt budget for jobs whose spec
	// leaves MaxAttempts at 0 (default 3). Failed attempts re-queue with
	// jittered exponential backoff: RetryBase doubling per attempt,
	// capped at RetryMax (defaults 500ms / 30s).
	MaxAttempts int
	RetryBase   time.Duration
	RetryMax    time.Duration

	// GCMaxAge enables age-based pruning of terminal job records and
	// their event tails: anything finished longer ago is removed every
	// GCEvery (default 1m). 0 disables GC.
	GCMaxAge time.Duration
	GCEvery  time.Duration

	// ShedWatermark is the queue depth above which submits with
	// Priority <= 0 are shed with 429 (default 3/4 of QueueDepth).
	ShedWatermark int

	// Chaos injects deterministic faults into job execution — dev/test
	// only (see chaos.go and the -chaos flag on cmd/afad).
	Chaos *Chaos

	// Recorder receives daemon-level events and metrics (job lifecycle,
	// queue depth, latency histograms). Per-attempt events fan out to it
	// AND to the job's own on-disk tail, each stamped with trace_id /
	// job / attempt / owner tags, so the daemon-wide JSONL sink alone
	// reconstructs any job's lifecycle across retries and steals.
	Recorder *obs.Trace

	// FlightCap bounds the per-attempt flight-recorder ring: the most
	// recent events of an attempt, persisted as <job>.flight.jsonl when
	// the attempt ends in quarantine, panic or a blown deadline
	// (default 256; < 0 disables the flight recorder).
	FlightCap int
	// DisableBatching encodes every job from scratch instead of
	// instantiating shared templates — the benchmark baseline that
	// quantifies what batching buys.
	DisableBatching bool
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.BatchMax < 1 {
		o.BatchMax = 8
	}
	if o.Rate > 0 && o.Burst < 1 {
		o.Burst = 8
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.LeaseTTL / 3
	}
	if o.ReapEvery <= 0 {
		o.ReapEvery = o.LeaseTTL / 2
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 30 * time.Second
	}
	if o.GCEvery <= 0 {
		o.GCEvery = time.Minute
	}
	if o.ShedWatermark < 1 {
		o.ShedWatermark = o.QueueDepth * 3 / 4
	}
	if o.FlightCap == 0 {
		o.FlightCap = 256
	}
	return o
}

// newTraceID mints a 96-bit random trace identifier (24 hex chars).
func newTraceID() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		// No entropy source: fall back to the clock, still unique enough
		// for correlation within one deployment.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// validTraceID accepts client-supplied trace IDs: 1..64 chars of
// [A-Za-z0-9_-], enough for every mainstream tracing scheme while
// keeping the value safe to grep and to embed in JSON and filenames.
func validTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

// Daemon owns the queue, the template cache, the worker pool, the job
// store and the lease janitor. One dispatcher goroutine pops
// key-grouped batches and submits each job to the pool; workers claim
// a lease, run the job under its deadline, and persist every
// transition. The janitor heartbeats held leases, reaps stale ones
// (its own and those of dead peers on the same state directory),
// releases backoff-delayed retries and garbage-collects old terminal
// records.
type Daemon struct {
	opts    Options
	store   *Store
	queue   *queue
	limiter *rateLimiter
	owner   string // lease owner id, unique per daemon life

	ctx    context.Context // root: done only on Kill / post-drain-timeout interrupt
	cancel context.CancelFunc
	pool   *campaign.Pool

	mu        sync.Mutex
	jobs      map[string]*Job
	leases    map[string]*Lease    // leases this daemon currently holds
	retry     map[string]time.Time // job id -> earliest re-dispatch time
	templates map[string]*core.Template
	nextID    int64

	draining      atomic.Bool
	drainDeadline atomic.Int64 // unixnano; 0 until Drain begins
	killed        atomic.Bool  // test hook: simulate SIGKILL (skip all persists)
	avgRunNs      atomic.Int64 // EWMA of attempt wall time, feeds Retry-After

	dispatcherDone chan struct{}
	janitorDone    chan struct{}
	drainOnce      sync.Once
}

// New opens the state directory, re-enqueues unfinished jobs from a
// previous life (honouring live foreign leases and retry backoff), and
// starts the dispatcher, the worker pool and the janitor.
func New(opts Options) (*Daemon, error) {
	opts = opts.withDefaults()
	store, err := NewStore(opts.StateDir)
	if err != nil {
		return nil, err
	}
	prev, err := store.LoadJobs()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts:           opts,
		store:          store,
		queue:          newQueue(opts.QueueDepth, opts.ShedWatermark),
		limiter:        newRateLimiter(opts.Rate, opts.Burst),
		owner:          newOwnerID(),
		ctx:            ctx,
		cancel:         cancel,
		jobs:           make(map[string]*Job),
		leases:         make(map[string]*Lease),
		retry:          make(map[string]time.Time),
		templates:      make(map[string]*core.Template),
		nextID:         nextSeq(prev),
		dispatcherDone: make(chan struct{}),
		janitorDone:    make(chan struct{}),
	}
	d.avgRunNs.Store(int64(time.Second)) // optimistic prior until measured
	for _, j := range prev {
		if j.TraceID == "" {
			// Pre-tracing record: mint now so the lifecycle is correlated
			// from here on (persisted by the next state transition).
			j.TraceID = newTraceID()
		}
		d.jobs[j.ID] = j
		if err := d.resume(j); err != nil {
			cancel()
			return nil, err
		}
	}
	d.pool = campaign.NewPool(ctx, opts.Workers)
	go d.dispatch()
	go d.janitor()
	return d, nil
}

// resume re-schedules one loaded job according to its persisted state.
func (d *Daemon) resume(j *Job) error {
	switch j.State {
	case StateQueued:
		if j.NotBefore.After(time.Now()) {
			// Mid-backoff when the previous life ended: keep waiting.
			d.retry[j.ID] = j.NotBefore
			return nil
		}
		j.enqueued = time.Now()
		if err := d.queue.requeue(j); err != nil {
			return err
		}
		obs.Emit(d.rec(), "service", "job.resumed",
			obs.F("trace_id", j.TraceID), obs.F("job", j.ID))
	case StateLeased, StateRunning:
		lease, err := d.store.ReadLease(j.ID)
		if err != nil {
			return err
		}
		if lease != nil && time.Since(lease.Heartbeat) <= d.opts.LeaseTTL {
			// A live peer on the same state directory owns this job. Leave
			// it; the reaper revisits once the lease goes stale.
			return nil
		}
		if lease != nil {
			if err := d.store.RemoveLease(j.ID); err != nil {
				if os.IsNotExist(err) {
					return nil // lost the steal race to a peer
				}
				return err
			}
			obs.Emit(d.rec(), "service", "lease.stolen",
				obs.F("trace_id", j.TraceID), obs.F("job", j.ID),
				obs.F("owner", lease.Owner), obs.F("attempt", lease.Attempt))
			d.counter("service.lease_stolen", 1)
		}
		// Interrupted mid-run by a dead daemon: back to the queue.
		j.State = StateQueued
		if err := d.store.SaveJob(j); err != nil {
			return err
		}
		j.enqueued = time.Now()
		if err := d.queue.requeue(j); err != nil {
			return err
		}
		obs.Emit(d.rec(), "service", "job.resumed",
			obs.F("trace_id", j.TraceID), obs.F("job", j.ID))
	}
	return nil
}

// Submit validates, persists and enqueues one job with a freshly
// minted trace ID. The returned Job is a snapshot; poll Job(id) for
// progress.
func (d *Daemon) Submit(spec JobSpec, client string) (*Job, error) {
	return d.SubmitTraced(spec, client, "")
}

// SubmitTraced is Submit with a caller-supplied trace ID (the
// X-Afa-Trace-Id request header). An empty or invalid ID gets a fresh
// one minted; either way the ID is persisted on the record and stamped
// on every subsequent event of the job's lifecycle.
func (d *Daemon) SubmitTraced(spec JobSpec, client, traceID string) (*Job, error) {
	if _, err := spec.parse(); err != nil {
		return nil, err
	}
	if d.draining.Load() {
		return nil, ErrDraining
	}
	if !validTraceID(traceID) {
		traceID = newTraceID()
	}
	d.mu.Lock()
	id := fmt.Sprintf("j-%06d", d.nextID)
	for d.jobs[id] != nil { // adopted foreign IDs may have raced ahead
		d.nextID++
		id = fmt.Sprintf("j-%06d", d.nextID)
	}
	d.nextID++
	job := &Job{
		ID: id, Client: client, TraceID: traceID, Spec: spec,
		State: StateQueued, Submitted: time.Now().UTC(),
	}
	job.enqueued = time.Now()
	d.jobs[id] = job
	snap := job.clone()
	err := d.store.SaveJob(job)
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := d.queue.push(job); err != nil {
		// Rolled back: the record must not resurrect on restart.
		d.mu.Lock()
		delete(d.jobs, id)
		d.mu.Unlock()
		_ = d.store.DeleteJob(id)
		if errors.Is(err, ErrQueueClosed) {
			return nil, ErrDraining
		}
		if errors.Is(err, ErrQueueShed) {
			obs.Emit(d.rec(), "service", "job.shed",
				obs.F("trace_id", traceID), obs.F("priority", spec.Priority),
				obs.F("queued", d.queue.len()))
			d.counter("service.shed", 1)
		}
		return nil, err
	}
	obs.Emit(d.rec(), "service", "job.submitted",
		obs.F("trace_id", traceID), obs.F("job", id),
		obs.F("key", spec.batchKey()), obs.F("queued", d.queue.len()))
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Counter("service.submitted").Add(1)
		d.opts.Recorder.Metrics().Gauge("service.queue_depth").Set(int64(d.queue.len()))
	}
	return snap, nil
}

// Allow applies the per-client rate limit (one token per submit). On
// denial the duration is the client's own token-refill wait — the
// Retry-After value — and the refusal is recorded (ratelimit.denied
// event with the derived wait, service.ratelimit_denied counter).
func (d *Daemon) Allow(client string) (bool, time.Duration) {
	ok, wait := d.limiter.allow(client)
	if !ok {
		obs.Emit(d.rec(), "service", "ratelimit.denied",
			obs.F("client", client), obs.F("retry_after_ms", wait.Milliseconds()),
			obs.F("denied_total", d.limiter.deniedCount()))
		d.counter("service.ratelimit_denied", 1)
	}
	return ok, wait
}

// Draining reports whether a drain has begun.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// RetryAfterDrain estimates when a draining daemon's successor will
// accept work again: the remaining drain grace plus a restart margin.
func (d *Daemon) RetryAfterDrain() time.Duration {
	if dl := d.drainDeadline.Load(); dl != 0 {
		if rem := time.Until(time.Unix(0, dl)); rem > 0 {
			return rem + time.Second
		}
		return time.Second
	}
	return d.opts.DrainTimeout
}

// RetryAfterQueue estimates when queue space will free up: the current
// backlog divided by the worker count, paced by the measured average
// attempt duration (EWMA). This replaces the old hardcoded guess.
func (d *Daemon) RetryAfterQueue() time.Duration {
	backlog := d.queue.len() + 1
	per := time.Duration(d.avgRunNs.Load())
	est := time.Duration(float64(backlog) / float64(d.opts.Workers) * float64(per))
	if est < time.Second {
		est = time.Second
	}
	if est > 10*time.Minute {
		est = 10 * time.Minute
	}
	return est
}

// observeRun folds one attempt's wall time into the EWMA behind
// RetryAfterQueue.
func (d *Daemon) observeRun(dur time.Duration) {
	for {
		old := d.avgRunNs.Load()
		next := old + (int64(dur)-old)/4
		if next < 1 {
			next = 1
		}
		if d.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Job returns a snapshot of one job, or nil when unknown.
func (d *Daemon) Job(id string) *Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j, ok := d.jobs[id]; ok {
		return j.clone()
	}
	return nil
}

// Jobs returns snapshots of every known job in ID (submission) order.
func (d *Daemon) Jobs() []*Job {
	d.mu.Lock()
	out := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		out = append(out, j.clone())
	}
	d.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Quarantined returns snapshots of the poison jobs, in ID order.
func (d *Daemon) Quarantined() []*Job {
	all := d.Jobs()
	out := all[:0]
	for _, j := range all {
		if j.State == StateQuarantined {
			out = append(out, j)
		}
	}
	return out
}

// rec converts the configured trace to the Recorder interface without
// the typed-nil foot-gun (a nil *Trace must be a nil interface).
func (d *Daemon) rec() obs.Recorder { return recOf(d.opts.Recorder) }

func recOf(t *obs.Trace) obs.Recorder {
	if t == nil {
		return nil
	}
	return t
}

func (d *Daemon) counter(name string, delta int64) {
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Counter(name).Add(delta)
	}
}

// observeHist feeds one duration sample into a named histogram on the
// daemon registry (no-op without a recorder).
func (d *Daemon) observeHist(name string, dur time.Duration) {
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Histogram(name).ObserveDuration(dur)
	}
}

// Metrics exposes the daemon recorder's registry — the source of the
// /metrics Prometheus exposition. Nil when no recorder is configured.
func (d *Daemon) Metrics() *obs.Metrics {
	if d.opts.Recorder == nil {
		return nil
	}
	return d.opts.Recorder.Metrics()
}

// Events returns the raw JSONL event tail of a job.
func (d *Daemon) Events(id string) ([]byte, error) { return d.store.ReadEvents(id) }

// Flight returns the raw flight record of a job (the event ring of its
// last quarantining/panicking/deadline-blown attempt), or nil when no
// attempt failed hard enough to persist one.
func (d *Daemon) Flight(id string) ([]byte, error) { return d.store.ReadFlight(id) }

// dispatch pops key-grouped batches and fans each job out to the
// worker pool. All jobs of one batch share one template lookup (and
// therefore one encode pass the first time a shape is seen).
func (d *Daemon) dispatch() {
	defer close(d.dispatcherDone)
	for {
		batch, ok := d.queue.popBatch(d.opts.BatchMax)
		if !ok {
			return
		}
		tpl := d.templateFor(batch[0].Spec, batch[0].TraceID)
		ids := make([]string, len(batch))
		for i, j := range batch {
			ids[i] = j.ID
		}
		obs.Emit(d.rec(), "service", "batch.dispatch",
			obs.F("key", batch[0].Spec.batchKey()), obs.F("jobs", len(batch)),
			obs.F("ids", ids), obs.F("batched", tpl != nil))
		for _, j := range batch {
			j := j
			if err := d.pool.Submit(func(ctx context.Context) { d.runJob(ctx, j, tpl) }); err != nil {
				// Pool closed or root context canceled: the job was never
				// started and its record still says queued — exactly what
				// the next start expects.
				return
			}
		}
	}
}

// templateFor returns (building or growing on first use) the shared
// template for the spec's shape, or nil when batching is disabled.
// Template construction is the expensive encode pass; instantiation
// per job is a prefix memcpy plus unit clauses.
func (d *Daemon) templateFor(spec JobSpec, traceID string) *core.Template {
	if d.opts.DisableBatching {
		return nil
	}
	p, err := spec.parse() // validated at submit; cannot fail here
	if err != nil {
		return nil
	}
	key := spec.batchKey()
	d.mu.Lock()
	tpl, ok := d.templates[key]
	d.mu.Unlock()
	if !ok {
		cfg := core.DefaultConfig(p.mode, p.model)
		cfg.KnownPosition = spec.KnownPosition
		// The encode is shared by the whole batch; the span carries the
		// triggering job's trace so the cost shows up in that timeline.
		stop := obs.Span(d.rec(), "service", "template.encode",
			obs.F("key", key), obs.F("trace_id", traceID))
		tpl, err = core.NewTemplate(cfg)
		stop(obs.F("err", err != nil))
		if err != nil {
			return nil
		}
		d.mu.Lock()
		if prior, ok := d.templates[key]; ok {
			tpl = prior // lost a (harmless) race with another dispatcher life
		} else {
			d.templates[key] = tpl
		}
		d.mu.Unlock()
	}
	return tpl
}

// acquire claims the lease for a queued job and moves it to leased.
// The returned gen is the in-process fencing token this attempt must
// present when it completes. ok=false means the job is not claimable
// right now (a live peer daemon holds its lease) and was deferred.
func (d *Daemon) acquire(j *Job) (gen int64, attempt int, ok bool) {
	// Cross-process fence first: a fresh foreign lease means a peer on
	// the same state directory owns the job (a steal race went its way).
	if l, err := d.store.ReadLease(j.ID); err == nil && l != nil && l.Owner != d.owner &&
		time.Since(l.Heartbeat) <= d.opts.LeaseTTL {
		d.mu.Lock()
		d.retry[j.ID] = time.Now().Add(d.opts.LeaseTTL)
		d.mu.Unlock()
		return 0, 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.State != StateQueued {
		return 0, 0, false // completed or re-routed while waiting in the pool
	}
	if !j.enqueued.IsZero() {
		d.observeHist("service.queue_wait", time.Since(j.enqueued))
		j.enqueued = time.Time{}
	}
	j.gen++
	gen = j.gen
	attempt = j.Attempts + 1
	now := time.Now().UTC()
	lease := &Lease{JobID: j.ID, Owner: d.owner, Attempt: attempt, Acquired: now, Heartbeat: now}
	d.leases[j.ID] = lease
	j.State = StateLeased
	if !d.killed.Load() {
		_ = d.store.SaveLease(lease)
		_ = d.store.SaveJob(j)
	}
	return gen, attempt, true
}

// runJob executes one attempt of a job on a worker: claim the lease,
// instantiate (or encode), solve under the job's deadline and budgets,
// then settle the outcome — done, retry with backoff, or quarantine.
// A root-context cancellation (kill or drain timeout) re-queues the
// job instead of failing it; interruption never consumes an attempt.
func (d *Daemon) runJob(ctx context.Context, j *Job, tpl *core.Template) {
	gen, attempt, ok := d.acquire(j)
	if !ok {
		return
	}
	d.setState(j, func() {
		j.State = StateRunning
		j.Started = time.Now().UTC()
		j.Attempts++
	})
	if d.opts.Recorder != nil {
		d.opts.Recorder.Metrics().Gauge("service.queue_depth").Set(int64(d.queue.len()))
	}

	// Per-attempt recorder, three sinks behind one interface:
	//
	//   - the daemon-wide recorder (shared sink + the metric registry
	//     the solver's counters land in — Multi routes Metrics() to its
	//     FIRST member, which is why the daemon recorder leads)
	//   - the job's on-disk JSONL event tail (persists across re-runs
	//     via O_APPEND; the events endpoint serves the file)
	//   - the flight ring: the attempt's most recent events, persisted
	//     by settle as <job>.flight.jsonl when the attempt dies hard
	//
	// Tagged stamps trace_id/job/attempt/owner on every event, so one
	// grep over any sink reconstructs the lifecycle, stolen attempts
	// included.
	var tail, flight *obs.Trace
	if ef, err := d.store.OpenEvents(j.ID); err == nil {
		tail = obs.NewTrace(ef, 0)
		defer ef.Close()
	}
	if d.opts.FlightCap > 0 {
		flight = obs.NewTrace(nil, d.opts.FlightCap)
	}
	rec := obs.Tagged(obs.Multi(d.rec(), recOf(tail), recOf(flight)),
		obs.F("trace_id", j.TraceID), obs.F("job", j.ID),
		obs.F("attempt", attempt), obs.F("owner", d.owner))
	obs.Emit(rec, "service", "job.start")

	start := time.Now()
	res, partial, panicked, jerr := d.attempt(ctx, j, attempt, tpl, rec)
	if d.ctx.Err() != nil {
		// Killed or drain-interrupted, not a job outcome. With a real
		// SIGKILL (or its test double) nothing more is persisted and the
		// record stays at leased/running; a drain interrupt checkpoints
		// the job back to queued so the next start re-runs it. Neither
		// consumes an attempt.
		obs.Emit(rec, "service", "job.interrupted")
		if !d.killed.Load() {
			d.releaseInterrupted(j, gen)
		}
		return
	}
	dur := time.Since(start)
	d.observeRun(dur)
	d.observeHist("service.attempt", dur)
	d.settle(j, gen, attempt, res, partial, panicked, jerr, rec, flight)
}

// errAttemptDeadline marks an attempt that blew its per-attempt wall
// clock (deadline_ms); settle uses it to decide the flight recorder
// should persist.
var errAttemptDeadline = errors.New("service: attempt deadline exceeded")

// attempt runs the solve for one attempt, converting panics into
// errors and the per-attempt deadline into a retryable failure. Chaos
// hooks (dev/test only) fire here so injected faults travel the same
// recovery paths real ones would. rec arrives pre-tagged with
// trace_id/job/attempt/owner.
func (d *Daemon) attempt(ctx context.Context, j *Job, attempt int, tpl *core.Template, rec obs.Recorder) (res *JobResult, partial *JobResult, panicked bool, jerr error) {
	defer func() {
		if r := recover(); r != nil {
			res, partial = nil, nil
			panicked = true
			jerr = fmt.Errorf("service: job panicked: %v", r)
			obs.Emit(rec, "service", "job.panic", obs.F("err", fmt.Sprint(r)))
		}
	}()
	if c := d.opts.Chaos; c != nil {
		if c.hit(chaosSlow, j.ID, attempt) {
			obs.Emit(rec, "service", "chaos.slow", obs.F("ms", c.SlowBy.Milliseconds()))
			time.Sleep(c.SlowBy) // deliberately cancellation-blind: a hung worker
		}
		if c.hit(chaosPanic, j.ID, attempt) {
			obs.Emit(rec, "service", "chaos.panic")
			panic("chaos: injected panic")
		}
	}
	dlCtx := ctx
	if ms := j.Spec.DeadlineMs; ms > 0 {
		var cancel context.CancelFunc
		dlCtx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	res, partial, jerr = d.solve(dlCtx, j, tpl, rec)
	if jerr == nil && dlCtx.Err() != nil && ctx.Err() == nil {
		// The per-attempt deadline fired: the solver was interrupted and
		// returned a budget-exceeded result, which becomes the partial
		// checkpoint of a *failed* attempt rather than a final answer.
		partial, res = res, nil
		jerr = fmt.Errorf("%w (%dms)", errAttemptDeadline, j.Spec.DeadlineMs)
	}
	return res, partial, false, jerr
}

// settle applies one attempt's outcome under the fencing checks: a
// worker whose lease was stolen while it was stuck discards its result
// (the thief's re-run is the one that counts — this is what makes
// "no job double-completed" hold under hangs and steals).
func (d *Daemon) settle(j *Job, gen int64, attempt int, res, partial *JobResult, panicked bool, jerr error, rec obs.Recorder, flight *obs.Trace) {
	d.mu.Lock()
	if j.gen != gen {
		d.mu.Unlock()
		obs.Emit(rec, "service", "job.lease.lost")
		d.counter("service.lease_lost", 1)
		return
	}
	// Cross-process fence: the lease file must still be ours. (In-process
	// steals are fully covered by gen; this guards multi-daemon setups.)
	if !d.killed.Load() {
		if l, err := d.store.ReadLease(j.ID); err == nil && (l == nil || l.Owner != d.owner) {
			delete(d.leases, j.ID)
			d.mu.Unlock()
			obs.Emit(rec, "service", "job.lease.lost")
			d.counter("service.lease_lost", 1)
			return
		}
	}
	delete(d.leases, j.ID)
	now := time.Now().UTC()
	var ev string
	var backoff time.Duration
	if jerr == nil {
		j.State = StateDone
		j.Finished = now
		j.Result = res
		j.Error, j.Checkpoint = "", nil
		j.NotBefore = time.Time{}
		ev = "job.finish"
	} else {
		if panicked {
			j.Panics++
		}
		j.Error = jerr.Error()
		if partial != nil {
			j.Checkpoint = partial
		}
		max := j.Spec.MaxAttempts
		if max <= 0 {
			max = d.opts.MaxAttempts
		}
		if j.Panics >= PoisonPanics || j.Attempts >= max {
			j.State = StateQuarantined
			j.Finished = now
			j.NotBefore = time.Time{}
			ev = "job.quarantined"
		} else {
			backoff = d.backoff(j.Attempts)
			j.State = StateQueued
			j.NotBefore = now.Add(backoff)
			d.retry[j.ID] = j.NotBefore
			ev = "job.retry"
		}
	}
	// One liveness decision gates the persist AND the terminal event AND
	// the flight record: a SIGKILLed process (or its test double) does
	// none of the three, so the disk never shows a completed record
	// whose trace is missing its terminal event.
	alive := !d.killed.Load()
	if alive {
		_ = d.store.SaveJob(j)
		_ = d.store.RemoveLease(j.ID)
	}
	state := j.State
	d.mu.Unlock()
	if !alive {
		return
	}

	fields := []obs.Field{obs.F("state", state)}
	switch ev {
	case "job.finish":
		fields = append(fields, obs.F("status", resultStatus(res)))
		d.counter("service.finished", 1)
	case "job.retry":
		fields = append(fields, obs.F("err", jerr.Error()), obs.F("backoff_ms", backoff.Milliseconds()))
		d.counter("service.retries", 1)
	case "job.quarantined":
		fields = append(fields, obs.F("err", jerr.Error()))
		d.counter("service.quarantined", 1)
	}
	obs.Emit(rec, "service", ev, fields...)

	// Flight recorder: a hard-failing attempt (quarantine, panic, blown
	// deadline) persists its ring tail next to the checkpoint, so the
	// post-mortem needs no re-run. Written after the terminal event so
	// the record includes it.
	if flight != nil && (ev == "job.quarantined" || panicked || errors.Is(jerr, errAttemptDeadline)) {
		if err := d.store.SaveFlight(j.ID, flight.Events()); err == nil {
			total, dropped := flight.Totals()
			obs.Emit(rec, "service", "job.flight",
				obs.F("events", total-dropped), obs.F("dropped", dropped))
			d.counter("service.flights", 1)
		}
	}
}

// backoff computes the jittered exponential retry delay after the
// given number of consumed attempts: RetryBase doubling per attempt,
// capped at RetryMax, with ±20% jitter so a burst of failures does not
// re-arrive in lockstep.
func (d *Daemon) backoff(attempts int) time.Duration {
	delay := d.opts.RetryBase
	for i := 1; i < attempts && delay < d.opts.RetryMax; i++ {
		delay *= 2
	}
	if delay > d.opts.RetryMax {
		delay = d.opts.RetryMax
	}
	jitter := 1 + (rand.Float64()-0.5)*0.4
	return time.Duration(float64(delay) * jitter)
}

// releaseInterrupted checkpoints a drain-interrupted job back to
// queued (subject to the same fencing as settle).
func (d *Daemon) releaseInterrupted(j *Job, gen int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.gen != gen {
		return
	}
	delete(d.leases, j.ID)
	j.State = StateQueued
	if !d.killed.Load() {
		_ = d.store.SaveJob(j)
		_ = d.store.RemoveLease(j.ID)
	}
}

func resultStatus(r *JobResult) string {
	if r == nil {
		return ""
	}
	return r.Status
}

// solve runs the attack for one job. tpl == nil means the classic
// per-job encode path. On error, the returned partial carries the
// solver effort spent so far (the quarantine checkpoint).
func (d *Daemon) solve(ctx context.Context, j *Job, tpl *core.Template, rec obs.Recorder) (out, partial *JobResult, err error) {
	p, err := j.Spec.parse()
	if err != nil {
		return nil, nil, err // unreachable: validated at submit
	}
	cfg := core.DefaultConfig(p.mode, p.model)
	cfg.KnownPosition = j.Spec.KnownPosition
	if j.Spec.MaxCandidates > 0 {
		cfg.MaxCandidates = j.Spec.MaxCandidates
	}
	if j.Spec.MaxConflicts > 0 {
		cfg.SolverOptions.MaxConflicts = j.Spec.MaxConflicts
	}
	if rec != nil {
		cfg.Recorder = rec
	}

	var atk *core.Attack
	batched := false
	if tpl != nil {
		atk, err = tpl.Instantiate(cfg, p.correct, p.faulty, p.windows)
		if err != nil {
			return nil, nil, err
		}
		batched = true
	} else {
		atk = core.NewAttack(cfg)
		if err := atk.AddCorrect(p.correct); err != nil {
			return nil, nil, err
		}
		for i, fd := range p.faulty {
			w := -1
			if j.Spec.KnownPosition {
				w = p.windows[i]
			}
			if err := atk.AddFaulty(fd, w); err != nil {
				return nil, nil, err
			}
		}
	}

	jobCtx := ctx
	if j.Spec.TimeoutSec > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutSec*float64(time.Second)))
		defer cancel()
	}
	res, err := atk.SolveContext(jobCtx)
	if err != nil {
		return nil, partialResult(atk), err
	}

	out = &JobResult{
		Status:      res.Status.String(),
		Candidates:  res.Candidates,
		Vars:        res.Vars,
		Clauses:     res.Clauses,
		SolveMillis: float64(res.SolveTime) / float64(time.Millisecond),
		Batched:     batched,
	}
	for _, st := range atk.SolverStats() {
		out.Conflicts += st.Stats.Conflicts
		out.Propagations += st.Stats.Propagations
	}
	if res.Status == core.Recovered {
		out.ChiInput = hex.EncodeToString(res.ChiInput.Bytes())
		if msg, ok := atk.ExtractMessage(res.ChiInput); ok {
			out.Message = hex.EncodeToString(msg)
		}
	}
	return out, nil, nil
}

// partialResult snapshots the solver effort of a failed attempt.
func partialResult(atk *core.Attack) *JobResult {
	p := &JobResult{Status: "partial"}
	for _, st := range atk.SolverStats() {
		p.Conflicts += st.Stats.Conflicts
		p.Propagations += st.Stats.Propagations
	}
	return p
}

// setState applies a mutation to a job and persists it, all under the
// daemon lock so HTTP snapshots never see a half-applied transition.
// Persists are suppressed after Kill: a SIGKILLed process would not
// have reached the disk either, and the restart path must cope.
func (d *Daemon) setState(j *Job, mutate func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mutate()
	if !d.killed.Load() {
		_ = d.store.SaveJob(j)
	}
}

// janitor is the daemon's background maintenance loop: heartbeat held
// leases, reap stale ones (its own when heartbeats stall, and those of
// dead peers on the shared state directory), release backoff-delayed
// retries, and GC old terminal records.
func (d *Daemon) janitor() {
	defer close(d.janitorDone)
	tick := time.NewTicker(d.opts.HeartbeatEvery)
	defer tick.Stop()
	lastReap, lastGC := time.Now(), time.Now()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-tick.C:
		}
		if d.killed.Load() {
			continue // a dead process neither beats nor reaps
		}
		d.beat()
		d.releaseRetries()
		if time.Since(lastReap) >= d.opts.ReapEvery {
			lastReap = time.Now()
			d.reap()
		}
		if d.opts.GCMaxAge > 0 && time.Since(lastGC) >= d.opts.GCEvery {
			lastGC = time.Now()
			d.gc()
		}
	}
}

// beat refreshes the heartbeat on every lease this daemon holds.
func (d *Daemon) beat() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now().UTC()
	for id, l := range d.leases {
		if c := d.opts.Chaos; c != nil && c.hit(chaosDropBeat, id, l.Attempt) {
			continue // chaos: this attempt's heartbeats are delayed
		}
		l.Heartbeat = now
		t0 := time.Now()
		_ = d.store.SaveLease(l)
		// Heartbeat persistence latency: when this histogram's tail nears
		// LeaseTTL the state directory is too slow for the lease cadence
		// and healthy daemons will get robbed.
		d.observeHist("service.heartbeat", time.Since(t0))
	}
}

// reap expires stale leases. Own leases go stale only when heartbeats
// stall (a hung worker, or chaos dropping beats); foreign leases go
// stale when the peer daemon that held them died. Either way the job
// returns to the queue — the steal is arbitrated by the lease file
// unlink, so concurrent reapers cannot both win.
func (d *Daemon) reap() {
	now := time.Now()
	// Phase 1: own leases whose heartbeats stopped.
	d.mu.Lock()
	type expiredLease struct {
		id, trace string
		attempt   int
	}
	var expired []expiredLease
	for id, l := range d.leases {
		if now.Sub(l.Heartbeat) <= d.opts.LeaseTTL {
			continue
		}
		j := d.jobs[id]
		if j == nil {
			delete(d.leases, id)
			continue
		}
		if err := d.store.RemoveLease(id); err != nil && !os.IsNotExist(err) {
			continue
		}
		delete(d.leases, id)
		j.gen++ // fence out the stuck worker
		j.State = StateQueued
		_ = d.store.SaveJob(j)
		d.retry[id] = now
		expired = append(expired, expiredLease{id: id, trace: j.TraceID, attempt: l.Attempt})
	}
	d.mu.Unlock()
	for _, e := range expired {
		obs.Emit(d.rec(), "service", "lease.expired-own",
			obs.F("trace_id", e.trace), obs.F("job", e.id),
			obs.F("owner", d.owner), obs.F("attempt", e.attempt))
		d.counter("service.lease_expired", 1)
	}

	// Phase 2: foreign leases on the shared state directory.
	leases, err := d.store.LoadLeases()
	if err != nil {
		return
	}
	for _, l := range leases {
		if l.Owner == d.owner || now.Sub(l.Heartbeat) <= d.opts.LeaseTTL {
			continue
		}
		if err := d.store.RemoveLease(l.JobID); err != nil {
			continue // lost the steal race
		}
		// Steal-to-adoption gap: how long the job sat orphaned past its
		// lease TTL before a live daemon noticed — the recovery-latency
		// cost of the TTL + ReapEvery settings.
		if gap := now.Sub(l.Heartbeat) - d.opts.LeaseTTL; gap > 0 {
			d.observeHist("service.steal_gap", gap)
		}
		d.mu.Lock()
		trace := ""
		if j := d.jobs[l.JobID]; j != nil {
			trace = j.TraceID
		}
		d.mu.Unlock()
		obs.Emit(d.rec(), "service", "lease.stolen",
			obs.F("trace_id", trace), obs.F("job", l.JobID),
			obs.F("owner", l.Owner), obs.F("attempt", l.Attempt))
		d.counter("service.lease_stolen", 1)
		d.adopt(l.JobID)
	}
}

// adopt takes over a job whose foreign lease this daemon just reaped,
// reloading the record from disk (the in-memory copy, if any, may be
// stale) and re-queueing it unless it already reached a terminal
// state.
func (d *Daemon) adopt(id string) {
	onDisk, err := d.store.ReadJob(id)
	if err != nil || onDisk == nil {
		return
	}
	d.mu.Lock()
	j, known := d.jobs[id]
	if !known {
		j = onDisk
		d.jobs[id] = j
	}
	if terminal(j.State) {
		d.mu.Unlock()
		return
	}
	j.gen++
	j.State = StateQueued
	_ = d.store.SaveJob(j)
	d.retry[id] = time.Now()
	trace := j.TraceID
	d.mu.Unlock()
	obs.Emit(d.rec(), "service", "job.adopted",
		obs.F("trace_id", trace), obs.F("job", id), obs.F("owner", d.owner))
	d.counter("service.adopted", 1)
}

// releaseRetries re-dispatches jobs whose backoff (or steal hold-off)
// has elapsed.
func (d *Daemon) releaseRetries() {
	now := time.Now()
	d.mu.Lock()
	var due []*Job
	for id, at := range d.retry {
		if at.After(now) {
			continue
		}
		delete(d.retry, id)
		if j := d.jobs[id]; j != nil && j.State == StateQueued {
			j.enqueued = now
			due = append(due, j)
		}
	}
	d.mu.Unlock()
	sort.Slice(due, func(a, b int) bool { return due[a].ID < due[b].ID })
	for _, j := range due {
		if err := d.queue.requeue(j); err != nil {
			return // closed: the job stays persisted as queued for the next start
		}
	}
}

// gc prunes terminal job records (and their event tails) older than
// GCMaxAge, reporting the reclaimed bytes.
func (d *Daemon) gc() {
	cutoff := time.Now().Add(-d.opts.GCMaxAge)
	d.mu.Lock()
	type victim struct {
		id, trace string
		bytes     int64
	}
	var victims []victim
	for id, j := range d.jobs {
		if terminal(j.State) && !j.Finished.IsZero() && j.Finished.Before(cutoff) {
			victims = append(victims, victim{id: id, trace: j.TraceID})
		}
	}
	removed := 0
	var reclaimed int64
	for i := range victims {
		n, err := d.store.RemoveJob(victims[i].id)
		if err != nil {
			victims[i].bytes = -1 // skipped; keep the record
			continue
		}
		delete(d.jobs, victims[i].id)
		victims[i].bytes = n
		removed++
		reclaimed += n
	}
	d.mu.Unlock()
	if removed > 0 {
		// One event per reclaimed job closes its trace ("this record left
		// the store"), plus an aggregate for dashboard rates.
		for _, v := range victims {
			if v.bytes < 0 {
				continue
			}
			obs.Emit(d.rec(), "service", "gc.reclaimed",
				obs.F("trace_id", v.trace), obs.F("job", v.id),
				obs.F("reclaimed_bytes", v.bytes))
		}
		obs.Emit(d.rec(), "service", "gc.pass",
			obs.F("removed", removed), obs.F("reclaimed_bytes", reclaimed))
		d.counter("service.gc_removed", int64(removed))
		d.counter("service.gc_reclaimed_bytes", reclaimed)
	}
}

// Drain gracefully shuts the daemon down: new submits fail with
// ErrDraining, queued jobs stay persisted for the next start, and
// in-flight jobs get DrainTimeout to finish before their solves are
// interrupted and the jobs checkpointed back to queued. It returns
// once every worker and the janitor have stopped.
func (d *Daemon) Drain() {
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		d.drainDeadline.Store(time.Now().Add(d.opts.DrainTimeout).UnixNano())
		d.queue.close()
		<-d.dispatcherDone
		obs.Emit(d.rec(), "service", "daemon.drain", obs.F("queued", d.queue.len()))
		done := make(chan struct{})
		go func() { d.pool.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(d.opts.DrainTimeout):
			d.cancel() // interrupt in-flight solves; runJob re-queues them
			<-done
		}
		d.cancel()
		<-d.janitorDone
	})
}

// Kill is the SIGKILL test double: it hard-stops the daemon without
// letting in-flight jobs persist anything further, so the state
// directory looks exactly like a process that died mid-run (including
// its leases, which stay on disk and go stale for the next life to
// steal). Tests restart a fresh Daemon on the same directory
// afterwards.
func (d *Daemon) Kill() {
	d.killed.Store(true)
	d.drainOnce.Do(func() {
		d.draining.Store(true)
		d.queue.close()
		d.cancel()
		<-d.dispatcherDone
		d.pool.Close()
		<-d.janitorDone
	})
}
