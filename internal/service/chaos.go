package service

import (
	"hash/fnv"
	"time"
)

// Chaos kinds, keyed into the per-job selector hash.
const (
	chaosPanic    = "panic"
	chaosSlow     = "slow"
	chaosDropBeat = "dropbeat"
)

// Chaos is the fault-injection config for the chaos harness (and the
// cmd/afad -chaos dev flag). Injection is deterministic: whether a job
// is hit by a given kind depends only on (Seed, kind, job ID), so a
// chaos run is reproducible for a fixed seed and the reference run
// (no Chaos attached) is the ground truth it must converge to.
//
// All kinds fire only on attempts <= MaxAttempt (default 1): chaos
// wounds a job's early attempts, the retry machinery must heal it. A
// panic on every attempt would be a poison job — that path is covered
// by dedicated quarantine tests, not the convergence harness.
type Chaos struct {
	Seed int64
	// PanicFrac is the fraction of jobs whose injected attempt panics
	// mid-solve (exercises panic recovery + retry accounting).
	PanicFrac float64
	// SlowFrac / SlowBy: the injected attempt sleeps SlowBy before
	// solving, deliberately ignoring cancellation — a hung worker. With
	// SlowBy > lease TTL and dropped heartbeats the reaper must steal
	// the job and the woken worker must discard its result (lease lost).
	SlowFrac float64
	SlowBy   time.Duration
	// DropBeatFrac is the fraction of jobs whose injected attempt never
	// heartbeats, so its lease goes stale while the job still runs.
	DropBeatFrac float64
	// MaxAttempt bounds which attempts are injected (default 1).
	MaxAttempt int
}

// hit reports whether this (kind, job, attempt) is injected.
func (c *Chaos) hit(kind, jobID string, attempt int) bool {
	if c == nil {
		return false
	}
	ma := c.MaxAttempt
	if ma < 1 {
		ma = 1
	}
	if attempt > ma {
		return false
	}
	var frac float64
	switch kind {
	case chaosPanic:
		frac = c.PanicFrac
	case chaosSlow:
		frac = c.SlowFrac
	case chaosDropBeat:
		frac = c.DropBeatFrac
	}
	if frac <= 0 {
		return false
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(c.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(kind))
	h.Write([]byte(jobID))
	return float64(h.Sum64()%1_000_000)/1_000_000 < frac
}
