package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"sha3afa/internal/campaign"
)

// Lease is the ownership record a worker writes before running a job:
//
//	<dir>/leases/<id>.json
//
// It is the cross-node contract for work-stealing over a shared state
// directory. A daemon claims a job by writing a lease with its owner
// id, refreshes Heartbeat while the job runs, and removes the file on
// completion or re-queue. Any daemon that finds a lease whose
// heartbeat is older than the lease TTL may steal the job: the steal
// is an os.Remove of the lease file, and the unlink is the atomic
// arbiter — exactly one contender succeeds, everyone else sees ENOENT
// and backs off. The record itself is written with the same
// atomic-rename discipline as job records (campaign.WriteJSONAtomic),
// so a readable lease is never torn.
//
// The golden round-trip test (lease_test.go) pins this wire format:
// changing a field name or the timestamp encoding is a cross-node
// protocol break, not a refactor.
type Lease struct {
	JobID   string `json:"job_id"`
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt"` // attempt number this lease covers (1-based)
	// Acquired is when the worker claimed the job; Heartbeat is
	// refreshed every HeartbeatEvery while the job runs. Both are UTC.
	Acquired  time.Time `json:"acquired"`
	Heartbeat time.Time `json:"heartbeat"`
}

// ownerSeq disambiguates multiple daemons created inside one process
// (tests, and the chaos harness, run several lives side by side).
var ownerSeq atomic.Int64

// newOwnerID builds a process-unique owner id. Uniqueness across
// machines sharing a state directory comes from the pid + start-time
// component; uniqueness across daemon lives within one process from
// the sequence counter.
func newOwnerID() string {
	return fmt.Sprintf("afad-%d-%x-%d", os.Getpid(), time.Now().UnixNano()&0xffffff, ownerSeq.Add(1))
}

func (s *Store) leasePath(id string) string {
	return filepath.Join(s.dir, "leases", id+".json")
}

// SaveLease persists one lease record atomically (claim and heartbeat
// share the same write path).
func (s *Store) SaveLease(l *Lease) error {
	return campaign.WriteJSONAtomic(s.leasePath(l.JobID), l)
}

// ReadLease returns the job's lease, or nil when none exists.
func (s *Store) ReadLease(id string) (*Lease, error) {
	data, err := os.ReadFile(s.leasePath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("service: lease %s: %w", id, err)
	}
	return &l, nil
}

// RemoveLease unlinks the lease file. The unlink is the atomic steal
// primitive: when several daemons race to expire the same stale lease,
// exactly one Remove succeeds and the rest get ENOENT (reported as-is
// so callers can tell a won steal from a lost one).
func (s *Store) RemoveLease(id string) error {
	return os.Remove(s.leasePath(id))
}

// LoadLeases reads every lease record in the directory. Unparseable
// files are skipped (a foreign dropping, not a lease — SaveLease output
// always parses).
func (s *Store) LoadLeases() ([]*Lease, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "leases"))
	if err != nil {
		return nil, err
	}
	var leases []*Lease
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "leases", e.Name()))
		if err != nil {
			continue // racing unlink by another daemon
		}
		var l Lease
		if err := json.Unmarshal(data, &l); err != nil || l.JobID == "" {
			continue
		}
		leases = append(leases, &l)
	}
	return leases, nil
}
