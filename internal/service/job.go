// Package service lifts the one-shot AFA pipeline into a long-running
// attack daemon: an HTTP/JSON API accepts (correct digest, faulty
// digest set) jobs, a bounded queue groups them by encoding shape so a
// batch shares one pre-encoded template (core.Template), the campaign
// worker pool solves them, and every state transition is persisted
// through the atomic-rename store so a killed daemon resumes its queue
// on restart. cmd/afad is the binary front-end.
package service

import (
	"encoding/hex"
	"fmt"
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// MaxObservations bounds the faulty digests one job may carry: it caps
// template growth (capacity never shrinks) and keeps a single request
// from monopolizing a worker for hours.
const MaxObservations = 64

// JobSpec is the client-supplied description of one attack job — the
// wire format of POST /v1/jobs.
type JobSpec struct {
	Mode          string   `json:"mode"`           // e.g. "SHA3-224"
	Model         string   `json:"fault_model"`    // e.g. "byte"
	CorrectDigest string   `json:"correct_digest"` // hex, full digest length
	FaultyDigests []string `json:"faulty_digests"` // hex, one per observation
	// KnownPosition enables the precise fault-position ablation; Windows
	// then carries one true window index per faulty digest.
	KnownPosition bool  `json:"known_position,omitempty"`
	Windows       []int `json:"windows,omitempty"`
	// Solver budgets (0 = server defaults). MaxConflicts makes a job
	// deterministic wall-clock-independent; TimeoutSec bounds it in real
	// time.
	MaxCandidates int     `json:"max_candidates,omitempty"`
	MaxConflicts  int64   `json:"max_conflicts,omitempty"`
	TimeoutSec    float64 `json:"timeout_sec,omitempty"`
	// DeadlineMs bounds each attempt's wall clock. Unlike TimeoutSec
	// (a solver budget: expiry is a normal budget-exceeded result), a
	// blown deadline fails the attempt, which then retries with backoff
	// and eventually quarantines — the knob for "this job must not pin a
	// worker". 0 means no deadline.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// MaxAttempts caps how often a *failed* attempt (error, deadline,
	// panic) is retried before the job is quarantined. Interruptions by
	// drain or crash do not consume attempts. 0 means the server default.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Priority orders admission under overload: once the queue passes
	// its shed watermark, only submits with Priority > 0 are accepted.
	// Higher is more important; default 0.
	Priority int `json:"priority,omitempty"`
}

// parsedSpec is the validated, decoded form of a JobSpec.
type parsedSpec struct {
	mode    keccak.Mode
	model   fault.Model
	correct []byte
	faulty  [][]byte
	windows []int
}

// parse validates the spec and decodes every field. All errors are
// client errors (HTTP 400).
func (s JobSpec) parse() (parsedSpec, error) {
	var p parsedSpec
	mode, err := keccak.ParseMode(s.Mode)
	if err != nil {
		return p, err
	}
	model, err := fault.Parse(s.Model)
	if err != nil {
		return p, err
	}
	p.mode, p.model = mode, model
	want := mode.DigestBits() / 8
	p.correct, err = decodeDigest(s.CorrectDigest, want, "correct_digest")
	if err != nil {
		return p, err
	}
	if len(s.FaultyDigests) == 0 {
		return p, fmt.Errorf("service: no faulty_digests")
	}
	if len(s.FaultyDigests) > MaxObservations {
		return p, fmt.Errorf("service: %d faulty_digests exceeds the limit of %d", len(s.FaultyDigests), MaxObservations)
	}
	p.faulty = make([][]byte, len(s.FaultyDigests))
	for i, h := range s.FaultyDigests {
		p.faulty[i], err = decodeDigest(h, want, fmt.Sprintf("faulty_digests[%d]", i))
		if err != nil {
			return p, err
		}
	}
	if s.KnownPosition {
		if len(s.Windows) != len(s.FaultyDigests) {
			return p, fmt.Errorf("service: known_position needs %d windows, got %d", len(s.FaultyDigests), len(s.Windows))
		}
		for i, w := range s.Windows {
			if w < 0 || w >= model.Windows() {
				return p, fmt.Errorf("service: windows[%d] = %d out of range for %s", i, w, model)
			}
		}
		p.windows = s.Windows
	} else if len(s.Windows) != 0 {
		return p, fmt.Errorf("service: windows supplied without known_position")
	}
	if s.MaxConflicts < 0 || s.MaxCandidates < 0 || s.TimeoutSec < 0 || s.DeadlineMs < 0 {
		return p, fmt.Errorf("service: negative budget")
	}
	if s.MaxAttempts < 0 || s.MaxAttempts > 100 {
		return p, fmt.Errorf("service: max_attempts %d out of range [0,100]", s.MaxAttempts)
	}
	if s.Priority < -100 || s.Priority > 100 {
		return p, fmt.Errorf("service: priority %d out of range [-100,100]", s.Priority)
	}
	return p, nil
}

func decodeDigest(h string, want int, field string) ([]byte, error) {
	b, err := hex.DecodeString(h)
	if err != nil {
		return nil, fmt.Errorf("service: %s: %v", field, err)
	}
	if len(b) != want {
		return nil, fmt.Errorf("service: %s: %d bytes, want %d", field, len(b), want)
	}
	return b, nil
}

// batchKey groups jobs that can share one encoded template: the CNF
// structure depends only on (mode, fault model, position knowledge) —
// digests are unit clauses.
func (s JobSpec) batchKey() string {
	kp := ""
	if s.KnownPosition {
		kp = "+kp"
	}
	return s.Mode + "|" + s.Model + kp
}

// Job states — the lifecycle state machine:
//
//	queued ──► leased ──► running ──► done
//	  ▲                     │
//	  │  retry w/ backoff   ├──► queued      (failed attempt, attempts left)
//	  └─────────────────────┤
//	                        └──► quarantined (attempts exhausted or 2 panics)
//
// A worker claims a queued job by writing its lease (leased), then
// starts solving (running). A daemon killed mid-run leaves the record
// at leased or running with a lease that goes stale; the restart path
// or any peer daemon's reaper steals it back to queued. done and
// quarantined are terminal. failed is a legacy terminal state kept so
// pre-lease job records still load; new runs never produce it.
const (
	StateQueued      = "queued"
	StateLeased      = "leased"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateQuarantined = "quarantined"
)

// PoisonPanics is the quarantine threshold on panicking attempts: a
// job that panics twice is poison regardless of its attempt budget —
// crash-looping a dispatcher on it helps nobody.
const PoisonPanics = 2

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateQuarantined
}

// Job is the persisted unit of work — one file in the store per job,
// rewritten atomically on every state transition.
type Job struct {
	ID     string `json:"id"`
	Client string `json:"client,omitempty"`
	// TraceID correlates every obs event of this job across daemons,
	// attempts and steals: minted at submit (or accepted from the
	// X-Afa-Trace-Id header) and persisted with the record, so one grep
	// over the JSONL sinks of N daemons reconstructs the full lifecycle.
	TraceID   string    `json:"trace_id,omitempty"`
	Spec      JobSpec   `json:"spec"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Attempts counts how often a worker picked the job up; >1 means the
	// job was retried after a failure, or re-queued by a kill or drain.
	Attempts int `json:"attempts,omitempty"`
	// NotBefore delays a retried job: the queue will not hand it to a
	// worker before this instant (jittered exponential backoff). It
	// rides the record across crashes so a restart honours the backoff.
	NotBefore time.Time `json:"not_before,omitempty"`
	// Panics counts attempts that ended in a recovered panic; at
	// PoisonPanics the job is quarantined regardless of MaxAttempts.
	Panics int        `json:"panics,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	// Error is the last attempt's failure (retained in quarantine as the
	// post-mortem headline; cleared if a later attempt succeeds).
	Error string `json:"error,omitempty"`
	// Checkpoint is the partial result of the last failed attempt
	// (solver effort up to the deadline or error) — attached to
	// quarantined jobs so the poison report shows how far solving got.
	Checkpoint *JobResult `json:"checkpoint,omitempty"`

	// gen is the in-process fencing token: bumped on every lease
	// acquisition and every reaper re-queue (all under the daemon lock).
	// A worker whose captured gen no longer matches lost its lease while
	// it was stuck and must discard its outcome. Deliberately not
	// serialized — cross-process fencing uses the lease file itself.
	gen int64
	// enqueued is when the job last entered the queue (guarded by the
	// daemon lock, like gen); acquire turns it into the queue-wait
	// histogram sample. Not serialized — a restart's wait measures from
	// the re-enqueue, not the original submit.
	enqueued time.Time
}

// JobResult is the outcome of a finished job. SolveMillis is
// wall-clock and therefore excluded from reproducibility comparisons;
// everything else is deterministic for a fixed spec (and, for
// budget-capped outcomes, a fixed encoding path).
type JobResult struct {
	Status       string  `json:"status"`              // recovered | ambiguous | inconsistent | budget-exceeded
	ChiInput     string  `json:"chi_input,omitempty"` // hex, 200 bytes: recovered χ input of round 22
	Message      string  `json:"message,omitempty"`   // hex: recovered message block
	Candidates   int     `json:"candidates"`
	Vars         int     `json:"vars"`
	Clauses      int     `json:"clauses"`
	Conflicts    int64   `json:"conflicts"`
	Propagations int64   `json:"propagations"`
	SolveMillis  float64 `json:"solve_ms"`
	Batched      bool    `json:"batched"` // instantiated from a shared template
}

// clone returns a deep-enough copy for handing to HTTP handlers:
// Result/Checkpoint are copied, Spec shares its (immutable after
// submit) slices.
func (j *Job) clone() *Job {
	c := *j
	if j.Result != nil {
		r := *j.Result
		c.Result = &r
	}
	if j.Checkpoint != nil {
		r := *j.Checkpoint
		c.Checkpoint = &r
	}
	return &c
}
