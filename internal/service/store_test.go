package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStoreRoundTrip: jobs come back from LoadJobs exactly as saved,
// sorted by ID, with foreign files in the directory skipped.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{
		{ID: "j-000002", State: StateDone, Submitted: time.Unix(2, 0).UTC(),
			Result: &JobResult{Status: "inconsistent", Vars: 10, Clauses: 20}},
		{ID: "j-000001", State: StateQueued, Submitted: time.Unix(1, 0).UTC(),
			Spec: JobSpec{Mode: "SHA3-224", Model: "byte"}},
	}
	for _, j := range jobs {
		if err := st.SaveJob(j); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign droppings must not break or pollute the restart path.
	os.WriteFile(filepath.Join(dir, "jobs", "notes.json"), []byte("{}"), 0o644)
	os.WriteFile(filepath.Join(dir, "jobs", "junk.txt"), []byte("x"), 0o644)

	got, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "j-000001" || got[1].ID != "j-000002" {
		t.Fatalf("LoadJobs = %d jobs %v, want j-000001 then j-000002", len(got), got)
	}
	if got[0].Spec.Mode != "SHA3-224" || got[1].Result == nil || got[1].Result.Clauses != 20 {
		t.Fatal("loaded jobs lost fields")
	}
	if n := nextSeq(got); n != 3 {
		t.Fatalf("nextSeq = %d, want 3", n)
	}
}

// TestStoreRemoveJob: removal reclaims both the record and the event
// tail, reports their summed size, and is idempotent (a second remove
// reclaims nothing and does not error).
func TestStoreRemoveJob(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{ID: "j-000001", State: StateDone, Submitted: time.Unix(1, 0).UTC()}
	if err := st.SaveJob(j); err != nil {
		t.Fatal(err)
	}
	f, err := st.OpenEvents(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"ev\":\"x\"}\n")
	f.Close()

	recSize, _ := os.Stat(st.jobPath(j.ID))
	evSize, _ := os.Stat(st.EventsPath(j.ID))
	want := recSize.Size() + evSize.Size()

	n, err := st.RemoveJob(j.ID)
	if err != nil || n != want {
		t.Fatalf("RemoveJob = %d, %v; want %d bytes reclaimed", n, err, want)
	}
	if got, err := st.ReadJob(j.ID); err != nil || got != nil {
		t.Fatalf("ReadJob after remove = %+v, %v", got, err)
	}
	if n, err := st.RemoveJob(j.ID); err != nil || n != 0 {
		t.Fatalf("second RemoveJob = %d, %v; want 0, nil", n, err)
	}
}

// TestStoreEvents: the event tail appends across opens and reads back
// verbatim; a job that never started has an empty tail, not an error.
func TestStoreEvents(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if data, err := st.ReadEvents("j-000001"); err != nil || data != nil {
		t.Fatalf("ReadEvents before start = %q, %v; want empty, nil", data, err)
	}
	for _, line := range []string{"{\"ev\":\"a\"}\n", "{\"ev\":\"b\"}\n"} {
		f, err := st.OpenEvents("j-000001")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(line)
		f.Close()
	}
	data, err := st.ReadEvents("j-000001")
	if err != nil || string(data) != "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n" {
		t.Fatalf("ReadEvents = %q, %v", data, err)
	}
}
