package service

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sha3afa/internal/obs"
)

// Server is the HTTP front-end of a Daemon. Routes:
//
//	POST /v1/jobs             submit a JobSpec, 202 + job snapshot; honours
//	                          an X-Afa-Trace-Id request header and echoes
//	                          the effective trace ID back in the response
//	GET  /v1/jobs             list all jobs (submission order)
//	GET  /v1/jobs/{id}        one job snapshot (poll for progress)
//	GET  /v1/jobs/{id}/events the job's JSONL event tail
//	GET  /v1/jobs/{id}/flight flight record of the last hard-failing attempt
//	GET  /v1/quarantine       the poison jobs (with last error + checkpoint)
//	GET  /metrics             Prometheus text exposition of the daemon metrics
//	GET  /healthz             liveness + drain state
//	     /debug/...           obs metrics/trace/pprof (when a Recorder is set)
//
// Status mapping: 400 invalid spec, 429 rate-limited / queue full /
// shed, 503 draining, 404 unknown job. Every 429 and 503 carries a
// Retry-After derived from actual daemon state: the client's own
// token-refill time, the measured queue drain rate, or the remaining
// drain grace — never a hardcoded guess.
type Server struct {
	d    *Daemon
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// NewServer wires the daemon's routes onto a fresh mux.
func NewServer(d *Daemon) *Server {
	s := &Server{d: d, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/flight", s.flight)
	s.mux.HandleFunc("GET /v1/quarantine", s.quarantine)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", s.health)
	if d.opts.Recorder != nil {
		s.mux.Handle("/debug/", d.opts.Recorder.DebugMux())
	}
	return s
}

// Handler exposes the route mux (for httptest servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener; callers drain the daemon separately.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

// clientOf identifies the submitter for rate limiting: the X-Client
// header when present, else the remote host.
func clientOf(r *http.Request) string {
	if c := strings.TrimSpace(r.Header.Get("X-Client")); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retrySeconds formats a wait as a Retry-After value: whole seconds,
// rounded up, at least 1 (the header has no sub-second resolution).
func retrySeconds(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	client := clientOf(r)
	if s.d.Draining() {
		w.Header().Set("Retry-After", retrySeconds(s.d.RetryAfterDrain()))
		writeErr(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if ok, wait := s.d.Allow(client); !ok {
		w.Header().Set("Retry-After", retrySeconds(wait))
		writeErr(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	job, err := s.d.SubmitTraced(spec, client, strings.TrimSpace(r.Header.Get("X-Afa-Trace-Id")))
	switch {
	case err == nil:
		w.Header().Set("X-Afa-Trace-Id", job.TraceID)
		writeJSON(w, http.StatusAccepted, job)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retrySeconds(s.d.RetryAfterDrain()))
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueShed):
		w.Header().Set("Retry-After", retrySeconds(s.d.RetryAfterQueue()))
		writeErr(w, http.StatusTooManyRequests, err.Error())
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.d.Jobs())
}

func (s *Server) quarantine(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.d.Quarantined())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	j := s.d.Job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.d.Job(id) == nil {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	data, err := s.d.Events(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = w.Write(data)
}

func (s *Server) flight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.d.Job(id) == nil {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	data, err := s.d.Flight(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	if len(data) == 0 {
		writeErr(w, http.StatusNotFound, "no flight record (no attempt failed hard enough)")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = w.Write(data)
}

// metrics serves the daemon registry in Prometheus text exposition
// format. Without a recorder there is nothing to scrape; a comment-only
// body keeps the endpoint well-formed for probes either way.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentTypePrometheus)
	m := s.d.Metrics()
	if m == nil {
		_, _ = w.Write([]byte("# no recorder configured\n"))
		return
	}
	_ = m.WritePrometheus(w)
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.d.Draining(),
		"queued":   s.d.queue.len(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
