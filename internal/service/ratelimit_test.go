package service

import "testing"

// TestRateLimitBurstAndIsolation: each client gets its own bucket of
// burst tokens; exhausting one client's bucket does not touch another.
func TestRateLimitBurstAndIsolation(t *testing.T) {
	// Refill rate so slow it contributes nothing within the test.
	rl := newRateLimiter(1e-9, 3)
	for i := 0; i < 3; i++ {
		if !rl.allow("alice") {
			t.Fatalf("alice submit %d denied within burst", i)
		}
	}
	if rl.allow("alice") {
		t.Fatal("alice allowed past burst")
	}
	if !rl.allow("bob") {
		t.Fatal("bob denied by alice's exhausted bucket")
	}
}

// TestRateLimitDisabled: zero rate means no limiting at all.
func TestRateLimitDisabled(t *testing.T) {
	rl := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if !rl.allow("anyone") {
			t.Fatal("zero-rate limiter denied a submit")
		}
	}
}

// TestRateLimitPrune: bucket-map growth from client-name churn is
// bounded — refilled (full) buckets are dropped once the map passes
// its threshold. A huge rate makes every bucket full again by its next
// inspection, so the churn loop keeps the map near the threshold.
func TestRateLimitPrune(t *testing.T) {
	rl := newRateLimiter(1e9, 1)
	for i := 0; i < 5000; i++ {
		rl.allow(fmtClient(i))
	}
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 1100 {
		t.Fatalf("bucket map grew to %d entries, prune is not bounding it", n)
	}
}

func fmtClient(i int) string {
	return string([]byte{'c', byte('a' + i%26), byte('a' + (i/26)%26), byte('a' + i/676)})
}
