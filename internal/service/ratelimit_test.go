package service

import (
	"sync"
	"testing"
	"time"
)

func allowed(rl *rateLimiter, client string) bool {
	ok, _ := rl.allow(client)
	return ok
}

// TestRateLimitBurstAndIsolation: each client gets its own bucket of
// burst tokens; exhausting one client's bucket does not touch another.
func TestRateLimitBurstAndIsolation(t *testing.T) {
	// Refill rate so slow it contributes nothing within the test.
	rl := newRateLimiter(1e-9, 3)
	for i := 0; i < 3; i++ {
		if !allowed(rl, "alice") {
			t.Fatalf("alice submit %d denied within burst", i)
		}
	}
	if allowed(rl, "alice") {
		t.Fatal("alice allowed past burst")
	}
	if !allowed(rl, "bob") {
		t.Fatal("bob denied by alice's exhausted bucket")
	}
}

// TestRateLimitDisabled: zero rate means no limiting at all.
func TestRateLimitDisabled(t *testing.T) {
	rl := newRateLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if !allowed(rl, "anyone") {
			t.Fatal("zero-rate limiter denied a submit")
		}
	}
}

// TestRateLimitRetryAfter: a denial reports the client's own
// token-refill wait — with rate 2/s and an empty bucket, refilling the
// missing token takes about half a second, not the old hardcoded 1.
func TestRateLimitRetryAfter(t *testing.T) {
	rl := newRateLimiter(2, 1)
	if !allowed(rl, "c") {
		t.Fatal("first submit within burst denied")
	}
	ok, wait := rl.allow("c")
	if ok {
		t.Fatal("second immediate submit allowed past burst 1")
	}
	if wait <= 0 || wait > 600*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~500ms (refill of 1 token at 2/s)", wait)
	}
	time.Sleep(wait + 50*time.Millisecond)
	if !allowed(rl, "c") {
		t.Fatal("submit denied after waiting the advertised retry-after")
	}
}

// TestRateLimitPrune: bucket-map growth from client-name churn is
// bounded — refilled (full) buckets are dropped once the map passes
// its threshold. A huge rate makes every bucket full again by its next
// inspection, so the churn loop keeps the map near the threshold.
func TestRateLimitPrune(t *testing.T) {
	rl := newRateLimiter(1e9, 1)
	for i := 0; i < 5000; i++ {
		rl.allow(fmtClient(i))
	}
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 1100 {
		t.Fatalf("bucket map grew to %d entries, prune is not bounding it", n)
	}
}

// TestRateLimitConcurrentChurn drives the allow+prune path from many
// goroutines at once — the eviction loop mutates the map while other
// clients are mid-allow, which the race detector checks for us. Each
// goroutine also hammers one stable client to verify a bucket can be
// pruned out from under a client and recreated without losing safety.
func TestRateLimitConcurrentChurn(t *testing.T) {
	rl := newRateLimiter(1e9, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rl.allow(fmtClient(g*2000 + i))
				rl.allow("stable")
			}
		}()
	}
	wg.Wait()
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 2048 {
		t.Fatalf("bucket map grew to %d entries under concurrent churn", n)
	}
}

func fmtClient(i int) string {
	return string([]byte{'c', byte('a' + i%26), byte('a' + (i/26)%26), byte('a' + i/676)})
}
