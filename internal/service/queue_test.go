package service

import (
	"errors"
	"testing"
	"time"
)

func jobWithKey(id, mode, model string, kp bool) *Job {
	return &Job{ID: id, Spec: JobSpec{Mode: mode, Model: model, KnownPosition: kp}}
}

// TestQueueBatchGrouping: jobs sharing a batch key come out together,
// in one popBatch, regardless of submit interleaving.
func TestQueueBatchGrouping(t *testing.T) {
	q := newQueue(16, 0)
	for _, j := range []*Job{
		jobWithKey("j-1", "SHA3-224", "byte", false),
		jobWithKey("j-2", "SHA3-256", "byte", false),
		jobWithKey("j-3", "SHA3-224", "byte", false),
		jobWithKey("j-4", "SHA3-224", "byte", true), // kp is its own key
		jobWithKey("j-5", "SHA3-224", "byte", false),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	batch, ok := q.popBatch(8)
	if !ok || len(batch) != 3 {
		t.Fatalf("first batch = %d jobs, want the 3 SHA3-224 relaxed jobs", len(batch))
	}
	for _, j := range batch {
		if j.Spec.batchKey() != "SHA3-224|byte" {
			t.Fatalf("mixed key in batch: %s", j.Spec.batchKey())
		}
	}
	if batch, _ = q.popBatch(8); len(batch) != 1 || batch[0].ID != "j-2" {
		t.Fatalf("second batch = %v, want j-2 alone", batch)
	}
	if batch, _ = q.popBatch(8); len(batch) != 1 || batch[0].ID != "j-4" {
		t.Fatalf("third batch = %v, want j-4 alone", batch)
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
}

// TestQueueFairness: a key with a deep backlog goes to the back of the
// line after each pop, so other keys are served in between.
func TestQueueFairness(t *testing.T) {
	q := newQueue(32, 0)
	for i := 0; i < 6; i++ {
		q.push(jobWithKey("a", "SHA3-224", "byte", false))
	}
	q.push(jobWithKey("b", "SHA3-256", "byte", false))

	first, _ := q.popBatch(2)
	second, _ := q.popBatch(2)
	if len(first) != 2 || first[0].ID != "a" {
		t.Fatalf("first pop = %v, want 2 of key a", first)
	}
	if len(second) != 1 || second[0].ID != "b" {
		t.Fatalf("second pop = %v, want b: deep key a must not starve b", second)
	}
}

// TestQueueFullAndClosed: depth bound gives ErrQueueFull, close gives
// ErrQueueClosed and wakes blocked poppers with ok=false.
func TestQueueFullAndClosed(t *testing.T) {
	q := newQueue(2, 0)
	q.push(jobWithKey("j-1", "SHA3-224", "byte", false))
	q.push(jobWithKey("j-2", "SHA3-224", "byte", false))
	if err := q.push(jobWithKey("j-3", "SHA3-224", "byte", false)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over depth = %v, want ErrQueueFull", err)
	}

	q.popBatch(8)
	q.close()
	if err := q.push(jobWithKey("j-4", "SHA3-224", "byte", false)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	// Close wins over remaining content: queued jobs stay queued.
	if batch, ok := q.popBatch(8); ok {
		t.Fatalf("popBatch after close = %v, want ok=false", batch)
	}
}

// TestQueueShed: above the shed watermark, Priority <= 0 submits are
// refused with ErrQueueShed while Priority > 0 is still admitted up to
// the hard depth bound — overload drops the least important work first.
func TestQueueShed(t *testing.T) {
	q := newQueue(4, 2)
	q.push(jobWithKey("j-1", "SHA3-224", "byte", false))
	q.push(jobWithKey("j-2", "SHA3-224", "byte", false))

	low := jobWithKey("j-3", "SHA3-224", "byte", false)
	if err := q.push(low); !errors.Is(err, ErrQueueShed) {
		t.Fatalf("low-priority push above watermark = %v, want ErrQueueShed", err)
	}
	high := jobWithKey("j-4", "SHA3-224", "byte", false)
	high.Spec.Priority = 1
	if err := q.push(high); err != nil {
		t.Fatalf("high-priority push above watermark = %v, want accepted", err)
	}
	neg := jobWithKey("j-5", "SHA3-224", "byte", false)
	neg.Spec.Priority = -5
	if err := q.push(neg); !errors.Is(err, ErrQueueShed) {
		t.Fatalf("negative-priority push above watermark = %v, want ErrQueueShed", err)
	}
	// The hard bound still applies to high priority.
	for i := 0; i < 2; i++ {
		j := jobWithKey("j-x", "SHA3-224", "byte", false)
		j.Spec.Priority = 9
		if err := q.push(j); i == 0 && err != nil {
			t.Fatalf("high-priority push at depth 3/4 = %v", err)
		} else if i == 1 && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("high-priority push at full depth = %v, want ErrQueueFull", err)
		}
	}
}

// TestQueueRequeueBypassesWatermark: requeue is for already-accepted
// work (restart resume, retry release, lease steals) — it ignores both
// the shed watermark and the depth bound, but still refuses once the
// queue is closed so a draining daemon leaves jobs persisted.
func TestQueueRequeueBypassesWatermark(t *testing.T) {
	q := newQueue(2, 1)
	q.push(jobWithKey("j-1", "SHA3-224", "byte", false))
	for i := 0; i < 3; i++ {
		if err := q.requeue(jobWithKey("j-r", "SHA3-224", "byte", false)); err != nil {
			t.Fatalf("requeue %d over depth/watermark = %v, want accepted", i, err)
		}
	}
	if q.len() != 4 {
		t.Fatalf("queue len = %d, want 4", q.len())
	}
	q.close()
	if err := q.requeue(jobWithKey("j-z", "SHA3-224", "byte", false)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("requeue after close = %v, want ErrQueueClosed", err)
	}
}

// TestQueueCloseWakesWaiter: a popper blocked on an empty queue returns
// promptly when the queue closes (the drain path).
func TestQueueCloseWakesWaiter(t *testing.T) {
	q := newQueue(2, 0)
	done := make(chan bool)
	go func() {
		_, ok := q.popBatch(1)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("popBatch returned ok=true from a closed empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popBatch still blocked after close")
	}
}
