package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// inconsistentSpec builds a deterministic, quickly-refutable job: the
// "faulty" digests are digests of unrelated messages, so no in-model
// fault explains them and the solver proves Inconsistent. Relaxed
// (unknown-position) refutations are much slower than known-position
// ones, so tests lean on kp=true shapes for bulk jobs.
func inconsistentSpec(mode keccak.Mode, model string, kp bool, salt string) JobSpec {
	s := JobSpec{
		Mode:          mode.String(),
		Model:         model,
		CorrectDigest: hex.EncodeToString(keccak.Sum(mode, []byte("daemon test "+salt))),
		FaultyDigests: []string{
			hex.EncodeToString(keccak.Sum(mode, []byte("bogus one "+salt))),
			hex.EncodeToString(keccak.Sum(mode, []byte("bogus two "+salt))),
		},
	}
	if kp {
		s.KnownPosition = true
		s.Windows = []int{0, 1}
	}
	return s
}

// httpSubmit posts a spec and decodes the expected-status response.
func httpSubmit(t *testing.T, base string, spec JobSpec) (*Job, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j, resp.StatusCode
}

// httpJob fetches one job snapshot.
func httpJob(t *testing.T, base, id string) *Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %d", id, resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j
}

// waitDone polls until every listed job reaches a terminal state.
func waitDone(t *testing.T, base string, ids []string, timeout time.Duration) map[string]*Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	out := make(map[string]*Job)
	for time.Now().Before(deadline) {
		finished := 0
		for _, id := range ids {
			j := httpJob(t, base, id)
			out[id] = j
			if terminal(j.State) {
				finished++
			}
		}
		if finished == len(ids) {
			return out
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("jobs not finished within %v: %+v", timeout, out)
	return nil
}

// normalize strips the fields that legitimately differ between two
// runs of the same spec: wall-clock timing and scheduling history
// (attempt counts, backoff stamps, and the error/checkpoint left by
// attempts that later retried — all scheduling, not outcome).
func normalize(j *Job) *Job {
	c := j.clone()
	c.Submitted, c.Started, c.Finished, c.NotBefore = time.Time{}, time.Time{}, time.Time{}, time.Time{}
	c.Attempts, c.Panics = 0, 0
	c.Error, c.Checkpoint = "", nil
	c.TraceID = "" // random per submission, never affects the outcome
	if c.Result != nil {
		c.Result.SolveMillis = 0
	}
	return c
}

// TestDaemonKillRestartReproducible is the crash-safety acceptance
// test: a daemon is hard-killed mid-queue (the SIGKILL test double
// suppresses all persists from the moment of death), restarted on the
// same state directory, and must finish every job — with results
// byte-identical to an uninterrupted reference daemon run.
func TestDaemonKillRestartReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	specs := []JobSpec{
		inconsistentSpec(keccak.SHA3_224, "1-bit", true, "a"),
		inconsistentSpec(keccak.SHA3_224, "1-bit", true, "b"),
		inconsistentSpec(keccak.SHA3_512, "1-bit", false, "c"), // slow relaxed refutation
		inconsistentSpec(keccak.SHA3_224, "1-bit", true, "d"),
		inconsistentSpec(keccak.SHA3_512, "1-bit", true, "e"),
		inconsistentSpec(keccak.SHA3_512, "1-bit", true, "f"),
	}
	opts := func(dir string) Options {
		return Options{StateDir: dir, Workers: 1, QueueDepth: 16}
	}
	runAll := func(dir string) (map[string]*Job, []string) {
		d, err := New(opts(dir))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(d)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + addr
		var ids []string
		for _, s := range specs {
			j, code := httpSubmit(t, base, s)
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d", code)
			}
			ids = append(ids, j.ID)
		}
		jobs := waitDone(t, base, ids, 5*time.Minute)
		srv.Close()
		d.Drain()
		return jobs, ids
	}

	// Reference: uninterrupted run.
	want, ids := runAll(t.TempDir())

	// Interrupted run: same specs, killed once two jobs are done.
	dir := t.TempDir()
	d, err := New(opts(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for i, s := range specs {
		j, code := httpSubmit(t, base, s)
		if code != http.StatusAccepted || j.ID != ids[i] {
			t.Fatalf("submit %d: code %d id %s, want %s", i, code, j.ID, ids[i])
		}
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("never reached two finished jobs")
		}
		finished := 0
		for _, j := range d.Jobs() {
			if j.State == StateDone {
				finished++
			}
		}
		if finished >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.Kill()
	srv.Close()

	// The kill must have landed mid-queue: the state directory still
	// holds unfinished records.
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	unfinished := 0
	for _, j := range onDisk {
		if !terminal(j.State) {
			unfinished++
		}
	}
	if unfinished == 0 {
		t.Fatal("kill landed after all jobs finished; the test lost its race window")
	}
	t.Logf("killed with %d unfinished jobs on disk", unfinished)

	// Restart on the same directory: every job must reach done.
	d2, err := New(opts(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(d2)
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base2 := "http://" + addr2
	got := waitDone(t, base2, ids, 5*time.Minute)

	for _, id := range ids {
		g, w := normalize(got[id]), normalize(want[id])
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Errorf("job %s diverges after kill+restart:\n  got  %s\n  want %s", id, gj, wj)
		}
		if g.State != StateDone || g.Result == nil || g.Result.Status != "inconsistent" {
			t.Errorf("job %s: state %s result %+v, want done/inconsistent", id, g.State, g.Result)
		}
		if !g.Result.Batched {
			t.Errorf("job %s was not template-batched", id)
		}
	}

	// The event tail survives the kill and records the job lifecycle.
	resp, err := http.Get(base2 + "/v1/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := readAll(resp)
	if !bytes.Contains(tail, []byte("job.start")) || !bytes.Contains(tail, []byte("job.finish")) {
		t.Errorf("event tail missing lifecycle events: %q", tail)
	}

	srv2.Close()
	d2.Drain()
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestDaemonHTTPErrors covers the client-facing failure modes without
// running any solver work.
func TestDaemonHTTPErrors(t *testing.T) {
	d, err := New(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	post := func(body string) int {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("invalid JSON: %d, want 400", code)
	}
	if code := post(`{"mode":"SHA3-9000","fault_model":"byte"}`); code != http.StatusBadRequest {
		t.Errorf("unknown mode: %d, want 400", code)
	}
	spec := inconsistentSpec(keccak.SHA3_224, "byte", true, "x")
	spec.Windows = []int{0} // wrong arity
	if _, code := httpSubmit(t, base, spec); code != http.StatusBadRequest {
		t.Errorf("bad windows: %d, want 400", code)
	}

	resp, err := http.Get(base + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if !health.OK || health.Draining {
		t.Errorf("healthz = %+v before drain", health)
	}

	d.Drain()
	if code := post("{}"); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", code)
	}
	srv.Close()
}

// TestDaemonRateLimit: a 1-token client gets 429 with Retry-After on
// its second request, while another client is unaffected.
func TestDaemonRateLimit(t *testing.T) {
	d, err := New(Options{StateDir: t.TempDir(), Rate: 1e-9, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	post := func(client string) *http.Response {
		req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader([]byte("{}")))
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// First request spends alice's only token (the spec is invalid, but
	// rate limiting is applied before parsing — a client hammering the
	// endpoint with garbage is exactly who the limiter is for).
	if resp := post("alice"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first alice request: %d, want 400", resp.StatusCode)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if resp := post("bob"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bob rate-limited by alice's bucket: %d", resp.StatusCode)
	}
	srv.Close()
	d.Drain()
}

// TestDaemonQueueBackpressure: with a tiny queue and one busy worker,
// a submit burst must see 429s instead of unbounded queueing, and the
// accepted jobs must still all finish.
func TestDaemonQueueBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	d, err := New(Options{StateDir: t.TempDir(), Workers: 1, QueueDepth: 2, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	var accepted []string
	full := 0
	for i := 0; i < 10; i++ {
		j, code := httpSubmit(t, base, inconsistentSpec(keccak.SHA3_224, "1-bit", true, fmt.Sprintf("bp%d", i)))
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, j.ID)
		case http.StatusTooManyRequests:
			full++
		default:
			t.Fatalf("submit %d: unexpected status %d", i, code)
		}
	}
	if full == 0 {
		t.Fatal("10 rapid submits against a depth-2 queue never hit 429")
	}
	waitDone(t, base, accepted, 5*time.Minute)
	srv.Close()
	d.Drain()
}

// TestDaemonGC: terminal jobs older than GCMaxAge are pruned — record,
// event tail, in-memory entry — and the reclaimed bytes are counted.
// Live jobs and young terminal jobs survive.
func TestDaemonGC(t *testing.T) {
	rec := obs.NewTrace(io.Discard, 0)
	d, err := New(Options{
		StateDir:       t.TempDir(),
		HeartbeatEvery: 20 * time.Millisecond,
		GCMaxAge:       150 * time.Millisecond,
		GCEvery:        40 * time.Millisecond,
		Recorder:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := d.Submit(inconsistentSpec(keccak.SHA3_224, "1-bit", true, "gc"), "gc-test")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, d, []string{j.ID}, time.Minute)
	if d.Job(j.ID) == nil {
		t.Fatal("job missing right after completion")
	}
	deadline := time.Now().Add(30 * time.Second)
	for d.Job(j.ID) != nil {
		if time.Now().After(deadline) {
			t.Fatal("terminal job never garbage-collected")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got, err := d.store.ReadJob(j.ID); err != nil || got != nil {
		t.Fatalf("job record survived GC: %+v, %v", got, err)
	}
	if ev, _ := d.store.ReadEvents(j.ID); ev != nil {
		t.Fatalf("event tail survived GC: %q", ev)
	}
	if n := rec.Metrics().Counter("service.gc_reclaimed_bytes").Value(); n <= 0 {
		t.Errorf("gc_reclaimed_bytes = %d, want > 0", n)
	}
	d.Drain()
}

// TestDaemonRecoveryEndToEnd drives a real recovery through the full
// service stack: a known-position byte campaign against SHA3-512,
// submitted over HTTP, must come back with the original message —
// verified independently by rehashing it to the correct digest.
func TestDaemonRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver test skipped under -race (covered natively)")
	}
	msg := []byte("service recovery end to end")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 32, 5)
	spec := JobSpec{
		Mode:          mode.String(),
		Model:         "byte",
		CorrectDigest: hex.EncodeToString(correct),
		KnownPosition: true,
		// One-shot solving sees none of the blocking clauses an incremental
		// session accumulates, so it needs a deeper candidate budget.
		MaxCandidates: 64,
	}
	for _, inj := range injs {
		spec.FaultyDigests = append(spec.FaultyDigests, hex.EncodeToString(inj.FaultyDigest))
		spec.Windows = append(spec.Windows, inj.Fault.Window)
	}

	d, err := New(Options{StateDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(d)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	j, code := httpSubmit(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	jobs := waitDone(t, base, []string{j.ID}, 10*time.Minute)
	res := jobs[j.ID].Result
	if jobs[j.ID].State != StateDone || res == nil || res.Status != "recovered" {
		t.Fatalf("job = %+v, want done/recovered", jobs[j.ID])
	}
	gotMsg, err := hex.DecodeString(res.Message)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMsg, msg) {
		t.Fatalf("recovered message %q, want %q", gotMsg, msg)
	}
	if !bytes.Equal(keccak.Sum(mode, gotMsg), correct) {
		t.Fatal("recovered message does not rehash to the correct digest")
	}
	srv.Close()
	d.Drain()
}
