package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// rateLimiter is a per-client token bucket: each client (X-Client
// header, falling back to the remote host) gets burst tokens refilled
// at rate per second. A zero rate disables limiting. Buckets are tiny
// and touched only on submit, so a plain map under one mutex is
// plenty; idle buckets are dropped once they are full again (their
// state is then indistinguishable from a fresh one).
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	// denied counts refusals over the limiter's lifetime; surfaced as
	// the ratelimit.denied event's running total and the
	// service.ratelimit_denied counter.
	denied atomic.Int64
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow consumes one token from the client's bucket. When denied, the
// returned duration is the time until the bucket refills the missing
// fraction of a token — the exact Retry-After for this client, derived
// from its own refill schedule instead of a hardcoded guess.
func (rl *rateLimiter) allow(client string) (bool, time.Duration) {
	if rl.rate <= 0 {
		return true, 0
	}
	now := time.Now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[client]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	b.last = now
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	if len(rl.buckets) > 1024 {
		rl.prune(client)
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
		rl.denied.Add(1)
		return false, wait
	}
	b.tokens--
	return true, 0
}

// deniedCount returns the lifetime refusal tally.
func (rl *rateLimiter) deniedCount() int64 { return rl.denied.Load() }

// prune drops full buckets (indistinguishable from fresh ones) except
// the one in use, bounding the map against client-name churn.
func (rl *rateLimiter) prune(keep string) {
	for c, b := range rl.buckets {
		if c == keep {
			continue
		}
		t := b.tokens + time.Since(b.last).Seconds()*rl.rate
		if t >= rl.burst {
			delete(rl.buckets, c)
		}
	}
}
