package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sha3afa/internal/campaign"
	"sha3afa/internal/obs"
)

// Store persists jobs, their event tails and their leases under one
// state directory:
//
//	<dir>/jobs/<id>.json          job record, atomic-rename on every transition
//	<dir>/jobs/<id>.flight.jsonl  flight recorder: event ring of the last
//	                              failing attempt (quarantine/panic/deadline)
//	<dir>/events/<id>.jsonl       append-only obs event tail of the job's runs
//	<dir>/leases/<id>.json        worker ownership record (lease.go)
//
// The job and lease files reuse the campaign checkpoint discipline
// (campaign.WriteJSONAtomic): a crash mid-write never leaves a torn
// record, so the restart path can trust every readable file.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the state directory.
func NewStore(dir string) (*Store, error) {
	for _, sub := range []string{"jobs", "events", "leases"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// EventsPath returns the job's JSONL event file path.
func (s *Store) EventsPath(id string) string {
	return filepath.Join(s.dir, "events", id+".jsonl")
}

// FlightPath returns the job's flight-recorder file path. It lives
// next to the job record (and therefore next to the quarantine
// checkpoint inside it) but with a suffix LoadJobs skips, so a state
// directory full of post-mortems restarts cleanly.
func (s *Store) FlightPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".flight.jsonl")
}

// SaveFlight persists the flight-recorder ring of a failing attempt as
// JSONL. Each save replaces the previous one: the file always holds
// the *last* failing attempt, the one a post-mortem wants.
func (s *Store) SaveFlight(id string, events []obs.Event) error {
	return os.WriteFile(s.FlightPath(id), obs.AppendJSONL(nil, events), 0o644)
}

// ReadFlight returns the raw flight record of a job, or nil when no
// attempt has crashed badly enough to write one.
func (s *Store) ReadFlight(id string) ([]byte, error) {
	data, err := os.ReadFile(s.FlightPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// SaveJob persists one job record atomically.
func (s *Store) SaveJob(j *Job) error {
	return campaign.WriteJSONAtomic(s.jobPath(j.ID), j)
}

// DeleteJob removes a job record (submit rollback when the queue
// rejects the job after the record was already written).
func (s *Store) DeleteJob(id string) error {
	return os.Remove(s.jobPath(id))
}

// ReadJob loads one job record, or nil when none exists (the steal
// path re-reads the record from disk rather than trusting a possibly
// stale in-memory snapshot from another daemon's lifetime).
func (s *Store) ReadJob(id string) (*Job, error) {
	data, err := os.ReadFile(s.jobPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("service: job %s: %w", id, err)
	}
	return &j, nil
}

// RemoveJob deletes a job's record and event tail, returning the bytes
// reclaimed — the unit of the age-based GC that keeps a long-lived
// state directory from accumulating every terminal job ever run.
func (s *Store) RemoveJob(id string) (int64, error) {
	var reclaimed int64
	for _, path := range []string{s.jobPath(id), s.EventsPath(id), s.FlightPath(id)} {
		fi, err := os.Stat(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return reclaimed, err
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return reclaimed, err
		}
		reclaimed += fi.Size()
	}
	return reclaimed, nil
}

// LoadJobs reads every job record, sorted by ID (submission order —
// IDs are zero-padded sequence numbers). Unreadable or torn files
// cannot exist by construction (atomic rename), but foreign files are
// skipped defensively rather than failing the whole restart.
func (s *Store) LoadJobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "jobs", e.Name()))
		if err != nil {
			return nil, err
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			continue // foreign file; jobs written by SaveJob always parse
		}
		if j.ID == "" || j.ID+".json" != e.Name() {
			continue
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}

// OpenEvents opens the job's event tail for appending. Re-runs of a
// re-queued job append to the same tail, so the file records the full
// history across daemon restarts.
func (s *Store) OpenEvents(id string) (*os.File, error) {
	return os.OpenFile(s.EventsPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadEvents returns the raw JSONL event tail of a job (empty when the
// job has not started yet).
func (s *Store) ReadEvents(id string) ([]byte, error) {
	data, err := os.ReadFile(s.EventsPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// nextSeq scans existing IDs ("j-000042") and returns the next
// sequence number, so restarted daemons never reuse an ID.
func nextSeq(jobs []*Job) int64 {
	var max int64
	for _, j := range jobs {
		var n int64
		if _, err := fmt.Sscanf(j.ID, "j-%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}
