package core

import (
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestPortfolioAttackRecoversSameState runs the end-to-end attack with
// a solver portfolio and checks it reaches the same recovered state as
// the single-solver ground truth — the acceptance gate for wiring the
// portfolio under Attack.Solve.
func TestPortfolioAttackRecoversSameState(t *testing.T) {
	if testing.Short() {
		t.Skip("attack smoke test skipped in -short mode")
	}
	msg := []byte("portfolio smoke message")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 4321)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	// Pin the member count: the portfolio path must be exercised even
	// on a single-core machine (goroutines still interleave), and big
	// machines must not inflate the test cost.
	cfg := DefaultConfig(mode, fault.Byte)
	cfg.Portfolio = 3
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		switch res.Status {
		case Recovered:
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("portfolio attack recovered wrong state")
			}
			got, ok := atk.ExtractMessage(res.ChiInput)
			if !ok || string(got) != string(msg) {
				t.Fatalf("message extraction failed: ok=%v got=%q", ok, got)
			}
			stats := atk.SolverStats()
			if len(stats) != cfg.Portfolio {
				t.Fatalf("SolverStats reports %d members, want %d", len(stats), cfg.Portfolio)
			}
			var conflicts int64
			for _, st := range stats {
				conflicts += st.Stats.Conflicts
			}
			if conflicts == 0 {
				t.Fatal("no member did any work")
			}
			t.Logf("portfolio recovery after %d faults; member stats:", i+1)
			for _, st := range stats {
				t.Logf("  %s", st)
			}
			return
		case Inconsistent:
			t.Fatal("constraints inconsistent under portfolio backend")
		}
	}
	t.Fatalf("not recovered after %d faults", len(injs))
}

// TestSolverStatsSingleBackend: the single-solver path reports exactly
// one member named "single".
func TestSolverStatsSingleBackend(t *testing.T) {
	atk := NewAttack(DefaultConfig(keccak.SHA3_512, fault.Byte))
	stats := atk.SolverStats()
	if len(stats) != 1 || stats[0].Name != "single" {
		t.Fatalf("unexpected stats for single backend: %+v", stats)
	}
}
