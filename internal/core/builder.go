package core

import (
	"fmt"

	"sha3afa/internal/cnf"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/symbolic"
)

// instance is the bookkeeping for one faulty observation: the CNF
// literals of its 1600 difference bits and of its window selectors, so
// the recovered model can be decoded back into a concrete fault.
type instance struct {
	deltaLits []int
	selLits   []int
}

// Builder accumulates the algebraic system: a shared symbolic unknown
// α (the χ input of round 22), one constraint block for the correct
// digest, and one block per faulty digest. Everything is emitted into
// a single cnf.Formula through one hash-consed circuit, so shared
// structure (α itself, constant folding across ι) is encoded once.
type Builder struct {
	cfg  Config
	circ *symbolic.Circuit
	form *cnf.Formula
	enc  *symbolic.Encoder

	alpha     *symbolic.SymState
	alphaLits [keccak.StateBits]int

	correctAdded bool
	instances    []instance
}

// NewBuilder prepares an empty attack instance for the configuration.
func NewBuilder(cfg Config) *Builder {
	if cfg.Round != 22 {
		panic("core: only Round 22 (penultimate) is modeled")
	}
	b := &Builder{cfg: cfg}
	b.circ = symbolic.NewCircuit()
	b.form = cnf.New()
	b.enc = symbolic.NewEncoder(b.circ, b.form)
	b.alpha = symbolic.NewSymInput(b.circ)
	for i := range b.alphaLits {
		b.alphaLits[i] = b.enc.Lit(b.alpha.Bits[i])
	}
	return b
}

// Formula returns the CNF built so far (the exportable instance).
func (b *Builder) Formula() *cnf.Formula { return b.form }

// AlphaLits returns the CNF literals of the 1600 unknown state bits.
func (b *Builder) AlphaLits() []int { return b.alphaLits[:] }

// NumInstances returns how many faulty observations were encoded.
func (b *Builder) NumInstances() int { return len(b.instances) }

// digestBitsOf converts a digest to bools (state bit order).
func digestBits(digest []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = keccak.DigestBitsOf(digest, i)
	}
	return out
}

// AddCorrect encodes the fault-free computation: digest =
// Trunc(R23(ι22(χ(α)))). Must be called exactly once.
func (b *Builder) AddCorrect(digest []byte) error {
	d := b.cfg.Mode.DigestBits()
	if len(digest)*8 < d {
		return fmt.Errorf("core: digest too short: %d bytes for %s", len(digest), b.cfg.Mode)
	}
	_, err := b.addCorrect(digestBits(digest, d))
	return err
}

// addCorrect encodes the correct block. With vals == nil the digest
// bits are left open and their CNF literals returned (the template
// path: an instantiation fixes them later with unit clauses); with
// vals set they are fixed inline, interleaved with the cone encoding
// exactly the way the classic incremental path has always emitted them
// (FixAll encodes each digest bit's remaining cone immediately before
// its unit), so existing solver trajectories are preserved bit for bit.
func (b *Builder) addCorrect(vals []bool) ([]int, error) {
	if b.enc == nil {
		return nil, fmt.Errorf("core: builder is sealed (template instantiation)")
	}
	if b.correctAdded {
		return nil, fmt.Errorf("core: correct digest already added")
	}
	d := b.cfg.Mode.DigestBits()
	out := b.alpha.Clone()
	out.Chi(b.circ)
	out.Iota(22)
	out.Round(b.circ, 23)
	refs := out.DigestRefs(d)
	var lits []int
	if vals != nil {
		b.enc.FixAll(refs, vals)
	} else {
		lits = make([]int, len(refs))
		for i, r := range refs {
			lits[i] = b.enc.Lit(r)
		}
	}
	b.correctAdded = true
	return lits, nil
}

// AddFaulty encodes one faulty observation under the relaxed fault
// model: an unknown non-zero difference Δ confined to one unknown
// aligned window is XORed into the θ input of round 22, and the faulty
// digest pins the outputs. knownWindow passes the true window index
// when cfg.KnownPosition is set (the precise-model ablation); pass -1
// otherwise.
func (b *Builder) AddFaulty(faultyDigest []byte, knownWindow int) error {
	d := b.cfg.Mode.DigestBits()
	if len(faultyDigest)*8 < d {
		return fmt.Errorf("core: faulty digest too short")
	}
	_, err := b.addFaulty(digestBits(faultyDigest, d), knownWindow)
	return err
}

// addFaulty encodes one faulty block. With vals == nil the digest bits
// are left open and their literals returned, and no known-window unit
// is emitted even under cfg.KnownPosition — both are deferred to
// template instantiation (the window selector literals are recorded in
// the instance, so an instantiation can pin any window later). With
// vals set the behaviour and clause order are the classic ones.
func (b *Builder) addFaulty(vals []bool, knownWindow int) ([]int, error) {
	if b.enc == nil {
		return nil, fmt.Errorf("core: builder is sealed (template instantiation)")
	}
	d := b.cfg.Mode.DigestBits()

	// Symbolic difference at the θ input of round 22.
	delta := symbolic.NewSymInput(b.circ)

	// Fault model constraints at the CNF level.
	windows := b.cfg.Model.Windows()
	inst := instance{deltaLits: make([]int, keccak.StateBits)}
	for j := 0; j < keccak.StateBits; j++ {
		inst.deltaLits[j] = b.enc.Lit(delta.Bits[j])
	}
	inst.selLits = make([]int, windows)
	for p := 0; p < windows; p++ {
		inst.selLits[p] = b.form.NewVar()
	}
	// A set difference bit selects one of the windows covering it
	// (exactly one window for aligned models, a short disjunction for
	// the sliding-window relaxations).
	for j := 0; j < keccak.StateBits; j++ {
		cover := b.cfg.Model.WindowCover(j)
		clause := make([]int, 0, len(cover)+1)
		clause = append(clause, -inst.deltaLits[j])
		for _, p := range cover {
			clause = append(clause, inst.selLits[p])
		}
		b.form.AddClause(clause...)
	}
	// At most one window is faulted, and the fault is non-zero.
	b.form.AtMostOne(inst.selLits)
	b.form.AddClause(inst.deltaLits...)
	if b.cfg.KnownPosition && vals != nil {
		if knownWindow < 0 || knownWindow >= windows {
			return nil, fmt.Errorf("core: KnownPosition set but window %d invalid", knownWindow)
		}
		b.form.Unit(inst.selLits[knownWindow])
	}

	// Faulty computation: the θ input of round 22 becomes S ⊕ Δ, so
	// the χ input becomes α ⊕ L(Δ).
	lDelta := delta.Clone()
	lDelta.LinearLayer(b.circ)
	out := b.alpha.Xor(b.circ, lDelta)
	out.Chi(b.circ)
	out.Iota(22)
	out.Round(b.circ, 23)
	refs := out.DigestRefs(d)
	var lits []int
	if vals != nil {
		b.enc.FixAll(refs, vals)
	} else {
		lits = make([]int, len(refs))
		for i, r := range refs {
			lits[i] = b.enc.Lit(r)
		}
	}

	b.instances = append(b.instances, inst)
	return lits, nil
}

// DecodeAlpha reads the recovered χ input of round 22 from a model.
func (b *Builder) DecodeAlpha(model []bool) keccak.State {
	var s keccak.State
	for i, l := range b.alphaLits {
		v := model[abs(l)]
		if l < 0 {
			v = !v
		}
		if v {
			s.SetBit(i, true)
		}
	}
	return s
}

// DecodeFault reads the recovered fault of instance k from a model.
func (b *Builder) DecodeFault(model []bool, k int) (RecoveredFault, error) {
	if k < 0 || k >= len(b.instances) {
		return RecoveredFault{}, fmt.Errorf("core: instance %d out of range", k)
	}
	inst := b.instances[k]
	var delta keccak.State
	for j, l := range inst.deltaLits {
		v := model[abs(l)]
		if l < 0 {
			v = !v
		}
		if v {
			delta.SetBit(j, true)
		}
	}
	if delta.IsZero() {
		return RecoveredFault{Silent: true}, nil
	}
	f, err := fault.FaultFromDelta(b.cfg.Model, &delta)
	if err != nil {
		return RecoveredFault{}, fmt.Errorf("core: model violates fault model: %v", err)
	}
	return RecoveredFault{Fault: f}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
