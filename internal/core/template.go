package core

import (
	"context"
	"fmt"
	"sync"

	"sha3afa/internal/cnf"
	"sha3afa/internal/keccak"
)

// Template is a pre-encoded attack skeleton for one (mode, fault
// model, position knowledge) shape. The symbolic two-round system and
// its Tseitin CNF are identical for every attack of that shape — only
// the digest constants (and, under KnownPosition, the window units)
// differ, and those enter the formula purely as unit clauses. A
// template therefore encodes the correct block and up to Capacity()
// faulty blocks once, with the digest bits left open, and records each
// block's digest literals plus the clause/variable watermark it ends
// at. Instantiate then stamps out a ready-to-solve Attack by cloning
// the first k blocks of the frozen CNF (one flat memcpy) and fixing
// the open literals with the observation's concrete digests — the
// whole symbolic walk, hash-consing and gadget emission are skipped.
//
// This is the amortization the service batcher leans on: jobs queued
// under the same (mode, fault-model) key share one template, so a
// batch pays the encode phase once instead of once per job.
//
// A Template is safe for concurrent use; it grows lazily (EnsureCapacity)
// and never shrinks. Guarded attacks cannot be templated: their
// activation guards are allocated per observation at AddFaulty time by
// the Attack layer, which the template path bypasses.
type Template struct {
	cfg Config

	mu          sync.Mutex
	b           *Builder
	correctLits []int
	blocks      []templateBlock
}

// templateBlock is the watermark after one encoded faulty block.
type templateBlock struct {
	digestLits []int
	clauses    int // formula clause count once this block is encoded
	vars       int // formula variable count once this block is encoded
}

// NewTemplate encodes the shared skeleton for cfg's shape: the correct
// block only; faulty capacity is grown on demand. Only cfg.Mode,
// cfg.Model, cfg.KnownPosition and cfg.Round shape the template —
// solver options, portfolio width, candidate budgets and recorders are
// supplied per job at Instantiate time.
func NewTemplate(cfg Config) (*Template, error) {
	if cfg.Guarded {
		return nil, fmt.Errorf("core: guarded attacks cannot share a template (per-observation guards are allocated outside the builder)")
	}
	t := &Template{cfg: cfg, b: NewBuilder(cfg)}
	lits, err := t.b.addCorrect(nil)
	if err != nil {
		return nil, err
	}
	t.correctLits = lits
	return t, nil
}

// Capacity returns how many faulty blocks are currently encoded.
func (t *Template) Capacity() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.blocks)
}

// EnsureCapacity grows the template to at least k faulty blocks.
func (t *Template) EnsureCapacity(k int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureLocked(k)
}

func (t *Template) ensureLocked(k int) error {
	for len(t.blocks) < k {
		lits, err := t.b.addFaulty(nil, -1)
		if err != nil {
			return err
		}
		t.blocks = append(t.blocks, templateBlock{
			digestLits: lits,
			clauses:    t.b.form.NumClauses(),
			vars:       t.b.form.NumVars(),
		})
	}
	return nil
}

// Instantiate stamps out a ready Attack for one observation set:
// correct digest, len(faulty) faulty digests, and — iff the template
// shape has KnownPosition — one true window index per observation.
// cfg carries the per-job tuning (solver options, portfolio,
// preprocessing, candidate budget, recorder); its structural fields
// must match the template's shape. The returned Attack is sealed: it
// solves, decodes and extracts like any other, but accepts no further
// observations (AddCorrect/AddFaulty report an error).
func (t *Template) Instantiate(cfg Config, correct []byte, faulty [][]byte, windows []int) (*Attack, error) {
	if cfg.Mode != t.cfg.Mode || cfg.Model != t.cfg.Model ||
		cfg.KnownPosition != t.cfg.KnownPosition || cfg.Round != t.cfg.Round {
		return nil, fmt.Errorf("core: config shape (%s, %s, known=%v, round %d) does not match template (%s, %s, known=%v, round %d)",
			cfg.Mode, cfg.Model, cfg.KnownPosition, cfg.Round,
			t.cfg.Mode, t.cfg.Model, t.cfg.KnownPosition, t.cfg.Round)
	}
	if cfg.Guarded {
		return nil, fmt.Errorf("core: guarded attacks cannot be instantiated from a template")
	}
	d := t.cfg.Mode.DigestBits()
	if len(correct)*8 < d {
		return nil, fmt.Errorf("core: digest too short: %d bytes for %s", len(correct), t.cfg.Mode)
	}
	k := len(faulty)
	if k == 0 {
		return nil, fmt.Errorf("core: no faulty digests to instantiate")
	}
	for i, fd := range faulty {
		if len(fd)*8 < d {
			return nil, fmt.Errorf("core: faulty digest %d too short", i)
		}
	}
	if t.cfg.KnownPosition {
		if len(windows) != k {
			return nil, fmt.Errorf("core: KnownPosition template needs %d windows, got %d", k, len(windows))
		}
		for i, w := range windows {
			if w < 0 || w >= t.cfg.Model.Windows() {
				return nil, fmt.Errorf("core: window %d of observation %d out of range", w, i)
			}
		}
	} else if len(windows) != 0 {
		return nil, fmt.Errorf("core: windows supplied but template is relaxed-position")
	}

	t.mu.Lock()
	if err := t.ensureLocked(k); err != nil {
		t.mu.Unlock()
		return nil, err
	}
	// Snapshot under the lock: a concurrent EnsureCapacity may append to
	// (and reallocate) the formula's clause list at any time, so the
	// prefix clone and the per-block literal slices are taken here. The
	// literal slices themselves are append-only history — safe to share.
	last := t.blocks[k-1]
	form := t.b.form.ClonePrefix(last.clauses, last.vars)
	instances := append([]instance(nil), t.b.instances[:k]...)
	correctLits := t.correctLits
	blocks := append([]templateBlock(nil), t.blocks[:k]...)
	alphaLits := t.b.alphaLits
	t.mu.Unlock()

	// Fix the open digest bits — the only per-job constants — and, for
	// KnownPosition shapes, pin each observation's true window.
	fixDigestUnits(form, correctLits, correct)
	for i, fd := range faulty {
		fixDigestUnits(form, blocks[i].digestLits, fd)
		if t.cfg.KnownPosition {
			form.Unit(instances[i].selLits[windows[i]])
		}
	}

	b := &Builder{
		cfg:          cfg,
		form:         form,
		alphaLits:    alphaLits,
		correctAdded: true,
		instances:    instances,
	}
	return &Attack{
		cfg:           cfg,
		builder:       b,
		solver:        newSolveBackend(cfg),
		ctx:           context.Background(),
		correctDigest: append([]byte(nil), correct...),
	}, nil
}

// fixDigestUnits emits the unit clauses pinning a block's open digest
// literals to a concrete digest.
func fixDigestUnits(f *cnf.Formula, lits []int, digest []byte) {
	for i, l := range lits {
		if keccak.DigestBitsOf(digest, i) {
			f.Unit(l)
		} else {
			f.Unit(-l)
		}
	}
}
