package core

import (
	"testing"
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestSmokeUnalignedByteFault exercises the sliding-window relaxation
// end to end: the solver must locate the fault among 1593 unaligned
// windows while recovering the state.
func TestSmokeUnalignedByteFault(t *testing.T) {
	if testing.Short() {
		t.Skip("attack smoke test skipped in -short mode")
	}
	msg := []byte("unaligned relaxed model")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.UnalignedByte, 22, 45, 99)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	atk := NewAttack(DefaultConfig(mode, fault.UnalignedByte))
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Recovered {
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("recovered wrong state under unaligned model")
			}
			t.Logf("unaligned-byte recovery after %d faults", i+1)
			return
		}
		if res.Status == Inconsistent {
			t.Fatal("unaligned encoding inconsistent")
		}
	}
	t.Fatalf("not recovered after %d unaligned faults", len(injs))
}

// TestSmokeSHA3_512ByteFault is the end-to-end sanity check: SHA3-512
// under single-byte faults must recover the full χ input of round 22
// and the message with a handful of faults.
func TestSmokeSHA3_512ByteFault(t *testing.T) {
	if testing.Short() {
		t.Skip("attack smoke test skipped in -short mode")
	}
	msg := []byte("the quick brown fox jumps over the lazy dog")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 1234)

	cfg := DefaultConfig(mode, fault.Byte)
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	start := time.Now()
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("fault %d: status=%s vars=%d clauses=%d solve=%v elapsed=%v",
			i+1, res.Status, res.Vars, res.Clauses, res.SolveTime, time.Since(start))
		switch res.Status {
		case Recovered:
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("recovered state differs from ground truth")
			}
			got, ok := atk.ExtractMessage(res.ChiInput)
			if !ok || string(got) != string(msg) {
				t.Fatalf("message extraction failed: ok=%v got=%q", ok, got)
			}
			return
		case Inconsistent:
			t.Fatal("constraints inconsistent — encoding bug")
		case BudgetExceeded:
			t.Fatal("solver budget exceeded")
		}
	}
	t.Fatalf("not recovered after %d faults", len(injs))
}
