package core

import (
	"context"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// runGuardedEviction drives a byte-model attack in which one
// observation is deliberately out-of-model (a digest of an unrelated
// message) among genuine ones: the guarded attack must evict exactly
// the guilty observation and still recover the ground-truth state.
func runGuardedEviction(t *testing.T, portfolio int, knownPos bool) {
	t.Helper()
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	msg := []byte("guarded eviction round trip")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 11)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	const guilty = 2
	injs[guilty].FaultyDigest = keccak.Sum(mode, []byte("wildly out of model"))

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.Guarded = true
	cfg.Portfolio = portfolio
	cfg.KnownPosition = knownPos
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		if (i+1)%3 != 0 { // solve every third fault to keep the test fast
			continue
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Inconsistent {
			t.Fatalf("guarded attack died Inconsistent after %d faults (evicted %v)",
				i+1, res.EvictedFaults)
		}
		if res.Status != Recovered {
			continue
		}
		if !res.ChiInput.Equal(&truth) {
			t.Fatal("guarded attack recovered wrong state")
		}
		if len(res.EvictedFaults) != 1 || res.EvictedFaults[0] != guilty {
			t.Fatalf("evicted %v, want exactly [%d]", res.EvictedFaults, guilty)
		}
		// The corrupted observation must be flagged, the survivors decodable.
		rfs, err := atk.RecoveredFaults()
		if err != nil {
			t.Fatal(err)
		}
		if !rfs[guilty].Evicted {
			t.Fatalf("observation %d not flagged Evicted: %+v", guilty, rfs[guilty])
		}
		for k, rf := range rfs {
			if k != guilty && rf.Evicted {
				t.Fatalf("innocent observation %d flagged Evicted", k)
			}
		}
		t.Logf("recovered after %d faults, evicted %v", i+1, res.EvictedFaults)
		return
	}
	t.Fatalf("not recovered within %d faults (evicted so far: %v)", len(injs), atk.Evicted())
}

// TestGuardedEvictionSingleSolver: Inconsistent→blame→evict round trip
// on the classic single solver, under the full relaxed-position search.
func TestGuardedEvictionSingleSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	runGuardedEviction(t, 0, false)
}

// TestGuardedEvictionPortfolio: the same round trip with the failed
// core plumbed through the portfolio backend. What this variant adds
// over the single-solver one is the FailedAssumptions path through the
// winning portfolio member — that plumbing is position-model-agnostic,
// so the variant runs with known positions: three members racing on
// one core triple the solver work, and the relaxed search is already
// covered above.
func TestGuardedEvictionPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	runGuardedEviction(t, 3, true)
}

// TestGuardedDudObservation: a dud injection (faulty digest identical
// to the correct one) violates the non-zero-difference constraint and
// must be evicted rather than poisoning the attack.
func TestGuardedDudObservation(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	msg := []byte("dud injection")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 13)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	const guilty = 0
	injs[guilty].FaultyDigest = append([]byte(nil), correct...)

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.Guarded = true
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Inconsistent {
			t.Fatalf("dud observation not recovered from: evicted %v", res.EvictedFaults)
		}
		if res.Status == Recovered {
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("recovered wrong state")
			}
			if len(res.EvictedFaults) != 1 || res.EvictedFaults[0] != guilty {
				t.Fatalf("evicted %v, want exactly [%d]", res.EvictedFaults, guilty)
			}
			return
		}
	}
	t.Fatal("not recovered despite dud eviction")
}

// TestGuardedMaxEvictionsCap: with a zero-tolerance cap the first
// blame attempt must fail closed into Inconsistent.
func TestGuardedMaxEvictionsCap(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, []byte("capped"), fault.Byte, 22, 3, 17)
	// Two corrupted observations against a cap of one: the blame loop
	// must evict at most one and then refuse.
	injs[1].FaultyDigest = keccak.Sum(mode, []byte("noise"))
	injs[2].FaultyDigest = keccak.Sum(mode, []byte("more noise"))

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.Guarded = true
	cfg.MaxEvictions = 1
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
	}
	res, err := atk.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Inconsistent {
		t.Fatalf("status = %s, want inconsistent once the eviction cap is hit", res.Status)
	}
	if len(atk.Evicted()) > 1 {
		t.Fatalf("evicted %v exceeds cap of 1", atk.Evicted())
	}
}
