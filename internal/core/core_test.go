package core

import (
	"bytes"
	"testing"

	"sha3afa/internal/cnf"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/sat"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(keccak.SHA3_256, fault.Byte)
	if cfg.Round != 22 || cfg.Mode != keccak.SHA3_256 || cfg.Model != fault.Byte {
		t.Fatalf("DefaultConfig wrong: %+v", cfg)
	}
	if cfg.MaxCandidates <= 0 || cfg.SolverOptions.Timeout <= 0 {
		t.Fatal("DefaultConfig missing budgets")
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Ambiguous: "ambiguous", Recovered: "recovered",
		Inconsistent: "inconsistent", BudgetExceeded: "budget-exceeded",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

func TestBuilderRejectsWrongRound(t *testing.T) {
	cfg := DefaultConfig(keccak.SHA3_256, fault.Byte)
	cfg.Round = 21
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for round != 22")
		}
	}()
	NewBuilder(cfg)
}

func TestBuilderDoubleCorrect(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_256, fault.Byte))
	digest := keccak.Sum(keccak.SHA3_256, []byte("x"))
	if err := b.AddCorrect(digest); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCorrect(digest); err == nil {
		t.Fatal("second AddCorrect accepted")
	}
}

func TestBuilderShortDigest(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_512, fault.Byte))
	if err := b.AddCorrect(make([]byte, 10)); err == nil {
		t.Fatal("short digest accepted")
	}
	if err := b.AddFaulty(make([]byte, 10), -1); err == nil {
		t.Fatal("short faulty digest accepted")
	}
}

func TestBuilderKnownPositionValidation(t *testing.T) {
	cfg := DefaultConfig(keccak.SHA3_256, fault.Byte)
	cfg.KnownPosition = true
	b := NewBuilder(cfg)
	digest := keccak.Sum(keccak.SHA3_256, []byte("x"))
	if err := b.AddFaulty(digest, -1); err == nil {
		t.Fatal("KnownPosition with window -1 accepted")
	}
	if err := b.AddFaulty(digest, 200); err == nil {
		t.Fatal("KnownPosition with out-of-range window accepted")
	}
	if err := b.AddFaulty(digest, 7); err != nil {
		t.Fatal(err)
	}
	if b.NumInstances() != 1 {
		t.Fatal("instance not recorded")
	}
}

func TestBuilderCNFGrowth(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_224, fault.Word16))
	digest := keccak.Sum(keccak.SHA3_224, []byte("y"))
	if err := b.AddCorrect(digest); err != nil {
		t.Fatal(err)
	}
	afterCorrect := b.Formula().NumClauses()
	if afterCorrect == 0 {
		t.Fatal("correct instance produced no clauses")
	}
	if err := b.AddFaulty(digest, -1); err != nil {
		t.Fatal(err)
	}
	if b.Formula().NumClauses() <= afterCorrect {
		t.Fatal("faulty instance produced no clauses")
	}
	// Alpha literals stable and within variable range.
	for _, l := range b.AlphaLits() {
		if l <= 0 || l > b.Formula().NumVars() {
			t.Fatalf("alpha literal %d out of range", l)
		}
	}
}

func TestDecodeAlphaRoundTrip(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_256, fault.Byte))
	model := make([]bool, b.Formula().NumVars()+1)
	var want keccak.State
	for i, l := range b.AlphaLits() {
		if i%3 == 0 {
			want.SetBit(i, true)
			model[l] = true
		}
	}
	got := b.DecodeAlpha(model)
	if !got.Equal(&want) {
		t.Fatal("DecodeAlpha round trip failed")
	}
}

func TestDecodeFaultOutOfRange(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_256, fault.Byte))
	if _, err := b.DecodeFault(nil, 0); err == nil {
		t.Fatal("DecodeFault accepted missing instance")
	}
}

func TestUnpad(t *testing.T) {
	ds := byte(0x06)
	cases := []struct {
		name  string
		block []byte
		want  []byte
		ok    bool
	}{
		{"empty msg", []byte{0x06, 0, 0, 0x80}, []byte{}, true},
		{"one byte", []byte{0xAB, 0x06, 0, 0x80}, []byte{0xAB}, true},
		{"full-1", []byte{0xAB, 0xCD, 0xEF, 0x86}, []byte{0xAB, 0xCD, 0xEF}, true},
		{"no final bit", []byte{0x06, 0, 0, 0}, nil, false},
		{"garbage pad", []byte{0xAB, 0x05, 0, 0x80}, nil, false},
		{"no ds byte", []byte{0, 0, 0, 0x80}, nil, false},
		{"msg contains 06", []byte{0x06, 0x06, 0, 0x80}, []byte{0x06}, true},
	}
	for _, c := range cases {
		got, ok := unpad(c.block, ds)
		if ok != c.ok {
			t.Errorf("%s: ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && !bytes.Equal(got, c.want) {
			t.Errorf("%s: msg = %x, want %x", c.name, got, c.want)
		}
	}
}

func TestExtractMessageGroundTruth(t *testing.T) {
	for _, mode := range keccak.FixedModes {
		msg := []byte("extraction target for " + mode.String())
		cfg := DefaultConfig(mode, fault.Byte)
		atk := NewAttack(cfg)
		atk.AddCorrect(keccak.Sum(mode, msg))
		chi := keccak.TraceHash(mode, msg).ChiInput(22)
		got, ok := atk.ExtractMessage(chi)
		if !ok || !bytes.Equal(got, msg) {
			t.Fatalf("%s: ExtractMessage failed: ok=%v got=%q", mode, ok, got)
		}
		if !atk.ValidateCandidate(chi) {
			t.Fatalf("%s: ground truth does not validate", mode)
		}
		// A perturbed state must not validate.
		bad := chi
		bad.FlipBit(1234)
		if atk.ValidateCandidate(bad) {
			t.Fatalf("%s: wrong state validated", mode)
		}
	}
}

func TestExtractMessageSHAKEModes(t *testing.T) {
	// The XOF modes use a different domain byte (0x1F); extraction
	// must honor it.
	for _, mode := range []keccak.Mode{keccak.SHAKE128, keccak.SHAKE256} {
		msg := []byte("xof extraction " + mode.String())
		atk := NewAttack(DefaultConfig(mode, fault.Byte))
		atk.AddCorrect(keccak.Sum(mode, msg))
		chi := keccak.TraceHash(mode, msg).ChiInput(22)
		got, ok := atk.ExtractMessage(chi)
		if !ok || !bytes.Equal(got, msg) {
			t.Fatalf("%s: SHAKE extraction failed", mode)
		}
		if !atk.ValidateCandidate(chi) {
			t.Fatalf("%s: SHAKE ground truth does not validate", mode)
		}
	}
}

func TestBuilderUnalignedModelShape(t *testing.T) {
	// The sliding-window model must produce cover clauses mentioning
	// several selectors.
	b := NewBuilder(DefaultConfig(keccak.SHA3_512, fault.UnalignedByte))
	digest := keccak.Sum(keccak.SHA3_512, []byte("u"))
	if err := b.AddCorrect(digest); err != nil {
		t.Fatal(err)
	}
	before := b.Formula().NumClauses()
	if err := b.AddFaulty(digest, -1); err != nil {
		t.Fatal(err)
	}
	if b.Formula().NumClauses() <= before {
		t.Fatal("unaligned instance produced no clauses")
	}
}

func TestSolveBeforeCorrectErrors(t *testing.T) {
	atk := NewAttack(DefaultConfig(keccak.SHA3_256, fault.Byte))
	if _, err := atk.Solve(); err == nil {
		t.Fatal("Solve before AddCorrect accepted")
	}
}

func TestRecoveredFaultsBeforeModelErrors(t *testing.T) {
	atk := NewAttack(DefaultConfig(keccak.SHA3_256, fault.Byte))
	if _, err := atk.RecoveredFaults(); err == nil {
		t.Fatal("RecoveredFaults before any model accepted")
	}
	if _, err := atk.ProbeDetermined([]int{0}); err == nil {
		t.Fatal("ProbeDetermined before any model accepted")
	}
}

// TestKnownPositionRecovery: with the precise fault-position variant
// and a concentrated campaign, the attack should need few faults and
// stay fast — a cheap end-to-end exercise of the whole pipeline.
func TestKnownPositionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	msg := []byte("known position attack")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 5)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.KnownPosition = true
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Recovered {
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("recovered wrong state")
			}
			t.Logf("known-position recovery after %d faults", i+1)
			// Fault identification must reproduce ground truth.
			rfs, err := atk.RecoveredFaults()
			if err != nil {
				t.Fatal(err)
			}
			for k, rf := range rfs {
				if rf.Silent || rf.Fault != injs[k].Fault {
					t.Fatalf("fault %d misidentified: %+v vs %+v", k, rf, injs[k].Fault)
				}
			}
			return
		}
	}
	t.Fatal("not recovered with known positions after 40 faults")
}

// TestPreprocessedAttackRecovery runs the attack with cfg.Preprocess
// set, so every clause batch passes through the SatELite-style
// simplifier before reaching the solver (see Attack.sync). Recovery
// must still converge to the ground-truth state: preprocessing may
// only strengthen the formula, never change its models over α.
func TestPreprocessedAttackRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	msg := []byte("preprocessed attack")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 40, 7)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.KnownPosition = true // keep the instance small: this test is about the preprocess path
	cfg.Preprocess = true
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		res, err := atk.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == Recovered {
			if !res.ChiInput.Equal(&truth) {
				t.Fatal("preprocessed attack recovered wrong state")
			}
			t.Logf("preprocessed recovery after %d faults", i+1)
			return
		}
	}
	t.Fatal("not recovered with preprocessing after 40 faults")
}

func TestInconsistentObservations(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	// A "faulty digest" unrelated to the correct one under a 1-bit
	// model is (with overwhelming probability) outside the fault model
	// — the attack must report Inconsistent, not fabricate a state.
	mode := keccak.SHA3_512
	cfg := DefaultConfig(mode, fault.SingleBit)
	atk := NewAttack(cfg)
	atk.AddCorrect(keccak.Sum(mode, []byte("real message")))
	atk.AddFaulty(keccak.Sum(mode, []byte("completely unrelated")), -1)
	res, err := atk.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Inconsistent {
		t.Fatalf("status = %s, want inconsistent", res.Status)
	}
}

func TestFormulaExportParsesBack(t *testing.T) {
	b := NewBuilder(DefaultConfig(keccak.SHA3_224, fault.Byte))
	digest := keccak.Sum(keccak.SHA3_224, []byte("export"))
	b.AddCorrect(digest)
	b.AddFaulty(digest, -1)
	var buf bytes.Buffer
	if err := b.Formula().WriteDIMACS(&buf, "test instance"); err != nil {
		t.Fatal(err)
	}
	back, err := cnf.ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumClauses() != b.Formula().NumClauses() {
		t.Fatal("DIMACS round trip changed clause count")
	}
}

func TestBudgetExceeded(t *testing.T) {
	mode := keccak.SHA3_224
	msg := []byte("budget")
	correct, injs := fault.Campaign(mode, msg, fault.Word16, 22, 1, 3)
	cfg := DefaultConfig(mode, fault.Word16)
	cfg.SolverOptions = sat.Options{MaxConflicts: 1}
	atk := NewAttack(cfg)
	atk.AddCorrect(correct)
	atk.AddInjection(injs[0])
	res, err := atk.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != BudgetExceeded {
		t.Fatalf("status = %s, want budget-exceeded", res.Status)
	}
}
