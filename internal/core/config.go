// Package core implements the paper's contribution: algebraic fault
// analysis (AFA) of SHA-3. It turns (correct digest, faulty digests)
// observations into a CNF instance over the unknown χ input of the
// penultimate round (round 22) plus per-fault difference variables,
// solves it with the CDCL solver, and recovers the full 1600-bit
// internal state — and from it the message block.
//
// The encoding follows the modeling trick described in DESIGN.md: the
// unknown is α = χ input of round 22, so the fault (injected at the θ
// input of round 22) enters as α ⊕ L(Δ) with L linear — one extra χ
// layer plus one round per faulty observation, instead of two rounds.
package core

import (
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/sat"
)

// Config parameterizes an attack.
type Config struct {
	Mode  keccak.Mode
	Model fault.Model
	// Round is the round whose θ input receives the fault. The paper
	// uses 22 (penultimate). Only the two final rounds are modeled, so
	// Round must be 22.
	Round int
	// KnownPosition fixes each fault's window selector to the true
	// window — the *precise* (non-relaxed) variant, used as an
	// ablation against the relaxed model.
	KnownPosition bool
	// SolverOptions tune the CDCL solver (budgets, feature ablations).
	// With Portfolio > 1 they become the base configuration the
	// portfolio presets diversify from.
	SolverOptions sat.Options
	// Portfolio races this many diversified solvers (with learned-
	// clause sharing) on every Solve call; 0 or 1 keeps the classic
	// single-threaded solver. The attack outcome is deterministic in
	// status regardless of the setting, but with Portfolio > 1 the
	// *first* satisfying model found may differ between runs, so the
	// candidate enumeration order can vary.
	Portfolio int
	// Preprocess runs the cnf package's SatELite-style simplifications
	// (unit rewriting, subsumption, self-subsuming resolution) over
	// every batch of clauses before it is pushed into the solver, so
	// the solver only ever sees the strengthened formula. Each
	// AddFaulty round's new clauses are preprocessed in isolation —
	// the simplified batch is equivalent to the original batch, so
	// incremental soundness is preserved (see Attack.sync).
	Preprocess bool
	// Guarded tags every faulty observation's clause batch with a fresh
	// activation literal and solves under assumptions. When the
	// accumulated observations turn Unsat — which for genuine in-model
	// observations is impossible, so it indicates noise (a dud
	// injection, a fault that smeared outside its window, a glitch in
	// the wrong round) — the attack reads the solver's failed-assumption
	// core, blames a minimal set of offending observations, evicts them
	// by permanently deactivating their guards, and retries with the
	// survivors instead of dying with Inconsistent. Evicted observation
	// indices are reported in Result.EvictedFaults. Without Guarded the
	// attack keeps the brittle fail-fast behaviour (one out-of-model
	// observation is terminal), which is also marginally faster because
	// observation clauses carry no extra guard literal.
	Guarded bool
	// MaxEvictions caps how many observations a guarded attack may
	// evict over its lifetime; 0 means unlimited. When the cap would be
	// exceeded the attack reports Inconsistent instead of evicting.
	MaxEvictions int
	// UniquenessCheck switches Solve to the information-theoretic
	// criterion: recovery is declared only when the SAT model is
	// provably unique. This is the probe used by the information-
	// accumulation figure. The practical attack (default) instead
	// enumerates models and validates each candidate by inverting the
	// permutation and checking the sponge capacity/padding — the extra
	// information a real attacker has, which the truncated digest
	// alone does not pin down (sparse χ/θ-cancelling perturbations of
	// the state can stay invisible in the digest).
	UniquenessCheck bool
	// MaxCandidates bounds how many SAT models Solve enumerates and
	// validates per call in the practical mode. Wrong candidates are
	// blocked permanently (they are proven wrong, not just unwanted).
	MaxCandidates int
	// Recorder, when non-nil, receives the attack's observability
	// stream: phase spans (attack.encode → attack.preprocess →
	// attack.solve → attack.decode), blame/eviction events with
	// blamed-core sizes, and — passed down to the SAT backend — solver
	// progress and portfolio win attribution. The default nil disables
	// instrumentation at the cost of one branch per emission site (see
	// internal/obs).
	Recorder obs.Recorder
}

// DefaultConfig returns the paper's setting for a given mode and model.
func DefaultConfig(mode keccak.Mode, model fault.Model) Config {
	return Config{
		Mode:          mode,
		Model:         model,
		Round:         22,
		MaxCandidates: 6,
		SolverOptions: sat.Options{Timeout: 10 * time.Minute},
	}
}

// Status classifies an attack snapshot.
type Status int

// Attack outcomes after a Solve call.
const (
	// Ambiguous: the constraints admit several states — more faults needed.
	Ambiguous Status = iota
	// Recovered: a unique (or digest-validated) state was found.
	Recovered
	// Inconsistent: no state satisfies the constraints (would indicate
	// an observation outside the fault model).
	Inconsistent
	// BudgetExceeded: the solver ran out of its conflict/time budget.
	BudgetExceeded
)

func (s Status) String() string {
	switch s {
	case Ambiguous:
		return "ambiguous"
	case Recovered:
		return "recovered"
	case Inconsistent:
		return "inconsistent"
	case BudgetExceeded:
		return "budget-exceeded"
	default:
		return "unknown"
	}
}

// Result reports one Solve call.
type Result struct {
	Status    Status
	ChiInput  keccak.State // candidate / recovered χ input of round 22
	SolveTime time.Duration
	// Candidates is how many SAT models were enumerated and validated
	// during this call (practical mode).
	Candidates int
	// CNF shape at solve time, for the size figures.
	Vars    int
	Clauses int
	// EvictedFaults lists, cumulatively, the observation indices a
	// guarded attack has quarantined as out-of-model (see
	// Config.Guarded). Always nil for unguarded attacks.
	EvictedFaults []int
}

// RecoveredFault is the solver's reconstruction of one injected fault.
type RecoveredFault struct {
	Fault fault.Fault
	// Silent marks a fault whose recovered value is zero (possible
	// only when the model's at-least-one constraint is relaxed).
	Silent bool
	// Evicted marks an observation a guarded attack quarantined as
	// out-of-model; its difference variables are unconstrained in the
	// final model, so Fault carries no information.
	Evicted bool
}
