package core

import (
	"fmt"
	"sort"
	"testing"

	"sha3afa/internal/cnf"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// clauseMultiset canonicalizes a formula's clause list for comparison:
// literals sorted within each clause, clauses sorted lexically. The
// template path emits the digest unit clauses after the cone instead
// of interleaved with it, so clause ORDER differs from the classic
// incremental path by design — the clause SET must not.
func clauseMultiset(f *cnf.Formula) []string {
	out := make([]string, 0, f.NumClauses())
	for _, c := range f.Clauses() {
		s := append([]int(nil), c...)
		sort.Ints(s)
		out = append(out, fmt.Sprint(s))
	}
	sort.Strings(out)
	return out
}

func assertSameClauseSet(t *testing.T, classic, templated *cnf.Formula) {
	t.Helper()
	if classic.NumVars() != templated.NumVars() {
		t.Fatalf("vars: classic %d, template %d", classic.NumVars(), templated.NumVars())
	}
	if classic.NumClauses() != templated.NumClauses() {
		t.Fatalf("clauses: classic %d, template %d", classic.NumClauses(), templated.NumClauses())
	}
	a, b := clauseMultiset(classic), clauseMultiset(templated)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clause multiset diverges at %d:\n classic  %s\n template %s", i, a[i], b[i])
		}
	}
}

// TestTemplateMatchesClassicCNF is the structural core of the batching
// argument: instantiating a shared template with concrete digests must
// yield exactly the clause set the classic per-job encoder builds.
func TestTemplateMatchesClassicCNF(t *testing.T) {
	mode := keccak.SHA3_224
	msg := []byte("template parity")
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 3, 9)

	for _, knownPos := range []bool{false, true} {
		cfg := DefaultConfig(mode, fault.Byte)
		cfg.KnownPosition = knownPos

		classic := NewBuilder(cfg)
		if err := classic.AddCorrect(correct); err != nil {
			t.Fatal(err)
		}
		faulty := make([][]byte, len(injs))
		windows := make([]int, len(injs))
		for i, inj := range injs {
			faulty[i] = inj.FaultyDigest
			windows[i] = inj.Fault.Window
			w := -1
			if knownPos {
				w = inj.Fault.Window
			}
			if err := classic.AddFaulty(inj.FaultyDigest, w); err != nil {
				t.Fatal(err)
			}
		}

		tpl, err := NewTemplate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var winArg []int
		if knownPos {
			winArg = windows
		}
		atk, err := tpl.Instantiate(cfg, correct, faulty, winArg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameClauseSet(t, classic.Formula(), atk.Builder().Formula())
		if got := atk.Builder().NumInstances(); got != len(injs) {
			t.Fatalf("knownPos=%v: %d instances, want %d", knownPos, got, len(injs))
		}
	}
}

// TestTemplateReinstantiation: the same template must stamp out
// identical formulas twice (no state leaks between instantiations),
// and a smaller k must reuse the grown capacity.
func TestTemplateReinstantiation(t *testing.T) {
	mode := keccak.SHA3_224
	correct, injs := fault.Campaign(mode, []byte("re-instantiate"), fault.Byte, 22, 3, 4)
	faulty := make([][]byte, len(injs))
	for i, inj := range injs {
		faulty[i] = inj.FaultyDigest
	}

	cfg := DefaultConfig(mode, fault.Byte)
	tpl, err := NewTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := tpl.Instantiate(cfg, correct, faulty, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tpl.Instantiate(cfg, correct, faulty, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameClauseSet(t, a1.Builder().Formula(), a2.Builder().Formula())

	// Shrunk instantiation: the k=1 prefix of a capacity-3 template must
	// equal a fresh classic encoding with one observation.
	small, err := tpl.Instantiate(cfg, correct, faulty[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	classic := NewBuilder(cfg)
	if err := classic.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	if err := classic.AddFaulty(faulty[0], -1); err != nil {
		t.Fatal(err)
	}
	assertSameClauseSet(t, classic.Formula(), small.Builder().Formula())
	if tpl.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", tpl.Capacity())
	}
}

// TestTemplateSealedAndValidation covers the instantiated attack's
// sealed builder and the template's input validation.
func TestTemplateSealedAndValidation(t *testing.T) {
	mode := keccak.SHA3_224
	correct, injs := fault.Campaign(mode, []byte("sealed"), fault.Byte, 22, 1, 5)

	cfg := DefaultConfig(mode, fault.Byte)
	tpl, err := NewTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tpl.Instantiate(cfg, correct, [][]byte{injs[0].FaultyDigest}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.AddCorrect(correct); err == nil {
		t.Fatal("sealed attack accepted AddCorrect")
	}
	if err := atk.AddFaulty(injs[0].FaultyDigest, -1); err == nil {
		t.Fatal("sealed attack accepted AddFaulty")
	}

	if _, err := tpl.Instantiate(cfg, correct, nil, nil); err == nil {
		t.Fatal("empty faulty set accepted")
	}
	if _, err := tpl.Instantiate(cfg, correct[:2], [][]byte{injs[0].FaultyDigest}, nil); err == nil {
		t.Fatal("short correct digest accepted")
	}
	if _, err := tpl.Instantiate(cfg, correct, [][]byte{correct[:3]}, nil); err == nil {
		t.Fatal("short faulty digest accepted")
	}
	if _, err := tpl.Instantiate(cfg, correct, [][]byte{injs[0].FaultyDigest}, []int{1}); err == nil {
		t.Fatal("windows accepted by relaxed-position template")
	}

	other := DefaultConfig(keccak.SHA3_256, fault.Byte)
	if _, err := tpl.Instantiate(other, correct, [][]byte{injs[0].FaultyDigest}, nil); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	guarded := cfg
	guarded.Guarded = true
	if _, err := NewTemplate(guarded); err == nil {
		t.Fatal("guarded template accepted")
	}
	if _, err := tpl.Instantiate(guarded, correct, [][]byte{injs[0].FaultyDigest}, nil); err == nil {
		t.Fatal("guarded instantiation accepted")
	}

	kp := cfg
	kp.KnownPosition = true
	kt, err := NewTemplate(kp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kt.Instantiate(kp, correct, [][]byte{injs[0].FaultyDigest}, nil); err == nil {
		t.Fatal("KnownPosition instantiation without windows accepted")
	}
	if _, err := kt.Instantiate(kp, correct, [][]byte{injs[0].FaultyDigest}, []int{-1}); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}

// TestTemplateSolveParity: a template-instantiated attack must reach
// the same verdicts the classic attack reaches on the same
// observations — here the cheap deterministic one: out-of-model
// observations are Inconsistent either way.
func TestTemplateSolveParity(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	mode := keccak.SHA3_512
	cfg := DefaultConfig(mode, fault.SingleBit)
	correct := keccak.Sum(mode, []byte("real message"))
	bogus := keccak.Sum(mode, []byte("completely unrelated"))

	classic := NewAttack(cfg)
	classic.AddCorrect(correct)
	classic.AddFaulty(bogus, -1)
	want, err := classic.Solve()
	if err != nil {
		t.Fatal(err)
	}

	tpl, err := NewTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := tpl.Instantiate(cfg, correct, [][]byte{bogus}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := atk.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.Status != Inconsistent {
		t.Fatalf("template status %s, classic %s, want inconsistent", got.Status, want.Status)
	}
	if got.Vars != want.Vars || got.Clauses != want.Clauses {
		t.Fatalf("instance size diverges: template %d/%d, classic %d/%d",
			got.Vars, got.Clauses, want.Vars, want.Clauses)
	}
}

// TestTemplateRecovery: full pipeline through the template path — a
// known-position byte campaign instantiated in one shot must recover
// the ground-truth state and identify the injected faults.
func TestTemplateRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	msg := []byte("template recovery")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 32, 5)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.KnownPosition = true
	// One-shot solving sees none of the blocking clauses an incremental
	// session accumulates, so it needs a deeper candidate budget.
	cfg.MaxCandidates = 64
	tpl, err := NewTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := make([][]byte, len(injs))
	windows := make([]int, len(injs))
	for i, inj := range injs {
		faulty[i] = inj.FaultyDigest
		windows[i] = inj.Fault.Window
	}
	atk, err := tpl.Instantiate(cfg, correct, faulty, windows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Recovered {
		t.Fatalf("status = %s, want recovered", res.Status)
	}
	if !res.ChiInput.Equal(&truth) {
		t.Fatal("template attack recovered wrong state")
	}
	rfs, err := atk.RecoveredFaults()
	if err != nil {
		t.Fatal(err)
	}
	for k, rf := range rfs {
		if rf.Silent || rf.Fault != injs[k].Fault {
			t.Fatalf("fault %d misidentified: %+v vs %+v", k, rf, injs[k].Fault)
		}
	}
}
