package core

import (
	"bytes"
	"fmt"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

// solveBackend is what the attack needs from a SAT engine: the
// incremental interface shared by sat.Solver and portfolio.Portfolio.
type solveBackend interface {
	AddClause(lits ...int) error
	Solve(assumptions ...int) sat.Status
	Model() []bool
}

// singleBackend wraps the classic single solver so per-solve status is
// tracked the same way the portfolio tracks it.
type singleBackend struct {
	*sat.Solver
	last sat.Status
}

func (b *singleBackend) Solve(assumptions ...int) sat.Status {
	b.last = b.Solver.Solve(assumptions...)
	return b.last
}

// Attack drives an incremental AFA session: observations stream in via
// AddCorrect/AddFaulty, Solve asks the SAT solver whether the
// accumulated algebra pins the state down, and the recovered state can
// be walked back to the message block.
type Attack struct {
	cfg     Config
	builder *Builder
	solver  solveBackend
	pushed  int // clauses already handed to the solver

	correctDigest []byte
	guards        []int // satisfied guard literals of retired blocking clauses
	lastModel     []bool
}

// NewAttack returns an empty attack session. With cfg.Portfolio > 1
// every Solve races that many diversified solvers with clause sharing;
// otherwise the classic single CDCL solver is used.
func NewAttack(cfg Config) *Attack {
	var backend solveBackend
	if cfg.Portfolio > 1 {
		backend = portfolio.New(portfolio.Options{
			Workers: cfg.Portfolio,
			Base:    cfg.SolverOptions,
		})
	} else {
		backend = &singleBackend{Solver: sat.NewWithOptions(cfg.SolverOptions)}
	}
	return &Attack{
		cfg:     cfg,
		builder: NewBuilder(cfg),
		solver:  backend,
	}
}

// Builder exposes the underlying instance builder (e.g. for DIMACS
// export of the exact CNF the solver sees).
func (a *Attack) Builder() *Builder { return a.builder }

// SolverStats reports per-solver work counters: one entry for the
// classic solver, one per portfolio member otherwise.
func (a *Attack) SolverStats() []portfolio.SolverStat {
	switch s := a.solver.(type) {
	case *portfolio.Portfolio:
		return s.Stats()
	case *singleBackend:
		return []portfolio.SolverStat{{ID: 0, Name: "single", Status: s.last, Stats: s.Solver.Stats()}}
	default:
		return nil
	}
}

// AddCorrect records the fault-free digest.
func (a *Attack) AddCorrect(digest []byte) error {
	if err := a.builder.AddCorrect(digest); err != nil {
		return err
	}
	a.correctDigest = append([]byte(nil), digest...)
	return nil
}

// AddFaulty records one faulty digest observed under the configured
// relaxed fault model. knownWindow is used only when cfg.KnownPosition
// is set; pass -1 in the relaxed setting.
func (a *Attack) AddFaulty(faultyDigest []byte, knownWindow int) error {
	return a.builder.AddFaulty(faultyDigest, knownWindow)
}

// AddInjection is a convenience for experiment harnesses: it feeds a
// fault.Injection, passing the ground-truth window through only when
// the precise-position ablation is enabled.
func (a *Attack) AddInjection(inj fault.Injection) error {
	w := -1
	if a.cfg.KnownPosition {
		w = inj.Fault.Window
	}
	return a.AddFaulty(inj.FaultyDigest, w)
}

// sync pushes clauses added to the formula since the last call into
// the incremental solver. With cfg.Preprocess the pending batch is
// simplified first: only clauses not yet pushed are preprocessed (as
// one sub-formula over the same variable space), which keeps the
// incremental stream sound — the simplified batch is logically
// equivalent to the original batch, and clauses already inside the
// solver are never rewritten retroactively.
func (a *Attack) sync() error {
	cls := a.builder.Formula().Clauses()
	if a.cfg.Preprocess {
		if a.pushed == len(cls) {
			return nil
		}
		batch := cnf.New()
		batch.NewVars(a.builder.Formula().NumVars())
		for _, c := range cls[a.pushed:] {
			batch.AddClause(c...)
		}
		a.pushed = len(cls)
		batch.Preprocess()
		for _, c := range batch.Clauses() {
			if err := a.solver.AddClause(c...); err != nil {
				return err
			}
		}
		return nil
	}
	for ; a.pushed < len(cls); a.pushed++ {
		if err := a.solver.AddClause(cls[a.pushed]...); err != nil {
			return err
		}
	}
	return nil
}

// Solve asks whether the current observations determine the state. It
// returns Recovered with the unique χ input of round 22 when they do,
// Ambiguous when several states remain, and BudgetExceeded if the
// solver budget ran out.
func (a *Attack) Solve() (res Result, err error) {
	if !a.builder.correctAdded {
		return res, fmt.Errorf("core: Solve before AddCorrect")
	}
	start := time.Now()
	defer func() { res.SolveTime = time.Since(start) }()

	if err := a.sync(); err != nil {
		// Level-0 UNSAT while loading clauses.
		res.Status = Inconsistent
		return res, nil
	}
	stats := a.builder.Formula().ComputeStats()
	res.Vars, res.Clauses = stats.Vars, stats.Clauses

	if a.cfg.UniquenessCheck {
		return a.solveUnique(res)
	}
	return a.solvePractical(res)
}

// solvePractical enumerates SAT models and validates each candidate by
// inverting the permutation: a candidate that fails the capacity /
// padding / digest re-check is proven wrong and blocked permanently.
func (a *Attack) solvePractical(res Result) (Result, error) {
	maxCand := a.cfg.MaxCandidates
	if maxCand <= 0 {
		maxCand = 16
	}
	for res.Candidates < maxCand {
		switch a.solver.Solve(a.guards...) {
		case sat.Unsat:
			// Either the observations contradict the fault model, or
			// every remaining model was enumerated and proven wrong —
			// both impossible for genuine observations.
			res.Status = Inconsistent
			return res, nil
		case sat.Unknown:
			res.Status = BudgetExceeded
			return res, nil
		}
		model := append([]bool(nil), a.solver.Model()...)
		a.lastModel = model
		res.Candidates++
		res.ChiInput = a.builder.DecodeAlpha(model)
		if a.ValidateCandidate(res.ChiInput) {
			res.Status = Recovered
			return res, nil
		}
		// Candidate disproven: exclude it forever.
		if err := a.solver.AddClause(a.blockingClause(model, 0)...); err != nil {
			res.Status = Inconsistent
			return res, nil
		}
	}
	res.Status = Ambiguous
	return res, nil
}

// solveUnique implements the pure information-theoretic criterion:
// recovered only if the model is unique over α.
func (a *Attack) solveUnique(res Result) (Result, error) {
	st := a.solver.Solve(a.guards...)
	switch st {
	case sat.Unsat:
		res.Status = Inconsistent
		return res, nil
	case sat.Unknown:
		res.Status = BudgetExceeded
		return res, nil
	}
	model := append([]bool(nil), a.solver.Model()...)
	a.lastModel = model
	res.Candidates = 1
	res.ChiInput = a.builder.DecodeAlpha(model)

	// Block this α assignment behind a guard and re-solve. The guard
	// variable is allocated from the formula's variable space (not the
	// solver's) so that variables created by later AddFaulty calls
	// cannot collide with it; the blocking clause itself stays
	// solver-only and never appears in the exportable formula.
	guard := a.builder.Formula().NewVar()
	if err := a.solver.AddClause(a.blockingClause(model, guard)...); err != nil {
		res.Status = Inconsistent
		return res, nil
	}
	assume := append(append([]int(nil), a.guards...), -guard)
	second := a.solver.Solve(assume...)
	// Retire the blocking clause for all future solves.
	a.guards = append(a.guards, guard)
	switch second {
	case sat.Unsat:
		res.Status = Recovered
	case sat.Sat:
		res.Status = Ambiguous
	default:
		res.Status = BudgetExceeded
	}
	return res, nil
}

// blockingClause builds a clause excluding the model's α assignment,
// optionally guarded (guard = 0 means unguarded/permanent).
func (a *Attack) blockingClause(model []bool, guard int) []int {
	block := make([]int, 0, keccak.StateBits+1)
	if guard != 0 {
		block = append(block, guard)
	}
	for _, l := range a.builder.AlphaLits() {
		v := model[abs(l)]
		if l < 0 {
			v = !v
		}
		if v {
			block = append(block, -abs(l))
		} else {
			block = append(block, abs(l))
		}
	}
	return block
}

// LastModel returns the most recent satisfying model (nil before the
// first Sat outcome).
func (a *Attack) LastModel() []bool { return a.lastModel }

// RecoveredFaults decodes every injected fault from the last model —
// the paper's fault-identification capability.
func (a *Attack) RecoveredFaults() ([]RecoveredFault, error) {
	if a.lastModel == nil {
		return nil, fmt.Errorf("core: no model available")
	}
	out := make([]RecoveredFault, a.builder.NumInstances())
	for k := range out {
		rf, err := a.builder.DecodeFault(a.lastModel, k)
		if err != nil {
			return nil, err
		}
		out[k] = rf
	}
	return out, nil
}

// ValidateCandidate checks a candidate χ input of round 22 the way a
// real attacker can: invert the permutation, check the sponge capacity
// bits are zero and the padding is well-formed, then recompute the
// digest from the extracted message and compare.
func (a *Attack) ValidateCandidate(chi keccak.State) bool {
	msg, ok := a.ExtractMessage(chi)
	if !ok {
		return false
	}
	return bytes.Equal(keccak.Sum(a.cfg.Mode, msg)[:len(a.correctDigest)], a.correctDigest)
}

// ExtractMessage inverts the permutation from the candidate state and
// unpads the rate portion, returning the recovered message block. It
// assumes a single-block message (the experiment setting); ok is false
// if capacity bits are non-zero or the padding is malformed.
func (a *Attack) ExtractMessage(chi keccak.State) (msg []byte, ok bool) {
	perm := keccak.RecoverPermInput(chi, a.cfg.Round)
	rateBytes := a.cfg.Mode.RateBytes()
	// Capacity must be all-zero for a one-block message.
	for i := a.cfg.Mode.RateBits(); i < keccak.StateBits; i++ {
		if perm.Bit(i) {
			return nil, false
		}
	}
	block := perm.Bytes()[:rateBytes]
	return unpad(block, a.cfg.Mode.DomainByte())
}

// unpad strips multi-rate padding with the given domain byte.
func unpad(block []byte, ds byte) ([]byte, bool) {
	n := len(block)
	last := block[n-1]
	if last&0x80 == 0 {
		return nil, false
	}
	if n >= 1 && last == ds^0x80 {
		// Domain byte and final bit merged: message fills n-1 bytes.
		return append([]byte(nil), block[:n-1]...), true
	}
	if last != 0x80 {
		return nil, false
	}
	// Scan backwards for the domain byte; interior padding must be 0.
	for i := n - 2; i >= 0; i-- {
		switch block[i] {
		case 0:
			continue
		case ds:
			return append([]byte(nil), block[:i]...), true
		default:
			return nil, false
		}
	}
	return nil, false
}

// ProbeDetermined tests, for each given α bit index, whether its value
// is already forced by the constraints (an UNSAT check against the
// flipped value). It returns the number of determined bits among the
// probes. Used by the information-accumulation figure.
func (a *Attack) ProbeDetermined(indices []int) (int, error) {
	if a.lastModel == nil {
		return 0, fmt.Errorf("core: no model to probe against")
	}
	if err := a.sync(); err != nil {
		return 0, nil
	}
	alits := a.builder.AlphaLits()
	determined := 0
	for _, i := range indices {
		l := alits[i]
		v := a.lastModel[abs(l)]
		if l < 0 {
			v = !v
		}
		// Assume the opposite value.
		flip := abs(l)
		if v {
			flip = -flip
		}
		assume := append(append([]int(nil), a.guards...), flip)
		if a.solver.Solve(assume...) == sat.Unsat {
			determined++
		}
	}
	return determined, nil
}
