package core

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/portfolio"
	"sha3afa/internal/sat"
)

// solveBackend is what the attack needs from a SAT engine: the
// incremental interface shared by sat.Solver and portfolio.Portfolio.
type solveBackend interface {
	AddClause(lits ...int) error
	Solve(assumptions ...int) sat.Status
	SolveContext(ctx context.Context, assumptions ...int) sat.Status
	// FailedAssumptions reports, after an Unsat result, a subset of the
	// assumptions sufficient for unsatisfiability (empty when the
	// formula is unsatisfiable on its own).
	FailedAssumptions() []int
	Model() []bool
}

// singleBackend wraps the classic single solver so per-solve status is
// tracked the same way the portfolio tracks it.
type singleBackend struct {
	*sat.Solver
	last sat.Status
}

func (b *singleBackend) Solve(assumptions ...int) sat.Status {
	b.last = b.Solver.Solve(assumptions...)
	return b.last
}

func (b *singleBackend) SolveContext(ctx context.Context, assumptions ...int) sat.Status {
	b.last = b.Solver.SolveContext(ctx, assumptions...)
	return b.last
}

// guardSpan marks a half-open clause range [from, to) of the builder's
// formula that belongs to one guarded observation: every clause in the
// range is pushed into the solver with the extra literal ¬guard, so
// the whole batch is active exactly while `guard` is assumed true.
type guardSpan struct {
	from, to int
	guard    int
}

// observation is the solver-side bookkeeping of one faulty digest in a
// guarded attack.
type observation struct {
	guard  int  // activation variable (assumed positive while active)
	active bool // false once evicted as out-of-model
}

// Attack drives an incremental AFA session: observations stream in via
// AddCorrect/AddFaulty, Solve asks the SAT solver whether the
// accumulated algebra pins the state down, and the recovered state can
// be walked back to the message block.
type Attack struct {
	cfg     Config
	builder *Builder
	solver  solveBackend
	pushed  int // clauses already handed to the solver

	correctDigest []byte
	retired       []int // satisfied guard literals of retired blocking clauses
	lastModel     []bool

	// Guarded-mode state (cfg.Guarded): one guard per observation, the
	// clause spans they cover, and the indices evicted so far.
	spans   []guardSpan
	obs     []observation
	evicted []int

	ctx context.Context // context of the Solve call in flight
}

// NewAttack returns an empty attack session. With cfg.Portfolio > 1
// every Solve races that many diversified solvers with clause sharing;
// otherwise the classic single CDCL solver is used.
func NewAttack(cfg Config) *Attack {
	return &Attack{
		cfg:     cfg,
		builder: NewBuilder(cfg),
		solver:  newSolveBackend(cfg),
		ctx:     context.Background(),
	}
}

// newSolveBackend builds the SAT engine an attack solves with: a
// clause-sharing portfolio with cfg.Portfolio > 1, the classic single
// CDCL solver otherwise. Shared by NewAttack and Template.Instantiate.
func newSolveBackend(cfg Config) solveBackend {
	if cfg.Portfolio > 1 {
		return portfolio.New(portfolio.Options{
			Workers:  cfg.Portfolio,
			Base:     cfg.SolverOptions,
			Recorder: cfg.Recorder,
		})
	}
	s := sat.NewWithOptions(cfg.SolverOptions)
	if cfg.Recorder != nil {
		s.SetRecorder(cfg.Recorder, "sat[0]:single")
	}
	return &singleBackend{Solver: s}
}

// Builder exposes the underlying instance builder (e.g. for DIMACS
// export of the exact CNF the solver sees).
func (a *Attack) Builder() *Builder { return a.builder }

// SolverStats reports per-solver work counters: one entry for the
// classic solver, one per portfolio member otherwise.
func (a *Attack) SolverStats() []portfolio.SolverStat {
	switch s := a.solver.(type) {
	case *portfolio.Portfolio:
		return s.Stats()
	case *singleBackend:
		return []portfolio.SolverStat{{ID: 0, Name: "single", Status: s.last, Stats: s.Solver.Stats()}}
	default:
		return nil
	}
}

// AddCorrect records the fault-free digest.
func (a *Attack) AddCorrect(digest []byte) error {
	stop := obs.Span(a.cfg.Recorder, "attack", "attack.encode", obs.F("which", "correct"))
	err := a.builder.AddCorrect(digest)
	stop(obs.F("clauses", a.builder.Formula().NumClauses()))
	if err != nil {
		return err
	}
	a.correctDigest = append([]byte(nil), digest...)
	return nil
}

// AddFaulty records one faulty digest observed under the configured
// relaxed fault model. knownWindow is used only when cfg.KnownPosition
// is set; pass -1 in the relaxed setting. In a guarded attack
// (cfg.Guarded) the observation's clause batch is tagged with a fresh
// activation literal so it can later be evicted if blamed for an
// inconsistency.
func (a *Attack) AddFaulty(faultyDigest []byte, knownWindow int) error {
	from := a.builder.Formula().NumClauses()
	stop := obs.Span(a.cfg.Recorder, "attack", "attack.encode",
		obs.F("which", "faulty"), obs.F("obs", a.builder.NumInstances()))
	err := a.builder.AddFaulty(faultyDigest, knownWindow)
	stop(obs.F("clauses", a.builder.Formula().NumClauses()-from))
	if err != nil {
		return err
	}
	if a.cfg.Guarded {
		// The guard variable is allocated from the formula's variable
		// space (like blocking-clause guards) so that variables created
		// by later AddFaulty calls cannot collide with it; the guard
		// literal itself is appended only on the way into the solver and
		// never appears in the exportable formula.
		g := a.builder.Formula().NewVar()
		a.spans = append(a.spans, guardSpan{from: from, to: a.builder.Formula().NumClauses(), guard: g})
		a.obs = append(a.obs, observation{guard: g, active: true})
	}
	return nil
}

// Evicted returns the observation indices quarantined as out-of-model
// so far (guarded attacks only), in eviction order.
func (a *Attack) Evicted() []int { return append([]int(nil), a.evicted...) }

// AddInjection is a convenience for experiment harnesses: it feeds a
// fault.Injection, passing the ground-truth window through only when
// the precise-position ablation is enabled.
func (a *Attack) AddInjection(inj fault.Injection) error {
	w := -1
	if a.cfg.KnownPosition {
		w = inj.Fault.Window
	}
	return a.AddFaulty(inj.FaultyDigest, w)
}

// sync pushes clauses added to the formula since the last call into
// the incremental solver. The pending clauses are partitioned into
// maximal runs sharing one guard (guard 0 = unguarded; in unguarded
// attacks the whole pending set is a single run, preserving the
// classic behaviour); every clause of a guarded run enters the solver
// with the extra literal ¬guard appended.
//
// With cfg.Preprocess each run is simplified first, as one sub-formula
// over the same variable space, BEFORE the guard literal is appended.
// This keeps the incremental stream sound twice over: the simplified
// run is logically equivalent to the original run, so guarding both
// sides with ¬g yields equivalent guarded batches; and because runs
// never span a guard boundary, a unit derived from observation A can
// never rewrite a clause of observation B (which would smuggle A's
// constraints past B's guard and make eviction of A unsound).
func (a *Attack) sync() error {
	cls := a.builder.Formula().Clauses()
	for a.pushed < len(cls) {
		guard, end := a.guardRun(a.pushed, len(cls))
		if err := a.pushRun(cls, a.pushed, end, guard); err != nil {
			return err
		}
		a.pushed = end
	}
	return nil
}

// guardRun returns the guard of clause index i (0 if unguarded) and
// the end of the maximal run [i, end) sharing that guard, capped at
// limit. Spans are appended in clause order, so a linear scan over the
// (few) spans is plenty.
func (a *Attack) guardRun(i, limit int) (guard, end int) {
	end = limit
	for _, sp := range a.spans {
		if i >= sp.from && i < sp.to {
			to := sp.to
			if to > limit {
				to = limit
			}
			return sp.guard, to
		}
		if sp.from > i {
			// Unguarded gap before the next span.
			if sp.from < end {
				end = sp.from
			}
			break
		}
	}
	return 0, end
}

// pushRun hands clauses [from, end) to the solver, optionally
// preprocessed as one batch, appending ¬guard to each when guarded.
func (a *Attack) pushRun(cls [][]int, from, end, guard int) error {
	run := cls[from:end]
	if a.cfg.Preprocess {
		stop := obs.Span(a.cfg.Recorder, "attack", "attack.preprocess",
			obs.F("clauses_in", len(run)), obs.F("guarded", guard != 0))
		batch := cnf.New()
		batch.NewVars(a.builder.Formula().NumVars())
		for _, c := range run {
			batch.AddClause(c...)
		}
		batch.Preprocess()
		run = batch.Clauses()
		stop(obs.F("clauses_out", len(run)))
	}
	for _, c := range run {
		if guard != 0 {
			gc := make([]int, 0, len(c)+1)
			gc = append(gc, c...)
			gc = append(gc, -guard)
			c = gc
		}
		if err := a.solver.AddClause(c...); err != nil {
			return err
		}
	}
	return nil
}

// assumptions assembles the assumption set for a primary solve:
// retired blocking-clause guards (assumed true to satisfy and thereby
// disable their clauses) plus the activation guards of every surviving
// observation (assumed true to switch their clause batches on),
// followed by any extra literals.
func (a *Attack) assumptions(extra ...int) []int {
	out := make([]int, 0, len(a.retired)+len(a.obs)+len(extra))
	out = append(out, a.retired...)
	for _, o := range a.obs {
		if o.active {
			out = append(out, o.guard)
		}
	}
	out = append(out, extra...)
	return out
}

// Solve asks whether the current observations determine the state. It
// returns Recovered with the unique χ input of round 22 when they do,
// Ambiguous when several states remain, and BudgetExceeded if the
// solver budget ran out.
func (a *Attack) Solve() (Result, error) {
	return a.SolveContext(context.Background())
}

// SolveContext is Solve with cancellation: when ctx is done the
// underlying solver (or every portfolio member) is interrupted and the
// result reports BudgetExceeded.
func (a *Attack) SolveContext(ctx context.Context) (res Result, err error) {
	if !a.builder.correctAdded {
		return res, fmt.Errorf("core: Solve before AddCorrect")
	}
	a.ctx = ctx
	defer func() { a.ctx = context.Background() }()
	start := time.Now()
	defer func() { res.SolveTime = time.Since(start) }()

	if err := a.sync(); err != nil {
		// Level-0 UNSAT while loading clauses. Guarded observation
		// clauses always contain an unassigned guard literal, so this
		// can only be caused by the correct-digest block itself.
		res.Status = Inconsistent
		res.EvictedFaults = a.Evicted()
		return res, nil
	}
	stats := a.builder.Formula().ComputeStats()
	res.Vars, res.Clauses = stats.Vars, stats.Clauses

	if a.cfg.UniquenessCheck {
		res, err = a.solveUnique(res)
	} else {
		res, err = a.solvePractical(res)
	}
	if len(a.evicted) > 0 {
		res.EvictedFaults = a.Evicted()
	}
	return res, err
}

// solveRobust runs one primary solve under the current assumption set.
// In a guarded attack an Unsat outcome triggers the blame loop: the
// failed-assumption core is read, minimized, and its observations are
// evicted before retrying, so the caller only ever sees Unsat when the
// surviving constraint system is genuinely inconsistent (or the
// eviction budget is exhausted).
func (a *Attack) solveRobust() sat.Status {
	stop := obs.Span(a.cfg.Recorder, "attack", "attack.solve")
	st := a.solveRobustLoop()
	stop(obs.F("status", st.String()))
	return st
}

func (a *Attack) solveRobustLoop() sat.Status {
	for {
		st := a.solver.SolveContext(a.ctx, a.assumptions()...)
		if st != sat.Unsat || !a.cfg.Guarded {
			return st
		}
		if !a.blameAndEvict() {
			return sat.Unsat
		}
	}
}

// blameAndEvict maps the solver's failed-assumption core back to
// observation indices, minimizes it, and evicts the blamed
// observations. It returns false when recovery is impossible: the core
// contains no observation guard (the formula is inconsistent on its
// own), or the eviction cap would be exceeded.
func (a *Attack) blameAndEvict() bool {
	core := a.coreObservations(a.solver.FailedAssumptions())
	if len(core) == 0 {
		return false
	}
	rawSize := len(core)
	core = a.minimizeCore(core)
	obs.Emit(a.cfg.Recorder, "attack", "attack.blame",
		obs.F("core", rawSize), obs.F("minimized", len(core)))
	if cap := a.cfg.MaxEvictions; cap > 0 && len(a.evicted)+len(core) > cap {
		return false
	}
	for _, k := range core {
		a.evict(k)
		obs.Emit(a.cfg.Recorder, "attack", "attack.evict",
			obs.F("obs", k), obs.F("blamed_core", len(core)))
	}
	if a.cfg.Recorder != nil {
		a.cfg.Recorder.Metrics().Counter("attack.evictions").Add(int64(len(core)))
	}
	return true
}

// coreObservations filters a failed-assumption core down to the
// indices of the active observations whose guards appear in it.
func (a *Attack) coreObservations(failed []int) []int {
	var out []int
	for _, l := range failed {
		if l <= 0 {
			continue // observation guards are assumed positive
		}
		for k, o := range a.obs {
			if o.active && o.guard == l {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// minimizeCore shrinks a blamed observation set to an irredundant core
// by deletion: each member is dropped in turn and the remainder
// re-solved; if the remainder is still Unsat the member was redundant.
// A genuinely out-of-model observation is individually inconsistent
// with the correct-digest constraints, so in practice this converges
// onto exactly the guilty observations and spares the innocent ones
// that merely shared a conflict with them. Unknown outcomes (budget)
// conservatively keep the member under test.
func (a *Attack) minimizeCore(core []int) []int {
	if len(core) <= 1 {
		return core
	}
	kept := append([]int(nil), core...)
	for i := 0; i < len(kept) && len(kept) > 1; {
		trial := make([]int, 0, len(a.retired)+len(kept)-1)
		trial = append(trial, a.retired...)
		for j, k := range kept {
			if j != i {
				trial = append(trial, a.obs[k].guard)
			}
		}
		if a.solver.SolveContext(a.ctx, trial...) == sat.Unsat {
			kept = append(kept[:i], kept[i+1:]...)
		} else {
			i++
		}
	}
	return kept
}

// evict permanently deactivates observation k: its guard is fixed
// false at level 0, which satisfies every clause of its batch, and it
// is dropped from all future assumption sets.
func (a *Attack) evict(k int) {
	o := &a.obs[k]
	if !o.active {
		return
	}
	o.active = false
	a.evicted = append(a.evicted, k)
	// The unit can only conflict with an assumption, never at level 0
	// (the guard occurs nowhere else with fixed polarity), so the error
	// is impossible; ignore it defensively.
	_ = a.solver.AddClause(-o.guard)
}

// solvePractical enumerates SAT models and validates each candidate by
// inverting the permutation: a candidate that fails the capacity /
// padding / digest re-check is proven wrong and blocked permanently.
func (a *Attack) solvePractical(res Result) (Result, error) {
	maxCand := a.cfg.MaxCandidates
	if maxCand <= 0 {
		maxCand = 16
	}
	for res.Candidates < maxCand {
		switch a.solveRobust() {
		case sat.Unsat:
			// Either the observations contradict the fault model (and,
			// in a guarded attack, blame could not restore consistency),
			// or every remaining model was enumerated and proven wrong —
			// both impossible for genuine observations.
			res.Status = Inconsistent
			return res, nil
		case sat.Unknown:
			res.Status = BudgetExceeded
			return res, nil
		}
		model := append([]bool(nil), a.solver.Model()...)
		a.lastModel = model
		res.Candidates++
		stop := obs.Span(a.cfg.Recorder, "attack", "attack.decode",
			obs.F("candidate", res.Candidates))
		res.ChiInput = a.builder.DecodeAlpha(model)
		valid := a.ValidateCandidate(res.ChiInput)
		stop(obs.F("valid", valid))
		if valid {
			res.Status = Recovered
			return res, nil
		}
		// Candidate disproven: exclude it forever.
		if err := a.solver.AddClause(a.blockingClause(model, 0)...); err != nil {
			res.Status = Inconsistent
			return res, nil
		}
	}
	res.Status = Ambiguous
	return res, nil
}

// solveUnique implements the pure information-theoretic criterion:
// recovered only if the model is unique over α.
func (a *Attack) solveUnique(res Result) (Result, error) {
	st := a.solveRobust()
	switch st {
	case sat.Unsat:
		res.Status = Inconsistent
		return res, nil
	case sat.Unknown:
		res.Status = BudgetExceeded
		return res, nil
	}
	model := append([]bool(nil), a.solver.Model()...)
	a.lastModel = model
	res.Candidates = 1
	stopDecode := obs.Span(a.cfg.Recorder, "attack", "attack.decode",
		obs.F("candidate", res.Candidates))
	res.ChiInput = a.builder.DecodeAlpha(model)
	stopDecode()

	// Block this α assignment behind a guard and re-solve. The guard
	// variable is allocated from the formula's variable space (not the
	// solver's) so that variables created by later AddFaulty calls
	// cannot collide with it; the blocking clause itself stays
	// solver-only and never appears in the exportable formula.
	guard := a.builder.Formula().NewVar()
	if err := a.solver.AddClause(a.blockingClause(model, guard)...); err != nil {
		res.Status = Inconsistent
		return res, nil
	}
	// The second solve must NOT re-enter the blame loop: Unsat here
	// means the model is unique over α, not that an observation is bad.
	stopSolve := obs.Span(a.cfg.Recorder, "attack", "attack.solve",
		obs.F("uniqueness", true))
	second := a.solver.SolveContext(a.ctx, a.assumptions(-guard)...)
	stopSolve(obs.F("status", second.String()))
	// Retire the blocking clause for all future solves.
	a.retired = append(a.retired, guard)
	switch second {
	case sat.Unsat:
		res.Status = Recovered
	case sat.Sat:
		res.Status = Ambiguous
	default:
		res.Status = BudgetExceeded
	}
	return res, nil
}

// blockingClause builds a clause excluding the model's α assignment,
// optionally guarded (guard = 0 means unguarded/permanent).
func (a *Attack) blockingClause(model []bool, guard int) []int {
	block := make([]int, 0, keccak.StateBits+1)
	if guard != 0 {
		block = append(block, guard)
	}
	for _, l := range a.builder.AlphaLits() {
		v := model[abs(l)]
		if l < 0 {
			v = !v
		}
		if v {
			block = append(block, -abs(l))
		} else {
			block = append(block, abs(l))
		}
	}
	return block
}

// LastModel returns the most recent satisfying model (nil before the
// first Sat outcome).
func (a *Attack) LastModel() []bool { return a.lastModel }

// RecoveredFaults decodes every injected fault from the last model —
// the paper's fault-identification capability. Observations a guarded
// attack evicted are reported with Evicted set and are not decoded:
// their difference variables are unconstrained in the model.
func (a *Attack) RecoveredFaults() ([]RecoveredFault, error) {
	if a.lastModel == nil {
		return nil, fmt.Errorf("core: no model available")
	}
	out := make([]RecoveredFault, a.builder.NumInstances())
	for k := range out {
		if len(a.obs) > k && !a.obs[k].active {
			out[k] = RecoveredFault{Evicted: true}
			continue
		}
		rf, err := a.builder.DecodeFault(a.lastModel, k)
		if err != nil {
			return nil, err
		}
		out[k] = rf
	}
	return out, nil
}

// ValidateCandidate checks a candidate χ input of round 22 the way a
// real attacker can: invert the permutation, check the sponge capacity
// bits are zero and the padding is well-formed, then recompute the
// digest from the extracted message and compare.
func (a *Attack) ValidateCandidate(chi keccak.State) bool {
	msg, ok := a.ExtractMessage(chi)
	if !ok {
		return false
	}
	return bytes.Equal(keccak.Sum(a.cfg.Mode, msg)[:len(a.correctDigest)], a.correctDigest)
}

// ExtractMessage inverts the permutation from the candidate state and
// unpads the rate portion, returning the recovered message block. It
// assumes a single-block message (the experiment setting); ok is false
// if capacity bits are non-zero or the padding is malformed.
func (a *Attack) ExtractMessage(chi keccak.State) (msg []byte, ok bool) {
	perm := keccak.RecoverPermInput(chi, a.cfg.Round)
	rateBytes := a.cfg.Mode.RateBytes()
	// Capacity must be all-zero for a one-block message.
	for i := a.cfg.Mode.RateBits(); i < keccak.StateBits; i++ {
		if perm.Bit(i) {
			return nil, false
		}
	}
	block := perm.Bytes()[:rateBytes]
	return unpad(block, a.cfg.Mode.DomainByte())
}

// unpad strips multi-rate padding with the given domain byte.
func unpad(block []byte, ds byte) ([]byte, bool) {
	n := len(block)
	last := block[n-1]
	if last&0x80 == 0 {
		return nil, false
	}
	if n >= 1 && last == ds^0x80 {
		// Domain byte and final bit merged: message fills n-1 bytes.
		return append([]byte(nil), block[:n-1]...), true
	}
	if last != 0x80 {
		return nil, false
	}
	// Scan backwards for the domain byte; interior padding must be 0.
	for i := n - 2; i >= 0; i-- {
		switch block[i] {
		case 0:
			continue
		case ds:
			return append([]byte(nil), block[:i]...), true
		default:
			return nil, false
		}
	}
	return nil, false
}

// ProbeDetermined tests, for each given α bit index, whether its value
// is already forced by the constraints (an UNSAT check against the
// flipped value). It returns the number of determined bits among the
// probes. Used by the information-accumulation figure.
func (a *Attack) ProbeDetermined(indices []int) (int, error) {
	if a.lastModel == nil {
		return 0, fmt.Errorf("core: no model to probe against")
	}
	if err := a.sync(); err != nil {
		return 0, nil
	}
	alits := a.builder.AlphaLits()
	determined := 0
	for _, i := range indices {
		l := alits[i]
		v := a.lastModel[abs(l)]
		if l < 0 {
			v = !v
		}
		// Assume the opposite value.
		flip := abs(l)
		if v {
			flip = -flip
		}
		if a.solver.SolveContext(a.ctx, a.assumptions(flip)...) == sat.Unsat {
			determined++
		}
	}
	return determined, nil
}
