//go:build race

package core

// raceEnabled lets solver-heavy tests skip themselves under -race: the
// instrumented solver is an order of magnitude slower, and the race
// coverage they would add is already provided by the fast guarded
// tests and the portfolio package's own stress tests.
const raceEnabled = true
