package core

import (
	"bytes"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestModelConsistency checks the encoding end to end without needing
// full recovery: any SAT model of the instance, decoded back to a
// state and faults, must reproduce the observed correct and faulty
// digests under the concrete Keccak implementation, and the ground
// truth must satisfy the instance.
func TestModelConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("solver-heavy test skipped in -short mode")
	}
	msg := []byte("debug message")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, 3, 7)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	cfg := DefaultConfig(mode, fault.Byte)
	cfg.MaxCandidates = 1 // a single model suffices for this check
	atk := NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
	}
	res, err := atk.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Inconsistent || res.Status == BudgetExceeded {
		t.Fatalf("unexpected status %s", res.Status)
	}
	alpha := res.ChiInput

	// The decoded state must reproduce the correct digest.
	s := alpha
	s.Chi()
	s.Iota(22)
	s.Round(23)
	if !bytes.Equal(s.ExtractBytes(mode.DigestBits()/8), correct) {
		t.Fatal("model does not reproduce the correct digest")
	}

	// Each decoded fault must reproduce its faulty digest.
	rfs, err := atk.RecoveredFaults()
	if err != nil {
		t.Fatal(err)
	}
	for k, rf := range rfs {
		if rf.Silent {
			t.Fatalf("fault %d decoded as silent — Δ≠0 constraint broken", k)
		}
		d := rf.Fault.Delta()
		d.LinearLayer()
		fs := alpha
		fs.Xor(&d)
		fs.Chi()
		fs.Iota(22)
		fs.Round(23)
		if !bytes.Equal(fs.ExtractBytes(mode.DigestBits()/8), injs[k].FaultyDigest) {
			t.Fatalf("fault %d: model does not reproduce the faulty digest", k)
		}
	}

	// Ground truth must satisfy the instance.
	atk2 := NewAttack(cfg)
	atk2.AddCorrect(correct)
	for _, inj := range injs {
		atk2.AddInjection(inj)
	}
	if err := atk2.sync(); err != nil {
		t.Fatal(err)
	}
	assume := make([]int, 0, keccak.StateBits)
	for i, l := range atk2.builder.AlphaLits() {
		if truth.Bit(i) {
			assume = append(assume, l)
		} else {
			assume = append(assume, -l)
		}
	}
	if st := atk2.solver.Solve(assume...); st.String() != "SAT" {
		t.Fatalf("ground truth does not satisfy the instance: %v", st)
	}
}
