package bitmat

import (
	"math/rand"
	"testing"
)

func TestLinearSystemBasic(t *testing.T) {
	s := NewLinearSystem(3)
	// x0 ^ x1 = 1
	c := NewVec(3)
	c.Set(0, true)
	c.Set(1, true)
	if !s.AddEquation(c, true) {
		t.Fatal("first equation should be independent")
	}
	if s.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", s.Rank())
	}
	if len(s.Forced()) != 0 {
		t.Fatal("nothing should be forced yet")
	}
	// x1 = 0
	if !s.Assign(1, false) {
		t.Fatal("assignment should be independent")
	}
	forced := s.Forced()
	if v, ok := forced[0]; !ok || v != true {
		t.Fatalf("x0 should be forced to 1, got %v", forced)
	}
	if v, ok := forced[1]; !ok || v != false {
		t.Fatalf("x1 should be forced to 0, got %v", forced)
	}
}

func TestLinearSystemRedundantAndConflict(t *testing.T) {
	s := NewLinearSystem(2)
	c := NewVec(2)
	c.Set(0, true)
	if !s.AddEquation(c, true) {
		t.Fatal("independent equation rejected")
	}
	if s.AddEquation(c, true) {
		t.Fatal("redundant equation reported independent")
	}
	if s.Inconsistent() {
		t.Fatal("system should still be consistent")
	}
	if s.AddEquation(c, false) {
		t.Fatal("conflicting equation reported independent")
	}
	if !s.Inconsistent() {
		t.Fatal("conflict not detected")
	}
	if s.Solution() != nil {
		t.Fatal("inconsistent system returned a solution")
	}
}

func TestLinearSystemRecoversRandomSecret(t *testing.T) {
	// Feed random equations generated from a hidden assignment; once the
	// rank reaches n every variable must be forced to the secret value.
	rng := rand.New(rand.NewSource(21))
	const n = 64
	secret := randVec(rng, n)
	s := NewLinearSystem(n)
	for s.Rank() < n {
		coeffs := randVec(rng, n)
		s.AddEquation(coeffs, coeffs.Dot(secret))
		if s.Inconsistent() {
			t.Fatal("consistent stream made system inconsistent")
		}
	}
	forced := s.Forced()
	if len(forced) != n {
		t.Fatalf("full-rank system forced only %d/%d vars", len(forced), n)
	}
	for i := 0; i < n; i++ {
		if forced[i] != secret.Get(i) {
			t.Fatalf("var %d forced to wrong value", i)
		}
	}
	sol := s.Solution()
	if !sol.Equal(secret) {
		t.Fatal("Solution() != secret at full rank")
	}
	if !s.Evaluate(secret) {
		t.Fatal("secret does not satisfy its own equations")
	}
}

func TestLinearSystemSolutionSatisfies(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := NewLinearSystem(40)
	secret := randVec(rng, 40)
	for i := 0; i < 25; i++ {
		coeffs := randVec(rng, 40)
		s.AddEquation(coeffs, coeffs.Dot(secret))
	}
	sol := s.Solution()
	if sol == nil {
		t.Fatal("no solution for consistent system")
	}
	if !s.Evaluate(sol) {
		t.Fatal("Solution() does not satisfy system")
	}
}

func TestLinearSystemForcedSubsetStable(t *testing.T) {
	// Once a variable is forced, adding more consistent equations must
	// never change its value.
	rng := rand.New(rand.NewSource(23))
	const n = 32
	secret := randVec(rng, n)
	s := NewLinearSystem(n)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		coeffs := randVec(rng, n)
		s.AddEquation(coeffs, coeffs.Dot(secret))
		for v, val := range s.Forced() {
			if prev, ok := seen[v]; ok && prev != val {
				t.Fatalf("forced value of var %d changed", v)
			}
			seen[v] = val
			if val != secret.Get(v) {
				t.Fatalf("var %d forced to non-secret value", v)
			}
		}
	}
}
