package bitmat

import "fmt"

// Mat is a dense matrix over GF(2) with rows stored as bit vectors.
type Mat struct {
	rows, cols int
	data       []*Vec
}

// NewMat returns a zero rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative matrix dimension")
	}
	m := &Mat{rows: rows, cols: cols, data: make([]*Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// Get returns element (i,j).
func (m *Mat) Get(i, j int) bool { return m.data[i].Get(j) }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, b bool) { m.data[i].Set(j, b) }

// Row returns row i (shared storage, not a copy).
func (m *Mat) Row(i int) *Vec { return m.data[i] }

// SetRow replaces row i with a copy of v.
func (m *Mat) SetRow(i int, v *Vec) {
	if v.Len() != m.cols {
		panic("bitmat: SetRow length mismatch")
	}
	m.data[i] = v.Clone()
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := &Mat{rows: m.rows, cols: m.cols, data: make([]*Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// Equal reports whether both matrices hold the same bits.
func (m *Mat) Equal(o *Mat) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if !m.data[i].Equal(o.data[i]) {
			return false
		}
	}
	return true
}

// MulVec returns m·v (length = rows).
func (m *Mat) MulVec(v *Vec) *Vec {
	if v.Len() != m.cols {
		panic("bitmat: MulVec dimension mismatch")
	}
	out := NewVec(m.rows)
	for i, r := range m.data {
		if r.Dot(v) {
			out.Set(i, true)
		}
	}
	return out
}

// Mul returns the matrix product m·o.
func (m *Mat) Mul(o *Mat) *Mat {
	if m.cols != o.rows {
		panic("bitmat: Mul dimension mismatch")
	}
	out := NewMat(m.rows, o.cols)
	// Accumulate rows of o selected by bits of each row of m: this is
	// the word-parallel formulation (row_i(out) = XOR of rows of o
	// where row_i(m) has a 1).
	for i := 0; i < m.rows; i++ {
		acc := out.data[i]
		r := m.data[i]
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			acc.Xor(o.data[j])
		}
	}
	return out
}

// Transpose returns the transposed matrix.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		r := m.data[i]
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			t.data[j].Set(i, true)
		}
	}
	return t
}

// RowReduce performs in-place Gaussian elimination to reduced row
// echelon form and returns the pivot column for each pivot row (in
// order) — its length is the rank.
func (m *Mat) RowReduce() []int {
	pivots := make([]int, 0, min(m.rows, m.cols))
	row := 0
	for col := 0; col < m.cols && row < m.rows; col++ {
		// Find a pivot in this column at or below `row`.
		sel := -1
		for i := row; i < m.rows; i++ {
			if m.data[i].Get(col) {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		m.data[row], m.data[sel] = m.data[sel], m.data[row]
		for i := 0; i < m.rows; i++ {
			if i != row && m.data[i].Get(col) {
				m.data[i].Xor(m.data[row])
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// Rank returns the GF(2) rank (m is not modified).
func (m *Mat) Rank() int {
	c := m.Clone()
	return len(c.RowReduce())
}

// Inverse returns the inverse of a square matrix, or an error if the
// matrix is singular. m is not modified.
func (m *Mat) Inverse() (*Mat, error) {
	if m.rows != m.cols {
		panic("bitmat: Inverse of non-square matrix")
	}
	n := m.rows
	// Augment [m | I] and reduce.
	aug := NewMat(n, 2*n)
	for i := 0; i < n; i++ {
		r := m.data[i]
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			aug.data[i].Set(j, true)
		}
		aug.data[i].Set(n+i, true)
	}
	pivots := aug.RowReduce()
	// Only pivots landing in the left block witness rank of m; a pivot
	// in the identity block means m itself was rank-deficient.
	rank := 0
	for _, p := range pivots {
		if p < n {
			rank++
		}
	}
	if rank != n {
		return nil, fmt.Errorf("bitmat: singular matrix (rank %d < %d)", rank, n)
	}
	inv := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := aug.data[i].NextSet(n); j >= 0; j = aug.data[i].NextSet(j + 1) {
			inv.data[i].Set(j-n, true)
		}
	}
	return inv, nil
}

// Solve finds one solution x of m·x = b, plus a basis of the kernel of
// m (so the full solution set is x + span(kernel)). It returns an error
// if the system is inconsistent. m and b are not modified.
func (m *Mat) Solve(b *Vec) (x *Vec, kernel []*Vec, err error) {
	if b.Len() != m.rows {
		panic("bitmat: Solve dimension mismatch")
	}
	aug := NewMat(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		r := m.data[i]
		for j := r.FirstSet(); j >= 0; j = r.NextSet(j + 1) {
			aug.data[i].Set(j, true)
		}
		if b.Get(i) {
			aug.data[i].Set(m.cols, true)
		}
	}
	pivots := aug.RowReduce()
	// Inconsistency: a pivot in the augmented column.
	isPivot := make(map[int]bool, len(pivots))
	for _, p := range pivots {
		if p == m.cols {
			return nil, nil, fmt.Errorf("bitmat: inconsistent linear system")
		}
		isPivot[p] = true
	}
	x = NewVec(m.cols)
	for row, p := range pivots {
		if aug.data[row].Get(m.cols) {
			x.Set(p, true)
		}
	}
	// Kernel basis: one vector per free column.
	for col := 0; col < m.cols; col++ {
		if isPivot[col] {
			continue
		}
		k := NewVec(m.cols)
		k.Set(col, true)
		for row, p := range pivots {
			if aug.data[row].Get(col) {
				k.Set(p, true)
			}
		}
		kernel = append(kernel, k)
	}
	return x, kernel, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
