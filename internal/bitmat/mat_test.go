package bitmat

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Intn(2) == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// randInvertible keeps sampling until the matrix has full rank.
func randInvertible(rng *rand.Rand, n int) *Mat {
	for {
		m := randMat(rng, n, n)
		if m.Rank() == n {
			return m
		}
	}
}

func TestIdentityMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	id := Identity(97)
	v := randVec(rng, 97)
	if !id.MulVec(v).Equal(v) {
		t.Fatal("I·v != v")
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		a := randMat(rng, 13, 17)
		b := randMat(rng, 17, 9)
		c := randMat(rng, 9, 21)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if !left.Equal(right) {
			t.Fatal("(AB)C != A(BC)")
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 20, 30)
	v := randVec(rng, 30)
	// Represent v as a 30x1 matrix and compare.
	vm := NewMat(30, 1)
	for i := 0; i < 30; i++ {
		vm.Set(i, 0, v.Get(i))
	}
	prod := a.Mul(vm)
	av := a.MulVec(v)
	for i := 0; i < 20; i++ {
		if prod.Get(i, 0) != av.Get(i) {
			t.Fatalf("MulVec disagrees with Mul at row %d", i)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMat(rng, 33, 65)
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("transpose twice is not identity")
	}
}

func TestTransposeDotProperty(t *testing.T) {
	// <Av, w> == <v, A^T w>
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		a := randMat(rng, 24, 40)
		v := randVec(rng, 40)
		w := randVec(rng, 24)
		if a.MulVec(v).Dot(w) != a.Transpose().MulVec(w).Dot(v) {
			t.Fatal("<Av,w> != <v,A^T w>")
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 5, 16, 64, 100} {
		m := randInvertible(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !m.Mul(inv).Equal(Identity(n)) {
			t.Fatalf("n=%d: M·M⁻¹ != I", n)
		}
		if !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("n=%d: M⁻¹·M != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := NewMat(3, 3)
	m.Set(0, 0, true)
	m.Set(1, 1, true)
	// Row 2 zero: singular.
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
}

func TestRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randMat(rng, 10, 40)
	r := m.Rank()
	if r < 0 || r > 10 {
		t.Fatalf("rank %d out of bounds", r)
	}
	if Identity(17).Rank() != 17 {
		t.Fatal("identity rank wrong")
	}
	if NewMat(5, 5).Rank() != 0 {
		t.Fatal("zero matrix rank wrong")
	}
}

func TestRowReducePreservesRowSpace(t *testing.T) {
	// After reduction, M·x = b solvable iff it was before; check via a
	// known solution.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := randMat(rng, 15, 25)
		x := randVec(rng, 25)
		b := m.MulVec(x)
		sol, kernel, err := m.Solve(b)
		if err != nil {
			t.Fatalf("consistent system reported inconsistent: %v", err)
		}
		if !m.MulVec(sol).Equal(b) {
			t.Fatal("Solve returned a non-solution")
		}
		for _, k := range kernel {
			if !m.MulVec(k).IsZero() {
				t.Fatal("kernel vector not in kernel")
			}
		}
		// rank + nullity = cols
		if m.Rank()+len(kernel) != 25 {
			t.Fatalf("rank-nullity violated: %d + %d != 25", m.Rank(), len(kernel))
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	m := NewMat(2, 2)
	m.Set(0, 0, true)
	m.Set(1, 0, true) // same equation twice
	b := NewVec(2)
	b.Set(0, true) // x0 = 1 and x0 = 0: contradiction
	if _, _, err := m.Solve(b); err == nil {
		t.Fatal("expected inconsistency error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(4)
	c := m.Clone()
	c.Set(0, 1, true)
	if m.Get(0, 1) {
		t.Fatal("Clone shares storage with original")
	}
}
