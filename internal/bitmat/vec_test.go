package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) *Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestVecSetGet(t *testing.T) {
	v := NewVec(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("fresh vector has bit %d set", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d still set after clear", i)
		}
	}
}

func TestVecFlip(t *testing.T) {
	v := NewVec(70)
	v.Flip(64)
	if !v.Get(64) {
		t.Fatal("Flip did not set bit 64")
	}
	v.Flip(64)
	if v.Get(64) {
		t.Fatal("double Flip did not restore bit 64")
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	NewVec(8).Get(8)
}

func TestVecXorSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a := randVec(rng, n)
		b := randVec(rng, n)
		c := a.Clone()
		c.Xor(b)
		c.Xor(b)
		if !c.Equal(a) {
			t.Fatalf("xor twice is not identity (n=%d)", n)
		}
	}
}

func TestVecPopCountAndSupport(t *testing.T) {
	v := NewVec(200)
	idx := []int{0, 3, 63, 64, 100, 199}
	for _, i := range idx {
		v.Set(i, true)
	}
	if got := v.PopCount(); got != len(idx) {
		t.Fatalf("PopCount = %d, want %d", got, len(idx))
	}
	sup := v.Support()
	if len(sup) != len(idx) {
		t.Fatalf("Support length = %d, want %d", len(sup), len(idx))
	}
	for i := range idx {
		if sup[i] != idx[i] {
			t.Fatalf("Support[%d] = %d, want %d", i, sup[i], idx[i])
		}
	}
}

func TestVecNextSet(t *testing.T) {
	v := NewVec(256)
	v.Set(5, true)
	v.Set(64, true)
	v.Set(255, true)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 255}, {255, 255},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	v.Set(255, false)
	if got := v.NextSet(65); got != -1 {
		t.Errorf("NextSet past last = %d, want -1", got)
	}
}

func TestVecDotLinearity(t *testing.T) {
	// <a^b, c> == <a,c> ^ <b,c> must hold for all vectors.
	f := func(aw, bw, cw [3]uint64) bool {
		a, b, c := NewVec(192), NewVec(192), NewVec(192)
		copy(a.words, aw[:])
		copy(b.words, bw[:])
		copy(c.words, cw[:])
		ab := a.Clone()
		ab.Xor(b)
		return ab.Dot(c) == (a.Dot(c) != b.Dot(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		v := randVec(rng, 1+rng.Intn(100))
		back, err := VecFromString(v.String())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Fatal("String/VecFromString round trip failed")
		}
	}
	if _, err := VecFromString("01x"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestVecFromBits(t *testing.T) {
	v := VecFromBits([]bool{true, false, true})
	if !v.Get(0) || v.Get(1) || !v.Get(2) {
		t.Fatal("VecFromBits wrong bits")
	}
	if v.Len() != 3 {
		t.Fatalf("len = %d, want 3", v.Len())
	}
}

func TestVecAnd(t *testing.T) {
	a, _ := VecFromString("1101")
	b, _ := VecFromString("1011")
	a.And(b)
	if a.String() != "1001" {
		t.Fatalf("And = %s, want 1001", a.String())
	}
}

func TestVecZeroIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := randVec(rng, 129)
	v.Set(100, true)
	if v.IsZero() {
		t.Fatal("nonzero vector reported zero")
	}
	v.Zero()
	if !v.IsZero() {
		t.Fatal("Zero() left bits set")
	}
}
