// Package bitmat provides dense linear algebra over GF(2): bit vectors,
// bit matrices, Gaussian elimination, rank computation, matrix inversion
// and linear-system solving.
//
// It is the numeric substrate for two parts of the reproduction: the
// differential-fault-analysis baseline (which accumulates GF(2) linear
// equations over state bits and needs rank/solve), and the inverse of
// Keccak's θ step (a dense 1600×1600 linear map obtained by inverting
// the θ matrix once).
//
// Vectors and matrices are packed 64 bits per word. All operations are
// in-place unless the name says otherwise.
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a bit vector over GF(2), packed least-significant-bit first
// into 64-bit words. The number of valid bits is tracked explicitly;
// bits beyond N in the last word must be kept zero by all operations.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns a zero vector of n bits.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bitmat: negative vector length")
	}
	return &Vec{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Words exposes the backing words (read-only use expected).
func (v *Vec) Words() []uint64 { return v.words }

// Get returns bit i.
func (v *Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitmat: Get index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set sets bit i to b.
func (v *Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitmat: Set index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) & 63)
	if b {
		v.words[i>>6] |= mask
	} else {
		v.words[i>>6] &^= mask
	}
}

// Flip toggles bit i.
func (v *Vec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitmat: Flip index %d out of range [0,%d)", i, v.n))
	}
	v.words[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// Xor sets v ^= u. Both vectors must have the same length.
func (v *Vec) Xor(u *Vec) {
	if v.n != u.n {
		panic("bitmat: Xor length mismatch")
	}
	for i, w := range u.words {
		v.words[i] ^= w
	}
}

// And sets v &= u. Both vectors must have the same length.
func (v *Vec) And(u *Vec) {
	if v.n != u.n {
		panic("bitmat: And length mismatch")
	}
	for i, w := range u.words {
		v.words[i] &= w
	}
}

// Zero clears all bits.
func (v *Vec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// IsZero reports whether every bit is zero.
func (v *Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v *Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Dot returns the GF(2) inner product <v,u> (parity of the AND).
func (v *Vec) Dot(u *Vec) bool {
	if v.n != u.n {
		panic("bitmat: Dot length mismatch")
	}
	var acc uint64
	for i, w := range u.words {
		acc ^= v.words[i] & w
	}
	return bits.OnesCount64(acc)&1 == 1
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom copies u into v. Lengths must match.
func (v *Vec) CopyFrom(u *Vec) {
	if v.n != u.n {
		panic("bitmat: CopyFrom length mismatch")
	}
	copy(v.words, u.words)
}

// Equal reports whether v and u hold the same bits.
func (v *Vec) Equal(u *Vec) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range u.words {
		if v.words[i] != w {
			return false
		}
	}
	return true
}

// FirstSet returns the index of the lowest set bit, or -1 if none.
func (v *Vec) FirstSet() int {
	for i, w := range v.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextSet returns the index of the lowest set bit at or after from,
// or -1 if none.
func (v *Vec) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	wi := from >> 6
	w := v.words[wi] >> (uint(from) & 63)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < len(v.words); i++ {
		if v.words[i] != 0 {
			return i*64 + bits.TrailingZeros64(v.words[i])
		}
	}
	return -1
}

// Support returns the indices of all set bits in increasing order.
func (v *Vec) Support() []int {
	out := make([]int, 0, v.PopCount())
	for i := v.FirstSet(); i >= 0; i = v.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// String renders the vector as a 0/1 string, bit 0 first.
func (v *Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// VecFromBits builds a vector from a bool slice.
func VecFromBits(bits []bool) *Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromString parses a 0/1 string (bit 0 first).
func VecFromString(s string) (*Vec, error) {
	v := NewVec(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitmat: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}
