package bitmat

// LinearSystem incrementally accumulates GF(2) linear equations over a
// fixed set of variables and keeps them in row-echelon form, so callers
// can cheaply ask for the current rank, for the set of variables whose
// value is already forced, and for consistency.
//
// This is the engine behind the DFA baseline: every injected fault
// yields a batch of affine equations over internal-state bits, and the
// attack succeeds once the forced set covers the whole state.
type LinearSystem struct {
	n        int
	rows     []*Vec // each row: n coefficient bits + 1 rhs bit at index n
	pivot    []int  // pivot column of rows[i]
	conflict bool
}

// NewLinearSystem returns an empty system over n variables.
func NewLinearSystem(n int) *LinearSystem {
	return &LinearSystem{n: n}
}

// NumVars returns the number of variables.
func (s *LinearSystem) NumVars() int { return s.n }

// Rank returns the number of independent equations absorbed so far.
func (s *LinearSystem) Rank() int { return len(s.rows) }

// Inconsistent reports whether a contradictory equation (0 = 1) was added.
func (s *LinearSystem) Inconsistent() bool { return s.conflict }

// AddEquation adds the equation <coeffs, x> = rhs. It returns true if
// the equation was independent (increased the rank). Adding to an
// inconsistent system is a no-op returning false.
func (s *LinearSystem) AddEquation(coeffs *Vec, rhs bool) bool {
	if coeffs.Len() != s.n {
		panic("bitmat: AddEquation arity mismatch")
	}
	if s.conflict {
		return false
	}
	row := NewVec(s.n + 1)
	for i := coeffs.FirstSet(); i >= 0; i = coeffs.NextSet(i + 1) {
		row.Set(i, true)
	}
	if rhs {
		row.Set(s.n, true)
	}
	// Reduce against existing rows.
	for i, r := range s.rows {
		p := s.pivot[i]
		if row.Get(p) {
			row.Xor(r)
		}
	}
	lead := row.FirstSet()
	switch {
	case lead < 0:
		return false // redundant: 0 = 0
	case lead == s.n:
		s.conflict = true // 0 = 1
		return false
	}
	// Back-substitute into earlier rows to keep reduced form.
	for i, r := range s.rows {
		if r.Get(lead) {
			r.Xor(row)
			_ = i
		}
	}
	s.rows = append(s.rows, row)
	s.pivot = append(s.pivot, lead)
	return true
}

// Forced returns, for every variable whose value is already implied by
// the system, that value. In reduced row-echelon form a pivot variable
// is forced exactly when its row involves no other variable.
func (s *LinearSystem) Forced() map[int]bool {
	out := make(map[int]bool)
	if s.conflict {
		return out
	}
	for i, r := range s.rows {
		p := s.pivot[i]
		// Row forced iff the only coefficient bit set is the pivot.
		if next := r.NextSet(p + 1); next < 0 || next == s.n {
			out[p] = r.Get(s.n)
		}
	}
	return out
}

// Contradicts reports whether adding the equation <coeffs, x> = rhs
// would make the system inconsistent, without modifying it.
func (s *LinearSystem) Contradicts(coeffs *Vec, rhs bool) bool {
	if coeffs.Len() != s.n {
		panic("bitmat: Contradicts arity mismatch")
	}
	if s.conflict {
		return true
	}
	row := NewVec(s.n + 1)
	for i := coeffs.FirstSet(); i >= 0; i = coeffs.NextSet(i + 1) {
		row.Set(i, true)
	}
	if rhs {
		row.Set(s.n, true)
	}
	for i, r := range s.rows {
		if row.Get(s.pivot[i]) {
			row.Xor(r)
		}
	}
	return row.FirstSet() == s.n
}

// Assign fixes variable v to value b (adds the unit equation x_v = b).
func (s *LinearSystem) Assign(v int, b bool) bool {
	coeffs := NewVec(s.n)
	coeffs.Set(v, true)
	return s.AddEquation(coeffs, b)
}

// Solution returns a full assignment consistent with the system, with
// free variables set to false, or nil if the system is inconsistent.
func (s *LinearSystem) Solution() *Vec {
	if s.conflict {
		return nil
	}
	x := NewVec(s.n)
	// Reduced form: pivot value = rhs XOR (free vars in the row, all 0).
	for i, r := range s.rows {
		if r.Get(s.n) {
			x.Set(s.pivot[i], true)
		}
	}
	return x
}

// Evaluate checks an assignment against every stored equation.
func (s *LinearSystem) Evaluate(x *Vec) bool {
	if x.Len() != s.n {
		panic("bitmat: Evaluate arity mismatch")
	}
	for _, r := range s.rows {
		parity := false
		for i := r.FirstSet(); i >= 0 && i < s.n; i = r.NextSet(i + 1) {
			if x.Get(i) {
				parity = !parity
			}
		}
		if parity != r.Get(s.n) {
			return false
		}
	}
	return true
}
