package fault

import (
	"testing"

	"sha3afa/internal/keccak"
)

func TestUnalignedModelGeometry(t *testing.T) {
	if UnalignedByte.Width() != 8 || UnalignedByte.Stride() != 1 {
		t.Fatal("UnalignedByte geometry wrong")
	}
	if UnalignedByte.Windows() != keccak.StateBits-8+1 {
		t.Fatalf("UnalignedByte windows = %d", UnalignedByte.Windows())
	}
	if UnalignedWord16.Windows() != keccak.StateBits-16+1 {
		t.Fatalf("UnalignedWord16 windows = %d", UnalignedWord16.Windows())
	}
	if !Byte.Aligned() || UnalignedByte.Aligned() {
		t.Fatal("Aligned() misclassifies")
	}
}

func TestUnalignedParseAndString(t *testing.T) {
	for _, m := range UnalignedModels {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%s) = %v, %v", m, got, err)
		}
	}
}

func TestWindowCoverAligned(t *testing.T) {
	for _, j := range []int{0, 7, 8, 1599} {
		cover := Byte.WindowCover(j)
		if len(cover) != 1 || cover[0] != j/8 {
			t.Fatalf("aligned cover of bit %d = %v", j, cover)
		}
	}
}

func TestWindowCoverUnaligned(t *testing.T) {
	// Interior bit: covered by 8 sliding windows.
	cover := UnalignedByte.WindowCover(100)
	if len(cover) != 8 || cover[0] != 93 || cover[7] != 100 {
		t.Fatalf("cover of bit 100 = %v", cover)
	}
	// First bit: only window 0.
	if c := UnalignedByte.WindowCover(0); len(c) != 1 || c[0] != 0 {
		t.Fatalf("cover of bit 0 = %v", c)
	}
	// Last bit: clamped to the final window.
	c := UnalignedByte.WindowCover(1599)
	if c[len(c)-1] != UnalignedByte.Windows()-1 {
		t.Fatalf("cover of bit 1599 = %v", c)
	}
	// Every window in a cover actually covers the bit.
	for _, j := range []int{0, 3, 100, 1595, 1599} {
		for _, p := range UnalignedByte.WindowCover(j) {
			if j < p || j >= p+8 {
				t.Fatalf("window %d does not cover bit %d", p, j)
			}
		}
	}
}

func TestUnalignedDeltaPlacement(t *testing.T) {
	f := Fault{Model: UnalignedByte, Window: 13, Value: 0b10000001}
	d := f.Delta()
	if !d.Bit(13) || !d.Bit(20) || d.ToVec().PopCount() != 2 {
		t.Fatalf("unaligned delta wrong: %v", d.ToVec().Support())
	}
}

func TestUnalignedFaultFromDeltaCanonical(t *testing.T) {
	// A delta spanning bits 13..20 reconstructs with window = 13.
	var d keccak.State
	d.SetBit(13, true)
	d.SetBit(20, true)
	f, err := FaultFromDelta(UnalignedByte, &d)
	if err != nil {
		t.Fatal(err)
	}
	if f.Window != 13 || f.Value != 0b10000001 {
		t.Fatalf("canonical fault = %+v", f)
	}
	back := f.Delta()
	if !back.Equal(&d) {
		t.Fatal("canonical fault delta mismatch")
	}
	// Span 9 is rejected.
	d.SetBit(21, true)
	d.SetBit(13, false)
	d.SetBit(12, true)
	if _, err := FaultFromDelta(UnalignedByte, &d); err == nil {
		t.Fatal("9-bit span accepted as unaligned byte fault")
	}
}

func TestUnalignedFaultFromDeltaEndOfState(t *testing.T) {
	// Delta in the last byte: first-set-bit window would exceed the
	// window count and must be clamped.
	var d keccak.State
	d.SetBit(1599, true)
	f, err := FaultFromDelta(UnalignedByte, &d)
	if err != nil {
		t.Fatal(err)
	}
	back := f.Delta()
	if !back.Equal(&d) {
		t.Fatalf("end-of-state reconstruction wrong: %+v", f)
	}
}

func TestUnalignedInjectorValid(t *testing.T) {
	inj := NewInjector(UnalignedWord16, 3)
	for i := 0; i < 500; i++ {
		f := inj.Sample()
		if err := f.Validate(); err != nil {
			t.Fatalf("sampled invalid unaligned fault: %v", err)
		}
		d := f.Delta()
		sup := d.ToVec().Support()
		if len(sup) == 0 || sup[len(sup)-1]-sup[0] >= 16 {
			t.Fatalf("unaligned 16-bit fault span too wide: %v", sup)
		}
	}
}

func TestUnalignedCampaignRoundTrip(t *testing.T) {
	msg := []byte("unaligned campaign")
	correct, injs := Campaign(keccak.SHA3_256, msg, UnalignedByte, 22, 5, 77)
	if len(correct) == 0 || len(injs) != 5 {
		t.Fatal("campaign shape wrong")
	}
	for _, inj := range injs {
		d := inj.Fault.Delta()
		want := keccak.HashWithFault(keccak.SHA3_256, msg, 22, &d)
		if string(want) != string(inj.FaultyDigest) {
			t.Fatal("unaligned campaign digest mismatch")
		}
	}
}
