// Package fault defines the relaxed fault models of the paper and a
// software fault injector standing in for physical injection (clock /
// voltage glitching in the original evaluation). The analysis consumes
// only (digest, faulty digest) pairs plus the model's width, so the
// software injector exercises exactly the same code paths.
//
// A fault under model of width w flips an unknown non-zero pattern of
// w bits inside one unknown w-bit-aligned window of the 1600-bit state,
// at the θ input of a chosen round (round 22, the penultimate round,
// in the paper's attack).
package fault

import (
	"fmt"
	"math/rand"

	"sha3afa/internal/keccak"
)

// Model is a relaxed fault model, identified by its width.
type Model int

// The paper's four fault models.
const (
	SingleBit Model = iota // exactly one bit flips
	Byte                   // unknown non-zero pattern in one aligned byte
	Word16                 // ... in one aligned 16-bit window
	Word32                 // ... in one aligned 32-bit window
)

// Models lists all supported fault models, narrowest first.
var Models = []Model{SingleBit, Byte, Word16, Word32}

// Width returns the window width in bits.
func (m Model) Width() int {
	switch m {
	case SingleBit:
		return 1
	case Byte:
		return 8
	case Word16:
		return 16
	case Word32:
		return 32
	default:
		return unalignedWidth(m)
	}
}

// Windows returns the number of candidate windows in the state.
func (m Model) Windows() int {
	return windowsFor(keccak.StateBits, m.Width(), m.Stride())
}

// String names the model as the paper does.
func (m Model) String() string {
	switch m {
	case SingleBit:
		return "1-bit"
	case Byte:
		return "byte"
	case Word16:
		return "16-bit"
	case Word32:
		return "32-bit"
	case UnalignedByte:
		return "byte-unaligned"
	case UnalignedWord16:
		return "16-bit-unaligned"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Parse maps a model name to a Model.
func Parse(name string) (Model, error) {
	switch name {
	case "1-bit", "bit", "1":
		return SingleBit, nil
	case "byte", "8-bit", "8":
		return Byte, nil
	case "16-bit", "16":
		return Word16, nil
	case "32-bit", "32":
		return Word32, nil
	case "byte-unaligned", "8u":
		return UnalignedByte, nil
	case "16-bit-unaligned", "16u":
		return UnalignedWord16, nil
	default:
		return 0, fmt.Errorf("fault: unknown model %q", name)
	}
}

// Fault is one concrete fault: a window index and the non-zero XOR
// pattern injected into it.
type Fault struct {
	Model  Model
	Window int
	Value  uint64 // low Width() bits, non-zero
}

// BitOffset returns the global bit index of the window start.
func (f Fault) BitOffset() int { return f.Window * f.Model.Stride() }

// Delta expands the fault into a full 1600-bit state difference.
func (f Fault) Delta() keccak.State {
	var d keccak.State
	w := f.Model.Width()
	off := f.BitOffset()
	for i := 0; i < w; i++ {
		if f.Value>>uint(i)&1 == 1 {
			d.SetBit(off+i, true)
		}
	}
	return d
}

// Validate checks window range and value constraints.
func (f Fault) Validate() error {
	w := f.Model.Width()
	if f.Window < 0 || f.Window >= f.Model.Windows() {
		return fmt.Errorf("fault: window %d out of range [0,%d)", f.Window, f.Model.Windows())
	}
	if f.Value == 0 {
		return fmt.Errorf("fault: zero value is not a fault")
	}
	if w < 64 && f.Value>>uint(w) != 0 {
		return fmt.Errorf("fault: value %#x exceeds width %d", f.Value, w)
	}
	if f.Model == SingleBit && f.Value != 1 {
		return fmt.Errorf("fault: single-bit value must be 1")
	}
	return nil
}

// String formats the fault with its state coordinates.
func (f Fault) String() string {
	x, y, z := keccak.BitCoords(f.BitOffset())
	return fmt.Sprintf("%s fault @bit %d (lane x=%d y=%d, z=%d) value %#x",
		f.Model, f.BitOffset(), x, y, z, f.Value)
}

// FaultFromDelta reconstructs the (unique) fault of model m matching a
// state difference, or an error if the difference does not fit the
// model (wrong support width or misalignment).
func FaultFromDelta(m Model, d *keccak.State) (Fault, error) {
	w := m.Width()
	first, last := -1, -1
	for i := 0; i < keccak.StateBits; i++ {
		if d.Bit(i) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return Fault{}, fmt.Errorf("fault: zero difference")
	}
	var win int
	if m.Aligned() {
		win = first / w
		if last/w != win {
			return Fault{}, fmt.Errorf("fault: difference spans windows %d and %d", win, last/w)
		}
	} else {
		// Canonical sliding window: start at the first set bit.
		if last-first+1 > w {
			return Fault{}, fmt.Errorf("fault: difference span %d exceeds width %d", last-first+1, w)
		}
		win = first
		if max := m.Windows() - 1; win > max {
			win = max
		}
	}
	start := win * m.Stride()
	var val uint64
	for i := 0; i < w; i++ {
		if d.Bit(start + i) {
			val |= 1 << uint(i)
		}
	}
	f := Fault{Model: m, Window: win, Value: val}
	return f, f.Validate()
}

// Injector samples faults uniformly: window uniform over aligned
// windows, value uniform over non-zero w-bit patterns.
type Injector struct {
	model Model
	rng   *rand.Rand
}

// NewInjector returns a deterministic injector for reproducible
// campaigns.
func NewInjector(m Model, seed int64) *Injector {
	return &Injector{model: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the injector's fault model.
func (in *Injector) Model() Model { return in.model }

// Sample draws one fault.
func (in *Injector) Sample() Fault {
	w := in.model.Width()
	var val uint64
	for val == 0 {
		if w == 64 {
			val = in.rng.Uint64()
		} else {
			val = uint64(in.rng.Int63n(1 << uint(w)))
		}
	}
	if in.model == SingleBit {
		val = 1
	}
	return Fault{
		Model:  in.model,
		Window: in.rng.Intn(in.model.Windows()),
		Value:  val,
	}
}

// Injection couples a sampled fault with the faulty digest it produced.
type Injection struct {
	Fault        Fault
	FaultyDigest []byte
	// Kind is the simulator's ground truth about this injection (Clean
	// unless produced by a noisy campaign) — used by experiments to
	// score the attack's blame accuracy, never by the attack itself.
	Kind InjectionKind
}

// Campaign hashes msg under mode, injecting n independent faults at
// the θ input of the given round, and returns the injections together
// with the correct digest. Faults that happen to leave the digest
// unchanged are kept — the attacker cannot filter what it cannot see,
// and a "silent" fault still contributes constraints.
func Campaign(mode keccak.Mode, msg []byte, m Model, round, n int, seed int64) (correct []byte, injs []Injection) {
	correct = keccak.Sum(mode, msg)
	inj := NewInjector(m, seed)
	injs = make([]Injection, n)
	for i := range injs {
		flt := inj.Sample()
		delta := flt.Delta()
		injs[i] = Injection{
			Fault:        flt,
			FaultyDigest: keccak.HashWithFault(mode, msg, round, &delta),
		}
	}
	return correct, injs
}
