package fault

// The journal extension of the paper relaxes the fault models further:
// the faulted window need not be aligned to its width. This file adds
// sliding-window (stride-1) variants. An unaligned w-bit fault flips
// an unknown non-zero pattern inside SOME w consecutive state bits —
// 1593 candidate windows for a byte instead of 200, which enlarges
// both the attacker's uncertainty and the CNF search space.

// Unaligned relaxed fault models (sliding windows, stride 1).
const (
	UnalignedByte Model = iota + 100
	UnalignedWord16
)

// UnalignedModels lists the sliding-window variants.
var UnalignedModels = []Model{UnalignedByte, UnalignedWord16}

// Aligned reports whether the model's windows are width-aligned.
func (m Model) Aligned() bool { return m < 100 }

// Stride returns the distance between consecutive candidate windows.
func (m Model) Stride() int {
	if m.Aligned() {
		return m.Width()
	}
	return 1
}

// unalignedWidth maps the sliding models onto widths; the aligned
// cases are handled in Width directly.
func unalignedWidth(m Model) int {
	switch m {
	case UnalignedByte:
		return 8
	case UnalignedWord16:
		return 16
	default:
		panic("fault: unknown unaligned model")
	}
}

// WindowsFor returns candidate-window counts for any stride.
func windowsFor(stateBits, width, stride int) int {
	return (stateBits-width)/stride + 1
}

// WindowCover returns the candidate windows that cover state bit j —
// a single window for aligned models, up to Width() windows for
// sliding ones. Used by the CNF encoding of the fault constraint.
func (m Model) WindowCover(j int) []int {
	w := m.Width()
	if m.Aligned() {
		return []int{j / w}
	}
	lo := j - w + 1
	if lo < 0 {
		lo = 0
	}
	hi := j
	if max := m.Windows() - 1; hi > max {
		hi = max
	}
	out := make([]int, 0, hi-lo+1)
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out
}
