package fault

import (
	"fmt"
	"math/rand"

	"sha3afa/internal/keccak"
)

// This file models imperfect physical injection: real glitch campaigns
// (clock/voltage) produce a fraction of injections that miss entirely
// or corrupt the state in ways the assumed fault model cannot express.
// The noisy injector stands in for that degradation so campaigns can
// measure how the attack's recovery rate and fault budget respond as
// the precise→random spectrum is traversed.

// InjectionKind classifies a simulated injection relative to the
// assumed fault model — ground truth the attacker never sees, used by
// experiments to score blame accuracy.
type InjectionKind int

const (
	// Clean: an in-model fault (non-zero pattern in one window of the
	// fault round's θ input).
	Clean InjectionKind = iota
	// Dud: the injection failed; the state is untouched and the
	// "faulty" digest equals the correct one. Out-of-model, because the
	// model requires a non-zero difference.
	Dud
	// Violation: the state was corrupted outside the model — the fault
	// pattern smeared across a window boundary, or the glitch landed
	// one round early.
	Violation
)

func (k InjectionKind) String() string {
	switch k {
	case Clean:
		return "clean"
	case Dud:
		return "dud"
	case Violation:
		return "violation"
	default:
		return fmt.Sprintf("InjectionKind(%d)", int(k))
	}
}

// Noise configures the out-of-model fraction of a simulated campaign.
// Probabilities are per injection and mutually exclusive (a draw is a
// dud, a violation, or clean); Dud+Violation must not exceed 1.
type Noise struct {
	// Dud is the probability an injection fails outright.
	Dud float64
	// Violation is the probability an injection corrupts the state
	// outside the fault model (window smear or wrong round).
	Violation float64
}

// Enabled reports whether any noise is configured.
func (n Noise) Enabled() bool { return n.Dud > 0 || n.Violation > 0 }

// Validate checks the probabilities are sane.
func (n Noise) Validate() error {
	if n.Dud < 0 || n.Violation < 0 || n.Dud+n.Violation > 1 {
		return fmt.Errorf("fault: invalid noise %+v (need 0 <= dud, violation and dud+violation <= 1)", n)
	}
	return nil
}

func (n Noise) String() string {
	return fmt.Sprintf("dud=%.0f%% violation=%.0f%%", 100*n.Dud, 100*n.Violation)
}

// NoisyInjector samples faults like Injector but degrades a configured
// fraction of them into duds or model violations. The in-model fault
// stream is drawn from its own generator, and all noise decisions from
// a second one derived from the same seed — so for a fixed seed the
// CLEAN injections are identical across noise levels (and to a plain
// Injector), which keeps robustness sweeps paired.
type NoisyInjector struct {
	inj   *Injector
	noise Noise
	rng   *rand.Rand // noise decisions only
}

// NewNoisyInjector returns a deterministic noisy injector.
func NewNoisyInjector(m Model, seed int64, noise Noise) *NoisyInjector {
	if err := noise.Validate(); err != nil {
		panic(err)
	}
	return &NoisyInjector{
		inj:   NewInjector(m, seed),
		noise: noise,
		// A fixed odd constant decorrelates the two streams without
		// losing determinism in the seed.
		rng: rand.New(rand.NewSource(seed ^ 0x5deece66d)),
	}
}

// Model returns the injector's fault model.
func (ni *NoisyInjector) Model() Model { return ni.inj.Model() }

// SampleNoisy draws one injection attempt. It returns the intended
// in-model fault, the state difference actually injected, the round
// offset of the injection (0 normally, -1 when the glitch landed one
// round early), and the ground-truth kind. For a Dud the returned
// delta is zero; callers should leave the computation unfaulted.
func (ni *NoisyInjector) SampleNoisy() (f Fault, delta keccak.State, roundOff int, kind InjectionKind) {
	f = ni.inj.Sample()
	r := ni.rng.Float64()
	switch {
	case r < ni.noise.Dud:
		return f, keccak.State{}, 0, Dud
	case r < ni.noise.Dud+ni.noise.Violation:
		delta, roundOff = ni.violate(f)
		return f, delta, roundOff, Violation
	default:
		return f, f.Delta(), 0, Clean
	}
}

// violate turns an intended fault into an out-of-model corruption:
// half the time its pattern smears one bit across a window boundary,
// half the time the full pattern lands one round early.
func (ni *NoisyInjector) violate(f Fault) (delta keccak.State, roundOff int) {
	delta = f.Delta()
	if ni.rng.Intn(2) == 0 {
		delta.SetBit(ni.smearBit(f), true)
		return delta, 0
	}
	return delta, -1
}

// smearBit picks a state bit adjacent to the fault's window but
// outside it, so the resulting difference spans two windows.
func (ni *NoisyInjector) smearBit(f Fault) int {
	w := f.Model.Width()
	off := f.BitOffset()
	if next := off + w; next < keccak.StateBits {
		return next // first bit of the following window
	}
	return off - 1 // window at the state's end: spill backwards
}

// NoisyCampaign is Campaign under injection noise: it hashes msg under
// mode, attempts n injections at the θ input of the given round, and
// returns the observations with their ground-truth kinds. Dud attempts
// yield the correct digest; violations yield digests no in-model fault
// (almost surely) explains. With zero noise the injections equal those
// of Campaign with the same seed.
func NoisyCampaign(mode keccak.Mode, msg []byte, m Model, round, n int, seed int64, noise Noise) (correct []byte, injs []Injection) {
	correct = keccak.Sum(mode, msg)
	ni := NewNoisyInjector(m, seed, noise)
	injs = make([]Injection, n)
	for i := range injs {
		flt, delta, roundOff, kind := ni.SampleNoisy()
		injs[i] = Injection{Fault: flt, Kind: kind}
		if kind == Dud {
			injs[i].FaultyDigest = append([]byte(nil), correct...)
			continue
		}
		injs[i].FaultyDigest = keccak.HashWithFault(mode, msg, round+roundOff, &delta)
	}
	return correct, injs
}
