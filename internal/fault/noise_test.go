package fault

import (
	"bytes"
	"testing"

	"sha3afa/internal/keccak"
)

func TestNoiseValidate(t *testing.T) {
	for _, n := range []Noise{{-0.1, 0}, {0, -0.1}, {0.6, 0.6}} {
		if n.Validate() == nil {
			t.Errorf("Noise%+v validated", n)
		}
	}
	if err := (Noise{0.1, 0.05}).Validate(); err != nil {
		t.Fatal(err)
	}
	if (Noise{}).Enabled() {
		t.Fatal("zero noise reports enabled")
	}
	if !(Noise{Dud: 0.1}).Enabled() {
		t.Fatal("dud noise reports disabled")
	}
}

func TestNoisyCampaignZeroNoiseMatchesCampaign(t *testing.T) {
	mode, msg := keccak.SHA3_256, []byte("noise-free equivalence")
	c1, i1 := Campaign(mode, msg, Byte, 22, 20, 99)
	c2, i2 := NoisyCampaign(mode, msg, Byte, 22, 20, 99, Noise{})
	if !bytes.Equal(c1, c2) {
		t.Fatal("correct digests differ")
	}
	for k := range i1 {
		if i1[k].Fault != i2[k].Fault || !bytes.Equal(i1[k].FaultyDigest, i2[k].FaultyDigest) {
			t.Fatalf("injection %d differs: %+v vs %+v", k, i1[k], i2[k])
		}
		if i2[k].Kind != Clean {
			t.Fatalf("injection %d kind = %s, want clean", k, i2[k].Kind)
		}
	}
}

func TestNoisyCampaignCleanStreamPairedAcrossNoiseLevels(t *testing.T) {
	// The intended fault stream must not depend on the noise level, so
	// robustness sweeps compare like with like.
	mode, msg := keccak.SHA3_256, []byte("paired streams")
	_, quiet := NoisyCampaign(mode, msg, Byte, 22, 30, 7, Noise{})
	_, loud := NoisyCampaign(mode, msg, Byte, 22, 30, 7, Noise{Dud: 0.3, Violation: 0.3})
	for k := range quiet {
		if quiet[k].Fault != loud[k].Fault {
			t.Fatalf("intended fault %d differs across noise levels", k)
		}
		if loud[k].Kind == Clean && !bytes.Equal(quiet[k].FaultyDigest, loud[k].FaultyDigest) {
			t.Fatalf("clean injection %d digest differs across noise levels", k)
		}
	}
}

func TestNoisyCampaignGroundTruth(t *testing.T) {
	mode, msg := keccak.SHA3_256, []byte("ground truth")
	correct, injs := NoisyCampaign(mode, msg, Byte, 22, 400, 5, Noise{Dud: 0.10, Violation: 0.05})
	var duds, violations, cleans int
	for _, inj := range injs {
		switch inj.Kind {
		case Dud:
			duds++
			if !bytes.Equal(inj.FaultyDigest, correct) {
				t.Fatal("dud digest differs from correct digest")
			}
		case Violation:
			violations++
			if bytes.Equal(inj.FaultyDigest, correct) {
				t.Fatal("violation produced the correct digest")
			}
		default:
			cleans++
			delta := inj.Fault.Delta()
			want := keccak.HashWithFault(mode, msg, 22, &delta)
			if !bytes.Equal(inj.FaultyDigest, want) {
				t.Fatal("clean injection digest does not match its fault")
			}
		}
	}
	// Seeded draws: the realized rates must be in the right ballpark.
	if duds < 20 || duds > 70 {
		t.Fatalf("dud count %d implausible for p=0.10 over 400", duds)
	}
	if violations < 5 || violations > 45 {
		t.Fatalf("violation count %d implausible for p=0.05 over 400", violations)
	}
	if cleans == 0 {
		t.Fatal("no clean injections")
	}
}

func TestViolationsAreOutOfModel(t *testing.T) {
	// Window-smear violations must not decode as any in-model fault.
	ni := NewNoisyInjector(Byte, 3, Noise{Violation: 1})
	smears := 0
	for i := 0; i < 200; i++ {
		f, delta, roundOff, kind := ni.SampleNoisy()
		if kind != Violation {
			t.Fatalf("kind = %s, want violation", kind)
		}
		if roundOff == -1 {
			// Wrong-round violation: the delta itself is in-model; the
			// violation is temporal.
			if _, err := FaultFromDelta(Byte, &delta); err != nil {
				t.Fatalf("wrong-round delta should be in-model: %v", err)
			}
			continue
		}
		smears++
		if _, err := FaultFromDelta(Byte, &delta); err == nil {
			t.Fatalf("smeared delta of %v decodes as an in-model fault", f)
		}
	}
	if smears == 0 {
		t.Fatal("no smear violations sampled")
	}
}

func TestInjectionKindStrings(t *testing.T) {
	for k, want := range map[InjectionKind]string{Clean: "clean", Dud: "dud", Violation: "violation"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
