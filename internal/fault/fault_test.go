package fault

import (
	"bytes"
	"testing"

	"sha3afa/internal/keccak"
)

func TestModelWidths(t *testing.T) {
	want := map[Model]int{SingleBit: 1, Byte: 8, Word16: 16, Word32: 32}
	for m, w := range want {
		if m.Width() != w {
			t.Errorf("%s width = %d, want %d", m, m.Width(), w)
		}
		if m.Windows()*m.Width() != keccak.StateBits {
			t.Errorf("%s windows don't tile the state", m)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range Models {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := Parse("nonsense"); err == nil {
		t.Error("Parse accepted nonsense")
	}
}

func TestDeltaPlacement(t *testing.T) {
	f := Fault{Model: Byte, Window: 3, Value: 0b10100001}
	d := f.Delta()
	for i := 0; i < keccak.StateBits; i++ {
		want := i == 24 || i == 29 || i == 31
		if d.Bit(i) != want {
			t.Fatalf("delta bit %d = %v", i, d.Bit(i))
		}
	}
	if f.BitOffset() != 24 {
		t.Fatalf("BitOffset = %d", f.BitOffset())
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		f  Fault
		ok bool
	}{
		{Fault{SingleBit, 0, 1}, true},
		{Fault{SingleBit, 1599, 1}, true},
		{Fault{SingleBit, 1600, 1}, false}, // window out of range
		{Fault{SingleBit, 0, 2}, false},    // single-bit value must be 1
		{Fault{Byte, 0, 0}, false},         // zero value
		{Fault{Byte, 0, 0x100}, false},     // exceeds width
		{Fault{Byte, 199, 0xFF}, true},
		{Fault{Word16, 99, 0xFFFF}, true},
		{Fault{Word32, 49, 0xFFFFFFFF}, true},
		{Fault{Word32, 50, 1}, false},
	}
	for i, c := range cases {
		if err := c.f.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): Validate = %v", i, c.f, err)
		}
	}
}

func TestFaultFromDelta(t *testing.T) {
	orig := Fault{Model: Word16, Window: 42, Value: 0x8001}
	d := orig.Delta()
	got, err := FaultFromDelta(Word16, &d)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip %+v -> %+v", orig, got)
	}
	// A delta spanning two byte windows is not a byte fault.
	var span keccak.State
	span.SetBit(7, true)
	span.SetBit(8, true)
	if _, err := FaultFromDelta(Byte, &span); err == nil {
		t.Fatal("cross-window delta accepted")
	}
	// But it is a valid 16-bit fault.
	if f, err := FaultFromDelta(Word16, &span); err != nil || f.Window != 0 || f.Value != 0x180 {
		t.Fatalf("16-bit reconstruction wrong: %+v %v", f, err)
	}
	var zero keccak.State
	if _, err := FaultFromDelta(Byte, &zero); err == nil {
		t.Fatal("zero delta accepted")
	}
}

func TestInjectorDistribution(t *testing.T) {
	inj := NewInjector(Byte, 1)
	seenWindows := map[int]bool{}
	for i := 0; i < 5000; i++ {
		f := inj.Sample()
		if err := f.Validate(); err != nil {
			t.Fatalf("sampled invalid fault: %v", err)
		}
		seenWindows[f.Window] = true
	}
	// All 200 byte windows should appear in 5000 draws.
	if len(seenWindows) != Byte.Windows() {
		t.Fatalf("only %d/%d windows sampled", len(seenWindows), Byte.Windows())
	}
}

func TestInjectorSingleBit(t *testing.T) {
	inj := NewInjector(SingleBit, 2)
	for i := 0; i < 100; i++ {
		f := inj.Sample()
		if f.Value != 1 {
			t.Fatal("single-bit fault with value != 1")
		}
		if d := f.Delta(); d.ToVec().PopCount() != 1 {
			t.Fatal("single-bit delta flips several bits")
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(Word32, 7), NewInjector(Word32, 7)
	for i := 0; i < 50; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed produced different faults")
		}
	}
}

func TestCampaign(t *testing.T) {
	msg := []byte("campaign message")
	correct, injs := Campaign(keccak.SHA3_256, msg, Byte, 22, 8, 99)
	if !bytes.Equal(correct, keccak.Sum(keccak.SHA3_256, msg)) {
		t.Fatal("campaign correct digest wrong")
	}
	if len(injs) != 8 {
		t.Fatalf("campaign produced %d injections", len(injs))
	}
	for i, in := range injs {
		// Re-derive the faulty digest independently.
		d := in.Fault.Delta()
		want := keccak.HashWithFault(keccak.SHA3_256, msg, 22, &d)
		if !bytes.Equal(in.FaultyDigest, want) {
			t.Fatalf("injection %d digest mismatch", i)
		}
	}
	// Reproducibility.
	_, injs2 := Campaign(keccak.SHA3_256, msg, Byte, 22, 8, 99)
	for i := range injs {
		if injs[i].Fault != injs2[i].Fault {
			t.Fatal("campaign not reproducible")
		}
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Model: Byte, Window: 8, Value: 0xFF} // bit 64 = lane (1,0)
	s := f.String()
	if s == "" || f.Model.String() != "byte" {
		t.Fatal("fault formatting broken")
	}
}
