package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketSemantics(t *testing.T) {
	m := NewMetrics()
	h := m.HistogramWith("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5} {
		h.Observe(v)
	}
	cum, total := h.Cumulative()
	// le semantics: a sample equal to a bound belongs to that bucket.
	want := []int64{2, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (cum=%v)", i, cum[i], w, cum)
		}
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	n, sum := h.Value()
	if n != 6 || sum != 14 {
		t.Fatalf("Value = (%d, %v), want (6, 14)", n, sum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)                   // must not panic
	h.ObserveDuration(time.Second) // must not panic
	if n, s := h.Value(); n != 0 || s != 0 {
		t.Fatalf("nil Value = (%d, %v)", n, s)
	}
}

func TestHistogramRegistryReuse(t *testing.T) {
	m := NewMetrics()
	a := m.HistogramWith("x", []float64{1, 2})
	b := m.HistogramWith("x", []float64{10, 20, 30}) // bounds ignored: first registration wins
	if a != b {
		t.Fatal("same name must return the same histogram")
	}
	if got := len(b.Bounds()); got != 2 {
		t.Fatalf("bounds len = %d, want 2 (original layout kept)", got)
	}
	if names := m.Names("histogram"); len(names) != 1 || names[0] != "x" {
		t.Fatalf("Names(histogram) = %v", names)
	}
}

// Run under -race: concurrent observation must be safe and lose no
// samples.
func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("conc")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) / 1000)
				if i%64 == 0 {
					h.Cumulative() // concurrent reads race-check the copy path
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := h.Value(); n != goroutines*per {
		t.Fatalf("count = %d, want %d", n, goroutines*per)
	}
	if _, total := h.Cumulative(); total != goroutines*per {
		t.Fatalf("cumulative total = %d, want %d", total, goroutines*per)
	}
}

func TestTaggedRecorder(t *testing.T) {
	tr := NewTrace(nil, 16)
	rec := Tagged(tr, F("trace_id", "abc"), F("job", "j-1"))
	rec.Emit("service", "job.start", F("attempt", 1))
	end := rec.Span("service", "phase")
	end(F("ok", true))
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Fields["trace_id"] != "abc" || e.Fields["job"] != "j-1" {
			t.Fatalf("event %s missing tags: %v", e.Ev, e.Fields)
		}
	}
	if evs[0].Fields["attempt"] != 1 {
		t.Fatalf("caller fields lost: %v", evs[0].Fields)
	}
	if evs[2].Ev != "phase.end" || evs[2].Fields["ok"] != true {
		t.Fatalf("span end malformed: %+v", evs[2])
	}
	if Tagged(nil, F("a", 1)) != nil {
		t.Fatal("Tagged(nil) must stay nil")
	}
	if got := Tagged(tr); got != Recorder(tr) {
		t.Fatal("Tagged with no tags must collapse to the input")
	}
}

func TestMultiRecorder(t *testing.T) {
	a, b := NewTrace(nil, 8), NewTrace(nil, 8)
	rec := Multi(nil, a, nil, b)
	rec.Emit("s", "ev")
	end := rec.Span("s", "span")
	end()
	for i, tr := range []*Trace{a, b} {
		if got := len(tr.Events()); got != 3 {
			t.Fatalf("sink %d saw %d events, want 3", i, got)
		}
	}
	// Metrics routes to the first live recorder only.
	if rec.Metrics() != a.Metrics() {
		t.Fatal("Multi.Metrics must be the first recorder's registry")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi with no live recorders must be nil")
	}
	if got := Multi(nil, b); got != Recorder(b) {
		t.Fatal("Multi with one live recorder must collapse to it")
	}
}

// Span closers now feed a histogram alongside the legacy timer.
func TestSpanFeedsHistogram(t *testing.T) {
	tr := NewTrace(nil, 4)
	end := tr.Span("attack", "attack.solve")
	end()
	if n, _ := tr.Metrics().Histogram("attack.solve").Value(); n != 1 {
		t.Fatalf("histogram count = %d, want 1", n)
	}
	if n, _ := tr.Metrics().Timer("attack.solve").Value(); n != 1 {
		t.Fatalf("timer count = %d, want 1", n)
	}
}

func TestAppendJSONL(t *testing.T) {
	tr := NewTrace(nil, 4)
	tr.Emit("s", "one", F("k", "v"))
	tr.Emit("s", "two")
	out := AppendJSONL(nil, tr.Events())
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2\n%s", lines, out)
	}
}
