package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The live debug endpoint: -debug-addr :6060 serves expvar-style
// metrics, the in-memory event ring, and the standard pprof handlers —
// the long-campaign replacement for the one-shot -cpuprofile and
// -memprofile flags (profiles can be pulled at any point of a
// multi-hour batch instead of only at exit).

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
}

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// DebugMux returns the standard debug mux over this trace:
//
//	/debug/metrics  JSON snapshot of every counter/gauge/timer/histogram
//	/debug/trace    JSON array of the event ring (most recent events)
//	/debug/pprof/*  the standard runtime profiles
//	/metrics        Prometheus text exposition of the same registry
//
// ServeDebug mounts it on its own listener; servers with a mux of
// their own (the attack daemon) mount it alongside their API routes so
// one port serves both.
func (t *Trace) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		_ = t.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Events())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts an HTTP server on addr exposing DebugMux's
// endpoints. It returns once the listener is bound; the server runs
// until Close.
func (t *Trace) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: t.DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// MountDebug is the shared -debug-addr wiring of the command-line
// tools: when addr is non-empty it starts the debug endpoint and
// announces it on w (linePrefix lets DIMACS-style outputs keep their
// comment leader). The returned stop function is always non-nil and
// safe to defer.
func (t *Trace) MountDebug(addr string, w io.Writer, linePrefix string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ds, err := t.ServeDebug(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%sdebug endpoint on http://%s/debug/metrics\n", linePrefix, ds.Addr)
	return func() { _ = ds.Close() }, nil
}

// StartProgress runs a live ticker printing one compact progress line
// to w every interval: cumulative solver work (with propagation and
// conflict rates over the last tick), attack solve/campaign run counts,
// and evictions. It returns a stop function that halts the ticker and
// prints one final line. The well-known names it reads are the ones
// the instrumented layers maintain (sat.conflicts, sat.propagations,
// attack.solve, campaign.runs, attack.evictions).
func StartProgress(r Recorder, w io.Writer, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var lastConf, lastProps int64
		last := time.Now()
		line := func() {
			s := r.Metrics().Snapshot()
			now := time.Now()
			dt := now.Sub(last).Seconds()
			conf, props := s.Counters["sat.conflicts"], s.Counters["sat.propagations"]
			confRate, propRate := 0.0, 0.0
			if dt > 0 {
				confRate = float64(conf-lastConf) / dt
				propRate = float64(props-lastProps) / dt
			}
			lastConf, lastProps, last = conf, props, now
			solves := s.Timers["attack.solve"].Count
			fmt.Fprintf(w, "[obs] runs=%d solves=%d conflicts=%s (%s/s) props=%s (%s/s) evictions=%d\n",
				s.Counters["campaign.runs"], solves,
				human(conf), human(int64(confRate)),
				human(props), human(int64(propRate)),
				s.Counters["attack.evictions"])
		}
		for {
			select {
			case <-done:
				line()
				return
			case <-tick.C:
				line()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// human renders a count with k/M suffixes for the ticker line.
func human(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
