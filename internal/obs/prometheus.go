package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the metric
// registry. The output is deterministic — sections in a fixed order
// (counters, gauges, histograms, timers) and names sorted within each
// section — so it can be golden-tested and diffed across scrapes.
//
// Mapping rules:
//
//   - counter "service.finished"   → service_finished_total (TYPE counter)
//   - gauge   "service.queue_depth"→ service_queue_depth (TYPE gauge)
//   - histogram "service.attempt"  → service_attempt_seconds (TYPE
//     histogram): cumulative _bucket{le="..."} lines ending at
//     le="+Inf", plus _sum (seconds) and _count
//   - timer "attack.solve"         → attack_solve_seconds (TYPE
//     summary): _sum (seconds) + _count — but a timer whose raw name is
//     also registered as a histogram is skipped entirely, because spans
//     feed both and emitting both would duplicate the series
//
// ContentTypePrometheus is the matching Content-Type header value.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric to w in Prometheus
// text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	type named[T any] struct {
		name string
		v    T
	}
	collect := func() (cs []named[*Counter], gs []named[*Gauge], hs []named[*Histogram], ts []named[*Timer], shadowed map[string]bool) {
		m.mu.Lock()
		defer m.mu.Unlock()
		shadowed = make(map[string]bool, len(m.histograms))
		for n, c := range m.counters {
			cs = append(cs, named[*Counter]{n, c})
		}
		for n, g := range m.gauges {
			gs = append(gs, named[*Gauge]{n, g})
		}
		for n, h := range m.histograms {
			hs = append(hs, named[*Histogram]{n, h})
			shadowed[n] = true
		}
		for n, t := range m.timers {
			ts = append(ts, named[*Timer]{n, t})
		}
		return
	}
	cs, gs, hs, ts, shadowed := collect()
	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })

	var b strings.Builder
	for _, c := range cs {
		name := sanitizeMetricName(c.name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, c.v.Value())
	}
	for _, g := range gs {
		name := sanitizeMetricName(g.name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, g.v.Value())
	}
	for _, h := range hs {
		name := sanitizeMetricName(h.name) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		cum, total := h.v.Cumulative()
		for i, bound := range h.v.bounds {
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", name, escapeLabelValue(formatFloat(bound)), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
		_, sum := h.v.Value()
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, total)
	}
	for _, t := range ts {
		if shadowed[t.name] {
			continue
		}
		name := sanitizeMetricName(t.name) + "_seconds"
		n, d := t.v.Value()
		fmt.Fprintf(&b, "# TYPE %s summary\n%s_sum %s\n%s_count %d\n",
			name, name, formatFloat(d.Seconds()), name, n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid byte becomes
// an underscore ("service.queue_wait" → "service_queue_wait").
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_') // names must not start with a digit
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
