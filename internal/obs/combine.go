package obs

import "encoding/json"

// Recorder combinators. The service layer composes one logical
// per-attempt recorder out of three physical sinks — the daemon-wide
// trace, the job's on-disk JSONL event tail, and the in-memory flight
// ring — and stamps every event with correlation tags (trace_id, job,
// attempt, owner). Tagged and Multi build that composition without any
// of the underlying emitters knowing about it.

// Tagged returns a Recorder that prepends the given fields to every
// event emitted through it (both halves of a span included), so
// correlation keys like trace_id ride along without threading them
// through every call site. A nil inner recorder or an empty tag list
// collapses to the input.
func Tagged(r Recorder, tags ...Field) Recorder {
	if r == nil || len(tags) == 0 {
		return r
	}
	return &taggedRecorder{r: r, tags: tags}
}

type taggedRecorder struct {
	r    Recorder
	tags []Field
}

func (t *taggedRecorder) merge(fields []Field) []Field {
	out := make([]Field, 0, len(t.tags)+len(fields))
	out = append(out, t.tags...)
	out = append(out, fields...)
	return out
}

func (t *taggedRecorder) Emit(src, ev string, fields ...Field) {
	t.r.Emit(src, ev, t.merge(fields)...)
}

func (t *taggedRecorder) Span(src, name string, fields ...Field) func(fields ...Field) {
	end := t.r.Span(src, name, t.merge(fields)...)
	return func(fields ...Field) { end(t.merge(fields)...) }
}

func (t *taggedRecorder) Metrics() *Metrics { return t.r.Metrics() }

// Multi returns a Recorder fanning every event out to all non-nil
// recorders. Metrics() (and therefore span timer/histogram feeding)
// belongs to the FIRST recorder only, so shared registries keep a
// single authoritative count — order the shared sink first. Zero live
// recorders collapse to nil, one collapses to itself.
func Multi(rs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiRecorder(live)
}

type multiRecorder []Recorder

func (m multiRecorder) Emit(src, ev string, fields ...Field) {
	for _, r := range m {
		r.Emit(src, ev, fields...)
	}
}

func (m multiRecorder) Span(src, name string, fields ...Field) func(fields ...Field) {
	ends := make([]func(...Field), len(m))
	for i, r := range m {
		ends[i] = r.Span(src, name, fields...)
	}
	return func(fields ...Field) {
		for _, end := range ends {
			end(fields...)
		}
	}
}

func (m multiRecorder) Metrics() *Metrics { return m[0].Metrics() }

// AppendJSONL appends the JSONL encoding of events to buf (one line
// per event, the same shape the Trace sink writes); used to persist a
// flight-recorder ring.
func AppendJSONL(buf []byte, events []Event) []byte {
	for _, e := range events {
		data, err := json.Marshal(e)
		if err != nil {
			continue
		}
		buf = append(buf, data...)
		buf = append(buf, '\n')
	}
	return buf
}
