package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Typed metrics. Handles are cheap to cache (Counter/Gauge/Timer
// lookups take the registry lock; Add/Set/Observe on a handle are a
// single atomic each), and a snapshot of everything is served by the
// debug endpoint and consumed by the phase-breakdown emitters.

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations (count + total nanoseconds).
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe adds one duration sample.
func (t *Timer) Observe(d time.Duration) {
	t.n.Add(1)
	t.ns.Add(int64(d))
}

// Value returns the sample count and accumulated total.
func (t *Timer) Value() (count int64, total time.Duration) {
	return t.n.Load(), time.Duration(t.ns.Load())
}

// Metrics is a named registry of counters, gauges and timers.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (m *Metrics) Timer(name string) *Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.timers[name]
	if !ok {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// TimerValue is one timer in a snapshot.
type TimerValue struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Snapshot is a point-in-time copy of every metric, in the JSON shape
// the /debug/metrics endpoint serves.
type Snapshot struct {
	Counters map[string]int64      `json:"counters"`
	Gauges   map[string]int64      `json:"gauges"`
	Timers   map[string]TimerValue `json:"timers"`
}

// Snapshot copies every registered metric.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]int64, len(m.gauges)),
		Timers:   make(map[string]TimerValue, len(m.timers)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range m.timers {
		n, total := t.Value()
		s.Timers[name] = TimerValue{Count: n, TotalMS: round2(total.Seconds() * 1e3)}
	}
	return s
}

// Names returns the sorted names of one metric kind ("counter",
// "gauge" or "timer"); handy for deterministic test output.
func (m *Metrics) Names(kind string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	switch kind {
	case "counter":
		for n := range m.counters {
			out = append(out, n)
		}
	case "gauge":
		for n := range m.gauges {
			out = append(out, n)
		}
	case "timer":
		for n := range m.timers {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
