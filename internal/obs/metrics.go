package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Typed metrics. Handles are cheap to cache (Counter/Gauge/Timer
// lookups take the registry lock; Add/Set/Observe on a handle are a
// single atomic each), and a snapshot of everything is served by the
// debug endpoint and consumed by the phase-breakdown emitters.

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates durations (count + total nanoseconds).
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe adds one duration sample.
func (t *Timer) Observe(d time.Duration) {
	t.n.Add(1)
	t.ns.Add(int64(d))
}

// Value returns the sample count and accumulated total.
func (t *Timer) Value() (count int64, total time.Duration) {
	return t.n.Load(), time.Duration(t.ns.Load())
}

// Metrics is a named registry of counters, gauges, timers and
// histograms.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (m *Metrics) Timer(name string) *Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.timers[name]
	if !ok {
		t = &Timer{}
		m.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram with the default duration
// buckets (DefBuckets), creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	return m.HistogramWith(name, DefBuckets)
}

// HistogramWith returns the named histogram, creating it with the
// given bucket upper bounds on first use. An already-registered
// histogram keeps its original buckets regardless of bounds.
func (m *Metrics) HistogramWith(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		m.histograms[name] = h
	}
	return h
}

// TimerValue is one timer in a snapshot.
type TimerValue struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// HistogramBucket is one cumulative bucket in a snapshot. LE is the
// formatted upper bound ("0.05", "+Inf") because +Inf has no JSON
// number encoding.
type HistogramBucket struct {
	LE string `json:"le"`
	N  int64  `json:"n"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, in the JSON shape
// the /debug/metrics endpoint serves.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Timers     map[string]TimerValue     `json:"timers"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies every registered metric.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(m.counters)),
		Gauges:     make(map[string]int64, len(m.gauges)),
		Timers:     make(map[string]TimerValue, len(m.timers)),
		Histograms: make(map[string]HistogramValue, len(m.histograms)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range m.timers {
		n, total := t.Value()
		s.Timers[name] = TimerValue{Count: n, TotalMS: round2(total.Seconds() * 1e3)}
	}
	for name, h := range m.histograms {
		cum, total := h.Cumulative()
		_, sum := h.Value()
		hv := HistogramValue{Count: total, Sum: sum}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, HistogramBucket{LE: formatFloat(b), N: cum[i]})
		}
		hv.Buckets = append(hv.Buckets, HistogramBucket{LE: "+Inf", N: total})
		s.Histograms[name] = hv
	}
	return s
}

// Names returns the sorted names of one metric kind ("counter",
// "gauge", "timer" or "histogram"); handy for deterministic test
// output.
func (m *Metrics) Names(kind string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	switch kind {
	case "counter":
		for n := range m.counters {
			out = append(out, n)
		}
	case "gauge":
		for n := range m.gauges {
			out = append(out, n)
		}
	case "timer":
		for n := range m.timers {
			out = append(out, n)
		}
	case "histogram":
		for n := range m.histograms {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
