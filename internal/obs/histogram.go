package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Fixed-bucket histograms. Like the other metric kinds, a handle is
// cheap to cache and every observation is lock-free (one binary search
// over the bounds plus three atomics), so histograms are safe to feed
// from the solver hot path, portfolio members and the service worker
// pool concurrently. The bucket layout is frozen at creation; the
// exposition side (prometheus.go) renders the buckets cumulatively
// with `le` labels, Prometheus-style.

// DefBuckets are the default duration bucket upper bounds, in seconds.
// They span the latencies this system actually produces: sub-ms lease
// heartbeats and queue pops at the bottom, multi-minute relaxed solves
// at the top.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram counts observations into fixed buckets. The zero value is
// not usable; obtain handles from Metrics.Histogram/HistogramWith. A
// nil *Histogram ignores observations, mirroring the nil-Recorder
// convention of the rest of the package.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last slot is the +Inf bucket
	n      atomic.Int64
	sum    atomicFloat64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample (for durations: seconds). Buckets have
// `le` semantics: a sample lands in the first bucket whose bound is
// >= the value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records one duration sample, in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Value returns the sample count and the sum of all observed values.
func (h *Histogram) Value() (count int64, sum float64) {
	if h == nil {
		return 0, 0
	}
	return h.n.Load(), h.sum.Load()
}

// Bounds returns a copy of the bucket upper bounds (without the
// implicit +Inf bucket).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Cumulative returns the cumulative per-bucket counts aligned with
// Bounds, plus the grand total (the +Inf bucket). All counts come from
// one sequential pass, so within a single call total always equals the
// last cumulative step plus the overflow bucket — the invariant the
// Prometheus exposition relies on even while writers race.
func (h *Histogram) Cumulative() (cum []int64, total int64) {
	cum = make([]int64, len(h.bounds))
	var running int64
	for i := range h.bounds {
		running += h.counts[i].Load()
		cum[i] = running
	}
	total = running + h.counts[len(h.bounds)].Load()
	return cum, total
}

// atomicFloat64 is a CAS-loop float accumulator (for histogram sums).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }
