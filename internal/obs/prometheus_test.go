package obs

import (
	"strings"
	"testing"
)

// The exposition is golden-tested: section ordering (counters, gauges,
// histograms, timers), alphabetical names within sections, cumulative
// histogram buckets ending at le="+Inf" == _count, and the
// timer-shadowed-by-histogram rule must all stay byte-stable.
func TestWritePrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("service.finished").Add(3)
	m.Counter("attack.evictions").Inc()
	m.Gauge("service.queue_depth").Set(7)
	// Observations chosen binary-exact so _sum formats predictably.
	h := m.HistogramWith("service.queue_wait", []float64{0.25, 0.5, 1})
	h.Observe(0.25) // le=0.25 (boundary lands in its own bucket)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)                                   // overflow → +Inf only
	m.Timer("template.encode").Observe(1500 * 1e6) // 1.5s in ns

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE attack_evictions_total counter
attack_evictions_total 1
# TYPE service_finished_total counter
service_finished_total 3
# TYPE service_queue_depth gauge
service_queue_depth 7
# TYPE service_queue_wait_seconds histogram
service_queue_wait_seconds_bucket{le="0.25"} 1
service_queue_wait_seconds_bucket{le="0.5"} 3
service_queue_wait_seconds_bucket{le="1"} 3
service_queue_wait_seconds_bucket{le="+Inf"} 4
service_queue_wait_seconds_sum 3.25
service_queue_wait_seconds_count 4
# TYPE template_encode_seconds summary
template_encode_seconds_sum 1.5
template_encode_seconds_count 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusTimerShadowedByHistogram(t *testing.T) {
	m := NewMetrics()
	// A span feeds both a timer and a histogram under the same raw name;
	// the exposition must emit only the histogram or the series would
	// appear twice as attack_solve_seconds.
	m.Timer("attack.solve").Observe(1e9)
	m.Histogram("attack.solve").Observe(1)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE attack_solve_seconds histogram") {
		t.Fatalf("histogram missing:\n%s", out)
	}
	if strings.Contains(out, "summary") {
		t.Fatalf("shadowed timer still rendered:\n%s", out)
	}
	if strings.Count(out, "attack_solve_seconds_count") != 1 {
		t.Fatalf("duplicate _count series:\n%s", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"service.queue_wait": "service_queue_wait",
		"sat[0]:single":      "sat_0_:single",
		"9lives":             "_9lives",
		"ok_name:sub":        "ok_name:sub",
		"spaß":               "spa__",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Fatalf("escapeLabelValue = %q, want %q", got, want)
	}
}
