// Package obs is the repository's observability layer: typed
// counters/gauges/timers, a bounded ring-buffer event trace with an
// optional JSONL sink, and a live debug endpoint (expvar-style metrics
// plus net/http/pprof). It is dependency-free (standard library only)
// and built so that the *disabled* path costs exactly one branch at
// every instrumentation site: the layers hold a Recorder interface
// value that is nil when observability is off, and every emission is
// guarded by (or routed through) a nil check. The overhead contract is
// enforced by cmd/benchjson's BENCH_obs.json comparison (CI fails when
// the instrumented solve exceeds the recorder-off solve by >5%).
//
// Event producers across the stack:
//
//	sat.Solver          solver.progress / solver.compact (conflict-count cadence)
//	portfolio.Portfolio portfolio.win (win attribution + clause-share traffic)
//	core.Attack         attack.{encode,preprocess,solve,decode} spans,
//	                    attack.blame / attack.evict
//	campaign            campaign.run records (one per seeded run)
//
// All Trace methods are safe for concurrent use: portfolio members and
// the campaign worker pool feed one shared recorder.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Field is one key/value pair of an event payload.
type Field struct {
	Key string
	Val any
}

// F builds a Field; it keeps call sites short.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Event is one trace record. The JSON form is one line of the -trace
// JSONL stream and one slot of the ring buffer.
type Event struct {
	// T is seconds since the recorder was created (relative time keeps
	// traces small and diffable).
	T float64 `json:"t"`
	// Src names the emitting component, e.g. "sat[2]:stable".
	Src string `json:"src,omitempty"`
	// Ev is the event name, e.g. "solver.progress".
	Ev string `json:"ev"`
	// Fields carries the payload.
	Fields map[string]any `json:"f,omitempty"`
}

// Recorder is the interface the instrumented layers emit through. A
// nil Recorder means observability is off; producers must guard every
// emission with a nil check (or use the package-level Emit/Span
// helpers, which do). Implementations must be safe for concurrent use.
type Recorder interface {
	// Emit appends one event to the trace.
	Emit(src, ev string, fields ...Field)
	// Span opens a named span: it emits name+".start", and the returned
	// closer emits name+".end" with an "ms" duration field (plus any
	// extra fields) and feeds the duration into the timer metric named
	// name.
	Span(src, name string, fields ...Field) func(fields ...Field)
	// Metrics returns the recorder's metric registry (never nil).
	Metrics() *Metrics
}

// Emit records one event through r; a nil recorder is a no-op.
func Emit(r Recorder, src, ev string, fields ...Field) {
	if r == nil {
		return
	}
	r.Emit(src, ev, fields...)
}

func nopSpan(...Field) {}

// Span opens a span through r; a nil recorder returns a no-op closer.
func Span(r Recorder, src, name string, fields ...Field) func(fields ...Field) {
	if r == nil {
		return nopSpan
	}
	return r.Span(src, name, fields...)
}

// Trace is the standard Recorder: a bounded ring buffer of the most
// recent events, an optional JSONL writer (one event per line, each
// line written in a single Write call so the stream stays line-atomic
// even through a shared writer), and a metric registry.
type Trace struct {
	start   time.Time
	metrics *Metrics

	mu      sync.Mutex
	w       io.Writer // optional JSONL sink; nil = ring only
	werr    error     // first sink write error (sticky; later writes skipped)
	ring    []Event   // fixed-capacity ring, 0 capacity = no ring
	head    int       // next write position
	n       int       // events currently held
	total   int64     // events ever emitted
	dropped int64     // events overwritten in the ring
}

// NewTrace returns a recorder writing JSONL events to w (nil for
// ring-only operation) and retaining the last ringCap events in memory
// (≤ 0 disables the ring). Both sinks may be inspected live: the ring
// via Events/ServeDebug, the metrics via Metrics.
func NewTrace(w io.Writer, ringCap int) *Trace {
	t := &Trace{start: time.Now(), metrics: NewMetrics(), w: w}
	if ringCap > 0 {
		t.ring = make([]Event, ringCap)
	}
	return t
}

// Metrics returns the trace's metric registry.
func (t *Trace) Metrics() *Metrics { return t.metrics }

// Emit appends one event to the ring and the JSONL sink.
func (t *Trace) Emit(src, ev string, fields ...Field) {
	e := Event{T: time.Since(t.start).Seconds(), Src: src, Ev: ev}
	if len(fields) > 0 {
		e.Fields = make(map[string]any, len(fields))
		for _, f := range fields {
			e.Fields[f.Key] = f.Val
		}
	}
	t.mu.Lock()
	t.total++
	if len(t.ring) > 0 {
		if t.n == len(t.ring) {
			t.dropped++
		} else {
			t.n++
		}
		t.ring[t.head] = e
		t.head = (t.head + 1) % len(t.ring)
	}
	if t.w != nil && t.werr == nil {
		if data, err := json.Marshal(e); err == nil {
			data = append(data, '\n')
			_, t.werr = t.w.Write(data)
		}
	}
	t.mu.Unlock()
}

// Span implements Recorder.Span.
func (t *Trace) Span(src, name string, fields ...Field) func(fields ...Field) {
	t.Emit(src, name+".start", fields...)
	start := time.Now()
	return func(fields ...Field) {
		d := time.Since(start)
		t.metrics.Timer(name).Observe(d)
		t.metrics.Histogram(name).ObserveDuration(d)
		out := make([]Field, 0, len(fields)+1)
		out = append(out, F("ms", round2(d.Seconds()*1e3)))
		out = append(out, fields...)
		t.Emit(src, name+".end", out...)
	}
}

// round2 rounds to two decimals so durations stay readable in JSONL.
func round2(v float64) float64 {
	if v < 0 {
		return float64(int64(v*100-0.5)) / 100
	}
	return float64(int64(v*100+0.5)) / 100
}

// Events returns the ring contents, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.head-t.n+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Totals reports how many events were emitted over the trace's
// lifetime and how many the ring has since overwritten.
func (t *Trace) Totals() (total, dropped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total, t.dropped
}

// Err returns the first JSONL sink write error, if any (the sink is
// disabled after the first failure; the ring and metrics keep working).
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.werr
}
