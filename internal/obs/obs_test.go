package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderHelpers(t *testing.T) {
	// The nil path is the production default: every helper must be a
	// no-op, never a panic.
	Emit(nil, "src", "ev", F("k", 1))
	done := Span(nil, "src", "name")
	done(F("k", 2))
}

func TestTraceEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, 8)
	tr.Emit("sat", "solver.progress", F("conflicts", 42), F("final", true))
	tr.Emit("campaign", "campaign.run")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if e.Src != "sat" || e.Ev != "solver.progress" {
		t.Fatalf("event = %+v", e)
	}
	if e.Fields["conflicts"] != float64(42) || e.Fields["final"] != true {
		t.Fatalf("fields = %v", e.Fields)
	}
	if e.T < 0 {
		t.Fatalf("negative relative time %v", e.T)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := NewTrace(nil, 4)
	for i := 0; i < 10; i++ {
		tr.Emit("t", fmt.Sprintf("ev%d", i))
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := fmt.Sprintf("ev%d", 6+i); e.Ev != want {
			t.Fatalf("ring[%d] = %q, want %q (oldest-first)", i, e.Ev, want)
		}
	}
	total, dropped := tr.Totals()
	if total != 10 || dropped != 6 {
		t.Fatalf("totals = (%d, %d), want (10, 6)", total, dropped)
	}
}

func TestTraceNoRing(t *testing.T) {
	tr := NewTrace(nil, 0)
	tr.Emit("t", "ev")
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("ring disabled but Events returned %d", len(got))
	}
	if total, _ := tr.Totals(); total != 1 {
		t.Fatalf("total = %d, want 1", total)
	}
}

func TestSpanEmitsAndTimes(t *testing.T) {
	tr := NewTrace(nil, 8)
	done := tr.Span("attack", "attack.solve", F("in", 1))
	done(F("status", "sat"))

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want start+end", len(events))
	}
	if events[0].Ev != "attack.solve.start" || events[0].Fields["in"] != 1 {
		t.Fatalf("start event = %+v", events[0])
	}
	end := events[1]
	if end.Ev != "attack.solve.end" || end.Fields["status"] != "sat" {
		t.Fatalf("end event = %+v", end)
	}
	if _, ok := end.Fields["ms"].(float64); !ok {
		t.Fatalf("end event has no ms duration: %+v", end)
	}
	tv := tr.Metrics().Snapshot().Timers["attack.solve"]
	if tv.Count != 1 || tv.TotalMS < 0 {
		t.Fatalf("timer = %+v", tv)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(3)
	m.Counter("a").Inc()
	m.Gauge("g").Set(7)
	m.Timer("t").Observe(2 * time.Millisecond)

	s := m.Snapshot()
	if s.Counters["a"] != 4 || s.Gauges["g"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Timers["t"].Count != 1 || s.Timers["t"].TotalMS <= 0 {
		t.Fatalf("timer = %+v", s.Timers["t"])
	}
	if got := m.Names("counter"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("counter names = %v", got)
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	// One shared recorder fed from many goroutines — the portfolio +
	// worker-pool shape. Run with -race to make this a real check.
	tr := NewTrace(io.Discard, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := fmt.Sprintf("sat[%d]", g)
			for i := 0; i < 50; i++ {
				tr.Emit(src, "solver.progress", F("conflicts", i))
				tr.Metrics().Counter("sat.conflicts").Inc()
				done := tr.Span(src, "attack.solve")
				done()
			}
		}(g)
	}
	wg.Wait()
	if total, _ := tr.Totals(); total != 8*50*3 {
		t.Fatalf("total = %d, want %d", total, 8*50*3)
	}
	if got := tr.Metrics().Snapshot().Counters["sat.conflicts"]; got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
}

func TestTraceSinkErrorSticky(t *testing.T) {
	tr := NewTrace(failWriter{}, 2)
	tr.Emit("t", "ev")
	if tr.Err() == nil {
		t.Fatal("sink error not surfaced")
	}
	tr.Emit("t", "ev2") // must not panic; ring keeps working
	if got := tr.Events(); len(got) != 2 {
		t.Fatalf("ring stopped after sink error: %d events", len(got))
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestServeDebugEndpoints(t *testing.T) {
	tr := NewTrace(nil, 16)
	tr.Emit("sat", "solver.progress", F("conflicts", 1))
	tr.Metrics().Counter("sat.conflicts").Inc()

	ds, err := tr.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics is not JSON: %v", err)
	}
	if snap.Counters["sat.conflicts"] != 1 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}
	var events []Event
	if err := json.Unmarshal(get("/debug/trace"), &events); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	if len(events) != 1 || events[0].Ev != "solver.progress" {
		t.Fatalf("trace = %+v", events)
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}

func TestStartProgressTicker(t *testing.T) {
	tr := NewTrace(nil, 0)
	tr.Metrics().Counter("sat.conflicts").Add(1234)
	var buf bytes.Buffer
	stop := StartProgress(tr, &buf, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "[obs]") || !strings.Contains(out, "conflicts=") {
		t.Fatalf("ticker output = %q", out)
	}
	// stop() must print a final line even with a nil recorder guard.
	if n := strings.Count(out, "\n"); n < 2 {
		t.Fatalf("expected several ticker lines, got %d:\n%s", n, out)
	}
	StartProgress(nil, &buf, time.Millisecond)() // nil recorder: no-op
}
