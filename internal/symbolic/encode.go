package symbolic

import "sha3afa/internal/cnf"

// Encoder compiles circuit nodes into CNF on demand (Tseitin
// transform). Only nodes actually requested — i.e. the cone of
// influence of the constrained outputs — get variables and clauses,
// which is what keeps two symbolic Keccak rounds tractable.
type Encoder struct {
	c        *Circuit
	f        *cnf.Formula
	varOf    map[int32]int // node id -> cnf variable
	constVar int           // cnf variable forced false, lazily created
}

// NewEncoder returns an encoder emitting into f.
func NewEncoder(c *Circuit, f *cnf.Formula) *Encoder {
	return &Encoder{c: c, f: f, varOf: make(map[int32]int)}
}

// Formula returns the target formula.
func (e *Encoder) Formula() *cnf.Formula { return e.f }

// Lit returns the CNF literal (DIMACS signed form) equivalent to ref,
// emitting the defining clauses of every not-yet-encoded node in its
// cone.
func (e *Encoder) Lit(r Ref) int {
	base := e.varForNode(r.node())
	if r.negated() {
		return -base
	}
	return base
}

// varForNode returns (creating if needed) the CNF variable of node id.
// Iterative post-order so huge cones cannot overflow the stack.
func (e *Encoder) varForNode(id int32) int {
	if v, ok := e.varOf[id]; ok {
		return v
	}
	if id == 0 {
		if e.constVar == 0 {
			e.constVar = e.f.NewVar()
			e.f.Unit(-e.constVar) // constant false
		}
		e.varOf[0] = e.constVar
		return e.constVar
	}
	type frame struct {
		id       int32
		expanded bool
	}
	stack := []frame{{id, false}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, done := e.varOf[fr.id]; done {
			continue
		}
		n := e.c.nodes[fr.id]
		switch n.kind {
		case kInput:
			e.varOf[fr.id] = e.f.NewVar()
		case kConst:
			e.varForNode(0)
		case kAnd, kXor:
			if !fr.expanded {
				stack = append(stack, frame{fr.id, true})
				if _, ok := e.varOf[n.a.node()]; !ok {
					stack = append(stack, frame{n.a.node(), false})
				}
				if _, ok := e.varOf[n.b.node()]; !ok {
					stack = append(stack, frame{n.b.node(), false})
				}
				continue
			}
			a := e.litOfEncoded(n.a)
			b := e.litOfEncoded(n.b)
			var out int
			if n.kind == kAnd {
				out = e.f.GateAnd(a, b)
			} else {
				out = e.f.GateXor2(a, b)
			}
			e.varOf[fr.id] = out
		}
	}
	return e.varOf[id]
}

// litOfEncoded assumes the node is already encoded.
func (e *Encoder) litOfEncoded(r Ref) int {
	v, ok := e.varOf[r.node()]
	if !ok {
		// Constant children may not be encoded yet.
		v = e.varForNode(r.node())
	}
	if r.negated() {
		return -v
	}
	return v
}

// Fix constrains ref to the given value (unit clause on its literal).
func (e *Encoder) Fix(r Ref, val bool) {
	l := e.Lit(r)
	if !val {
		l = -l
	}
	e.f.Unit(l)
}

// FixAll constrains a slice of refs to concrete bits.
func (e *Encoder) FixAll(refs []Ref, vals []bool) {
	if len(refs) != len(vals) {
		panic("symbolic: FixAll length mismatch")
	}
	for i, r := range refs {
		e.Fix(r, vals[i])
	}
}

// EncodedNodes returns how many circuit nodes have CNF variables —
// the realized cone size, for the CNF-size figure.
func (e *Encoder) EncodedNodes() int { return len(e.varOf) }
