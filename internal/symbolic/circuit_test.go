package symbolic

import (
	"math/rand"
	"testing"

	"sha3afa/internal/cnf"
	"sha3afa/internal/sat"
)

func TestConstantRefs(t *testing.T) {
	if True != False.Not() || False != True.Not() {
		t.Fatal("constant negation broken")
	}
	if !False.IsConst() || !True.IsConst() {
		t.Fatal("constants not constant")
	}
	if False.ConstVal() || !True.ConstVal() {
		t.Fatal("ConstVal wrong")
	}
}

func TestAndFolding(t *testing.T) {
	c := NewCircuit()
	a := c.Input()
	if c.And(a, False) != False {
		t.Fatal("a∧0 != 0")
	}
	if c.And(a, True) != a {
		t.Fatal("a∧1 != a")
	}
	if c.And(a, a) != a {
		t.Fatal("a∧a != a")
	}
	if c.And(a, a.Not()) != False {
		t.Fatal("a∧¬a != 0")
	}
	if c.NumGates() != 0 {
		t.Fatal("folding allocated gates")
	}
}

func TestXorFolding(t *testing.T) {
	c := NewCircuit()
	a := c.Input()
	if c.Xor(a, False) != a {
		t.Fatal("a⊕0 != a")
	}
	if c.Xor(a, True) != a.Not() {
		t.Fatal("a⊕1 != ¬a")
	}
	if c.Xor(a, a) != False {
		t.Fatal("a⊕a != 0")
	}
	if c.Xor(a, a.Not()) != True {
		t.Fatal("a⊕¬a != 1")
	}
	if c.Xor(True, True) != False {
		t.Fatal("1⊕1 != 0")
	}
	if c.NumGates() != 0 {
		t.Fatal("folding allocated gates")
	}
}

func TestStructuralHashing(t *testing.T) {
	c := NewCircuit()
	a, b := c.Input(), c.Input()
	x1 := c.And(a, b)
	x2 := c.And(b, a)
	if x1 != x2 {
		t.Fatal("AND not commutatively hashed")
	}
	y1 := c.Xor(a, b)
	y2 := c.Xor(b, a)
	if y1 != y2 {
		t.Fatal("XOR not commutatively hashed")
	}
	// Negation pull-out: a⊕¬b = ¬(a⊕b).
	if c.Xor(a, b.Not()) != y1.Not() {
		t.Fatal("XOR negation not pulled out")
	}
	if c.NumGates() != 2 {
		t.Fatalf("expected 2 gates, have %d", c.NumGates())
	}
}

func TestEvalTruthTables(t *testing.T) {
	c := NewCircuit()
	a, b := c.Input(), c.Input()
	and := c.And(a, b)
	or := c.Or(a, b)
	xor := c.Xor(a, b)
	andNot := c.AndNot(a, b)
	mux := c.Mux(a, b, b.Not()) // if a then b else ¬b == ¬(a⊕¬b)... just eval
	for m := 0; m < 4; m++ {
		in := []bool{m&1 == 1, m&2 == 2}
		got := c.Eval(in, []Ref{and, or, xor, andNot, mux})
		if got[0] != (in[0] && in[1]) {
			t.Fatalf("AND(%v) = %v", in, got[0])
		}
		if got[1] != (in[0] || in[1]) {
			t.Fatalf("OR(%v) = %v", in, got[1])
		}
		if got[2] != (in[0] != in[1]) {
			t.Fatalf("XOR(%v) = %v", in, got[2])
		}
		if got[3] != (!in[0] && in[1]) {
			t.Fatalf("ANDNOT(%v) = %v", in, got[3])
		}
		want := in[1]
		if !in[0] {
			want = !in[1]
		}
		if got[4] != want {
			t.Fatalf("MUX(%v) = %v", in, got[4])
		}
	}
}

func TestXorManyParity(t *testing.T) {
	c := NewCircuit()
	n := 11
	in := c.Inputs(n)
	out := c.XorMany(in...)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		vals := make([]bool, n)
		want := false
		for i := range vals {
			vals[i] = rng.Intn(2) == 1
			want = want != vals[i]
		}
		if got := c.Eval(vals, []Ref{out})[0]; got != want {
			t.Fatalf("XorMany parity wrong on %v", vals)
		}
	}
}

func TestConeSize(t *testing.T) {
	c := NewCircuit()
	a, b, d := c.Input(), c.Input(), c.Input()
	x := c.And(a, b)
	y := c.Xor(x, d)
	_ = c.And(d, a) // outside the cone of y
	if got := c.ConeSize([]Ref{y}); got != 5 {
		t.Fatalf("ConeSize = %d, want 5 (a,b,d,x,y)", got)
	}
	if got := c.ConeSize([]Ref{x}); got != 3 {
		t.Fatalf("ConeSize = %d, want 3", got)
	}
}

// randomCircuit builds a random DAG and returns some output refs.
func randomCircuit(rng *rand.Rand, nIn, nGates int) (*Circuit, []Ref) {
	c := NewCircuit()
	pool := append([]Ref{}, c.Inputs(nIn)...)
	pool = append(pool, False, True)
	for g := 0; g < nGates; g++ {
		a := pool[rng.Intn(len(pool))].NotIf(rng.Intn(2) == 1)
		b := pool[rng.Intn(len(pool))].NotIf(rng.Intn(2) == 1)
		var r Ref
		if rng.Intn(2) == 0 {
			r = c.And(a, b)
		} else {
			r = c.Xor(a, b)
		}
		pool = append(pool, r)
	}
	outs := make([]Ref, 3)
	for i := range outs {
		outs[i] = pool[len(pool)-1-i].NotIf(rng.Intn(2) == 1)
	}
	return c, outs
}

func TestEncoderAgainstEval(t *testing.T) {
	// For random circuits: encode outputs to CNF, then for every input
	// assignment solve under assumptions and compare the output
	// literals' model values with direct evaluation.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		nIn := 2 + rng.Intn(5)
		c, outs := randomCircuit(rng, nIn, 3+rng.Intn(25))
		f := cnf.New()
		enc := NewEncoder(c, f)
		outLits := make([]int, len(outs))
		for i, o := range outs {
			outLits[i] = enc.Lit(o)
		}
		inLits := make([]int, nIn)
		for i := 0; i < nIn; i++ {
			inLits[i] = enc.Lit(c.InputRef(i))
		}
		solver := sat.FromFormula(f, sat.Options{})
		for m := 0; m < 1<<nIn; m++ {
			in := make([]bool, nIn)
			assume := make([]int, nIn)
			for i := range in {
				in[i] = m>>i&1 == 1
				if in[i] {
					assume[i] = inLits[i]
				} else {
					assume[i] = -inLits[i]
				}
			}
			if solver.Solve(assume...) != sat.Sat {
				t.Fatalf("trial %d: circuit CNF unsat under full input assignment", trial)
			}
			model := solver.Model()
			want := c.Eval(in, outs)
			for i, l := range outLits {
				got := model[abs(l)]
				if l < 0 {
					got = !got
				}
				if got != want[i] {
					t.Fatalf("trial %d input %b: output %d mismatch", trial, m, i)
				}
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestEncoderFix(t *testing.T) {
	c := NewCircuit()
	a, b := c.Input(), c.Input()
	out := c.And(a, b)
	f := cnf.New()
	enc := NewEncoder(c, f)
	enc.Fix(out, true) // forces a=b=1
	st, model := sat.SolveFormula(f, sat.Options{})
	if st != sat.Sat {
		t.Fatal("fixed AND unsat")
	}
	la, lb := enc.Lit(a), enc.Lit(b)
	if !model[abs(la)] || !model[abs(lb)] {
		t.Fatal("Fix(out=1) did not force inputs")
	}
	enc.Fix(a, false)
	if st, _ := sat.SolveFormula(f, sat.Options{}); st != sat.Unsat {
		t.Fatal("contradictory Fix not UNSAT")
	}
}

func TestEncoderConstants(t *testing.T) {
	c := NewCircuit()
	f := cnf.New()
	enc := NewEncoder(c, f)
	if l := enc.Lit(True); l >= 0 {
		// True must encode as the negation of the false constant var.
		t.Fatal("True encoded as positive literal of const-false var")
	}
	enc.Fix(True, true)
	enc.Fix(False, false)
	if st, _ := sat.SolveFormula(f, sat.Options{}); st != sat.Sat {
		t.Fatal("constant fixes made formula unsat")
	}
}

func TestEncoderFixAllMismatchPanics(t *testing.T) {
	c := NewCircuit()
	f := cnf.New()
	enc := NewEncoder(c, f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	enc.FixAll([]Ref{True}, []bool{true, false})
}
