// Package symbolic builds Boolean circuits by symbolically executing
// Keccak rounds over a hash-consed gate DAG, and compiles the cone of
// influence of constrained outputs into CNF via Tseitin encoding.
//
// This is the "algebraic" half of algebraic fault analysis: the last
// two Keccak rounds become a DAG of XOR and AND gates over 1600
// unknown state bits (plus fault variables); observed digest bits pin
// outputs; the CNF goes to the SAT solver.
//
// The package also provides algebraic normal form (ANF) polynomials
// used to verify the degree properties the paper exploits (χ has
// degree 2, χ⁻¹ degree 3).
package symbolic

import "fmt"

// Ref references a node in a Circuit with an optional negation in the
// lowest bit. The constant false is node 0, so False = Ref(0) and
// True = its negation.
type Ref int32

// Constant references.
const (
	False Ref = 0
	True  Ref = 1
)

// Not returns the negated reference.
func (r Ref) Not() Ref { return r ^ 1 }

// NotIf negates r when b is true.
func (r Ref) NotIf(b bool) Ref {
	if b {
		return r.Not()
	}
	return r
}

func (r Ref) node() int32    { return int32(r) >> 1 }
func (r Ref) negated() bool  { return r&1 == 1 }
func (r Ref) IsConst() bool  { return r.node() == 0 }
func (r Ref) ConstVal() bool { return r == True }

type kind uint8

const (
	kConst kind = iota
	kInput
	kAnd
	kXor
)

type node struct {
	kind kind
	a, b Ref   // children for kAnd / kXor
	idx  int32 // input index for kInput
}

// Circuit is a hash-consed DAG of AND/XOR gates over named inputs.
type Circuit struct {
	nodes   []node
	inputs  []Ref // inputs[i] = ref of input i
	andHash map[[2]Ref]Ref
	xorHash map[[2]Ref]Ref
	numAnd  int
	numXor  int
}

// NewCircuit returns an empty circuit containing only the constant.
func NewCircuit() *Circuit {
	return &Circuit{
		nodes:   []node{{kind: kConst}},
		andHash: make(map[[2]Ref]Ref),
		xorHash: make(map[[2]Ref]Ref),
	}
}

// NumInputs returns the number of allocated inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumGates returns the number of AND plus XOR gates.
func (c *Circuit) NumGates() int { return c.numAnd + c.numXor }

// GateCounts returns (AND, XOR) gate counts.
func (c *Circuit) GateCounts() (and, xor int) { return c.numAnd, c.numXor }

// Input allocates a fresh input and returns its reference.
func (c *Circuit) Input() Ref {
	r := Ref(len(c.nodes) << 1)
	c.nodes = append(c.nodes, node{kind: kInput, idx: int32(len(c.inputs))})
	c.inputs = append(c.inputs, r)
	return r
}

// Inputs allocates n fresh inputs.
func (c *Circuit) Inputs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = c.Input()
	}
	return out
}

// InputRef returns the reference of input i.
func (c *Circuit) InputRef(i int) Ref { return c.inputs[i] }

// InputIndex returns the input index of a (non-negated) input ref, or
// -1 if r does not reference an input node.
func (c *Circuit) InputIndex(r Ref) int {
	n := c.nodes[r.node()]
	if n.kind != kInput {
		return -1
	}
	return int(n.idx)
}

// And returns a reference computing a AND b, with constant folding,
// idempotence/annihilation rules and structural hashing.
func (c *Circuit) And(a, b Ref) Ref {
	// Order children canonically.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == False:
		return False
	case a == True:
		return b
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	key := [2]Ref{a, b}
	if r, ok := c.andHash[key]; ok {
		return r
	}
	r := Ref(len(c.nodes) << 1)
	c.nodes = append(c.nodes, node{kind: kAnd, a: a, b: b})
	c.andHash[key] = r
	c.numAnd++
	return r
}

// Or returns a OR b via De Morgan.
func (c *Circuit) Or(a, b Ref) Ref { return c.And(a.Not(), b.Not()).Not() }

// AndNot returns (NOT a) AND b — the χ product term.
func (c *Circuit) AndNot(a, b Ref) Ref { return c.And(a.Not(), b) }

// Xor returns a XOR b. Negations are pulled out so the stored node is
// always over positive children, maximizing sharing.
func (c *Circuit) Xor(a, b Ref) Ref {
	neg := a.negated() != b.negated()
	a &^= 1
	b &^= 1
	if a > b {
		a, b = b, a
	}
	switch {
	case a == False && b == False: // both constants
		return False.NotIf(neg)
	case a == False:
		return b.NotIf(neg)
	case a == b:
		return False.NotIf(neg)
	}
	key := [2]Ref{a, b}
	if r, ok := c.xorHash[key]; ok {
		return r.NotIf(neg)
	}
	r := Ref(len(c.nodes) << 1)
	c.nodes = append(c.nodes, node{kind: kXor, a: a, b: b})
	c.xorHash[key] = r
	c.numXor++
	return r.NotIf(neg)
}

// XorMany folds any number of references with a balanced tree.
func (c *Circuit) XorMany(refs ...Ref) Ref {
	switch len(refs) {
	case 0:
		return False
	case 1:
		return refs[0]
	}
	mid := len(refs) / 2
	return c.Xor(c.XorMany(refs[:mid]...), c.XorMany(refs[mid:]...))
}

// Mux returns (sel AND a) XOR (NOT sel AND b)  — if sel then a else b.
func (c *Circuit) Mux(sel, a, b Ref) Ref {
	return c.Xor(c.And(sel, c.Xor(a, b)), b)
}

// Eval computes the values of the requested refs under the given input
// assignment (inputs[i] = value of input i).
func (c *Circuit) Eval(inputs []bool, outs []Ref) []bool {
	if len(inputs) != len(c.inputs) {
		panic(fmt.Sprintf("symbolic: Eval got %d inputs, circuit has %d", len(inputs), len(c.inputs)))
	}
	val := make([]bool, len(c.nodes))
	for i := 1; i < len(c.nodes); i++ {
		n := c.nodes[i]
		switch n.kind {
		case kInput:
			val[i] = inputs[n.idx]
		case kAnd:
			val[i] = c.refVal(val, n.a) && c.refVal(val, n.b)
		case kXor:
			val[i] = c.refVal(val, n.a) != c.refVal(val, n.b)
		}
	}
	out := make([]bool, len(outs))
	for i, r := range outs {
		out[i] = c.refVal(val, r)
	}
	return out
}

func (c *Circuit) refVal(val []bool, r Ref) bool {
	return val[r.node()] != r.negated()
}

// ConeSize returns the number of distinct nodes reachable from the
// given roots — the cone of influence the encoder will emit.
func (c *Circuit) ConeSize(roots []Ref) int {
	seen := make(map[int32]bool)
	var stack []int32
	push := func(r Ref) {
		id := r.node()
		if id != 0 && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := c.nodes[id]
		if n.kind == kAnd || n.kind == kXor {
			push(n.a)
			push(n.b)
		}
	}
	return len(seen)
}
