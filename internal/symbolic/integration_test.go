package symbolic

import (
	"math/rand"
	"testing"

	"sha3afa/internal/cnf"
	"sha3afa/internal/keccak"
	"sha3afa/internal/sat"
)

// TestFourRoundCNFPropagation encodes four symbolic Keccak rounds to
// CNF, assumes a concrete input, and checks that the SAT model's
// output literals equal the concrete permutation — an end-to-end check
// of circuit building, Tseitin encoding and solver propagation at
// realistic scale.
func TestFourRoundCNFPropagation(t *testing.T) {
	c := NewCircuit()
	ss := NewSymInput(c)
	ss.PermuteRounds(c, 0, 4)

	f := cnf.New()
	enc := NewEncoder(c, f)
	outLits := make([]int, keccak.StateBits)
	for i, r := range ss.Bits {
		outLits[i] = enc.Lit(r)
	}
	inLits := make([]int, keccak.StateBits)
	for i := 0; i < keccak.StateBits; i++ {
		inLits[i] = enc.Lit(c.InputRef(i))
	}

	rng := rand.New(rand.NewSource(77))
	var in keccak.State
	for i := range in {
		in[i] = rng.Uint64()
	}
	want := in
	want.PermuteRounds(0, 4)

	solver := sat.FromFormula(f, sat.Options{})
	assume := make([]int, keccak.StateBits)
	for i := range assume {
		assume[i] = inLits[i]
		if !in.Bit(i) {
			assume[i] = -assume[i]
		}
	}
	if solver.Solve(assume...) != sat.Sat {
		t.Fatal("four-round circuit UNSAT under concrete input")
	}
	model := solver.Model()
	for i, l := range outLits {
		got := model[abs(l)]
		if l < 0 {
			got = !got
		}
		if got != want.Bit(i) {
			t.Fatalf("output bit %d wrong after CNF propagation", i)
		}
	}
}

// TestTwoRoundCNFInversion fixes the OUTPUT of the attack circuit and
// lets the solver find the input — the attack in miniature, with the
// full 1600-bit output observed so the answer is unique.
func TestTwoRoundCNFInversion(t *testing.T) {
	if testing.Short() {
		t.Skip("solver inversion test skipped in -short mode")
	}
	c := NewCircuit()
	ss := NewSymInput(c)
	ss.Chi(c)
	ss.Iota(22)
	ss.Round(c, 23)

	rng := rand.New(rand.NewSource(78))
	var alpha keccak.State
	for i := range alpha {
		alpha[i] = rng.Uint64()
	}
	want := alpha
	want.Chi()
	want.Iota(22)
	want.Round(23)

	f := cnf.New()
	enc := NewEncoder(c, f)
	for i, r := range ss.Bits {
		enc.Fix(r, want.Bit(i))
	}
	st, model := sat.SolveFormula(f, sat.Options{})
	if st != sat.Sat {
		t.Fatal("inversion instance UNSAT")
	}
	// Decode the input and compare: the round function is a bijection,
	// so the solution is unique and must equal alpha.
	var got keccak.State
	for i := 0; i < keccak.StateBits; i++ {
		l := enc.Lit(c.InputRef(i))
		v := model[abs(l)]
		if l < 0 {
			v = !v
		}
		got.SetBit(i, v)
	}
	if !got.Equal(&alpha) {
		t.Fatal("solver inverted the two rounds to a wrong preimage")
	}
}
