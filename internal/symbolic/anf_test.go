package symbolic

import (
	"math/rand"
	"testing"
)

func TestPolyBasics(t *testing.T) {
	zero := NewPoly()
	one := PolyConst(true)
	x0, x1 := PolyVar(0), PolyVar(1)
	if !zero.IsZero() || zero.Degree() != -1 {
		t.Fatal("zero polynomial wrong")
	}
	if one.Degree() != 0 {
		t.Fatal("constant degree wrong")
	}
	if x0.Degree() != 1 {
		t.Fatal("variable degree wrong")
	}
	if !x0.Add(x0).IsZero() {
		t.Fatal("p+p != 0")
	}
	if !x0.Mul(x0).Equal(x0) {
		t.Fatal("x² != x over GF(2)")
	}
	prod := x0.Mul(x1)
	if prod.Degree() != 2 {
		t.Fatal("x0*x1 degree wrong")
	}
	if got := x0.Add(x1).Add(one).String(); got != "1 + x0 + x1" {
		t.Fatalf("String = %q", got)
	}
}

func TestPolyEval(t *testing.T) {
	// p = x0*x1 + x2 + 1
	p := PolyVar(0).Mul(PolyVar(1)).Add(PolyVar(2)).Add(PolyConst(true))
	for m := uint64(0); m < 8; m++ {
		x0 := m&1 == 1
		x1 := m&2 == 2
		x2 := m&4 == 4
		want := (x0 && x1) != x2 != true
		if p.Eval(m) != want {
			t.Fatalf("Eval(%b) = %v, want %v", m, p.Eval(m), want)
		}
	}
}

func TestANFFromTruthTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		table := make([]bool, 1<<n)
		for i := range table {
			table[i] = rng.Intn(2) == 1
		}
		p := ANFFromTruthTable(n, table)
		for m := 0; m < 1<<n; m++ {
			if p.Eval(uint64(m)) != table[m] {
				t.Fatalf("n=%d: ANF disagrees with table at %b", n, m)
			}
		}
	}
}

func TestChiDegreeIsTwo(t *testing.T) {
	for x, p := range ChiRowANF() {
		if d := p.Degree(); d != 2 {
			t.Fatalf("deg χ output %d = %d, want 2", x, d)
		}
	}
}

func TestInvChiDegreeIsThree(t *testing.T) {
	// The key asymmetry: χ⁻¹ has degree 3 (cf. Duan & Lai's
	// observation used across the Keccak cryptanalysis literature).
	anyDeg3 := false
	for x, p := range InvChiRowANF() {
		d := p.Degree()
		if d > 3 {
			t.Fatalf("deg χ⁻¹ output %d = %d, exceeds 3", x, d)
		}
		if d == 3 {
			anyDeg3 = true
		}
	}
	if !anyDeg3 {
		t.Fatal("no χ⁻¹ output reaches degree 3")
	}
}

func TestInvChiANFInvertsChi(t *testing.T) {
	chi := ChiRowANF()
	inv := InvChiRowANF()
	for v := uint64(0); v < 32; v++ {
		// Apply χ then χ⁻¹ via the polynomials.
		var mid uint64
		for x := 0; x < 5; x++ {
			if chi[x].Eval(v) {
				mid |= 1 << uint(x)
			}
		}
		var back uint64
		for x := 0; x < 5; x++ {
			if inv[x].Eval(mid) {
				back |= 1 << uint(x)
			}
		}
		if back != v {
			t.Fatalf("χ⁻¹(χ(%05b)) = %05b", v, back)
		}
	}
}

func TestProductOfInvChiOutputsDegree(t *testing.T) {
	// Duan–Lai: the product of any two output coordinates of χ⁻¹ also
	// has degree 3 (not 5) — verify by direct computation.
	inv := InvChiRowANF()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if d := inv[i].Mul(inv[j]).Degree(); d > 3 {
				t.Fatalf("deg(χ⁻¹_%d · χ⁻¹_%d) = %d, want ≤ 3", i, j, d)
			}
		}
	}
}

func TestPolyVarRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for variable 64")
		}
	}()
	PolyVar(64)
}
