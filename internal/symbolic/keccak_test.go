package symbolic

import (
	"math/rand"
	"testing"

	"sha3afa/internal/keccak"
)

func randConcrete(rng *rand.Rand) keccak.State {
	var s keccak.State
	for i := range s {
		s[i] = rng.Uint64()
	}
	return s
}

func stateToBools(s *keccak.State) []bool {
	out := make([]bool, keccak.StateBits)
	for i := range out {
		out[i] = s.Bit(i)
	}
	return out
}

// checkStepEquivalence verifies a symbolic step against its concrete
// counterpart on random inputs.
func checkStepEquivalence(t *testing.T, name string,
	sym func(c *Circuit, s *SymState), conc func(s *keccak.State)) {
	t.Helper()
	c := NewCircuit()
	ss := NewSymInput(c)
	sym(c, ss)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		in := randConcrete(rng)
		want := in
		conc(&want)
		got := ss.EvalConcrete(c, stateToBools(&in))
		if !got.Equal(&want) {
			t.Fatalf("%s: symbolic != concrete", name)
		}
	}
}

func TestSymbolicSteps(t *testing.T) {
	checkStepEquivalence(t, "theta",
		func(c *Circuit, s *SymState) { s.Theta(c) },
		func(s *keccak.State) { s.Theta() })
	checkStepEquivalence(t, "rho",
		func(_ *Circuit, s *SymState) { s.Rho() },
		func(s *keccak.State) { s.Rho() })
	checkStepEquivalence(t, "pi",
		func(_ *Circuit, s *SymState) { s.Pi() },
		func(s *keccak.State) { s.Pi() })
	checkStepEquivalence(t, "chi",
		func(c *Circuit, s *SymState) { s.Chi(c) },
		func(s *keccak.State) { s.Chi() })
	checkStepEquivalence(t, "iota5",
		func(_ *Circuit, s *SymState) { s.Iota(5) },
		func(s *keccak.State) { s.Iota(5) })
}

func TestSymbolicLastTwoRounds(t *testing.T) {
	// The attack's exact circuit shape: χ input of round 22 forward to
	// the permutation output.
	c := NewCircuit()
	ss := NewSymInput(c)
	ss.Chi(c)
	ss.Iota(22)
	ss.Round(c, 23)
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 3; trial++ {
		alpha := randConcrete(rng)
		want := alpha
		want.Chi()
		want.Iota(22)
		want.Round(23)
		got := ss.EvalConcrete(c, stateToBools(&alpha))
		if !got.Equal(&want) {
			t.Fatal("two-round symbolic execution wrong")
		}
	}
}

func TestSymbolicFullPermutation(t *testing.T) {
	c := NewCircuit()
	ss := NewSymInput(c)
	ss.PermuteRounds(c, 0, keccak.NumRounds)
	rng := rand.New(rand.NewSource(19))
	in := randConcrete(rng)
	want := in
	want.Permute()
	got := ss.EvalConcrete(c, stateToBools(&in))
	if !got.Equal(&want) {
		t.Fatal("24-round symbolic permutation wrong")
	}
	// Zero state must reproduce the known Keccak-f vector.
	var zero keccak.State
	got = ss.EvalConcrete(c, stateToBools(&zero))
	if got[0] != 0xF1258F7940E1DDE7 {
		t.Fatalf("symbolic Keccak-f(0) lane0 = %016x", got[0])
	}
}

func TestSymbolicXorOfStates(t *testing.T) {
	c := NewCircuit()
	a := NewSymInput(c)
	var d keccak.State
	d.SetBit(100, true)
	d.SetBit(1599, true)
	b := FromConcrete(&d)
	x := a.Xor(c, b)
	rng := rand.New(rand.NewSource(20))
	in := randConcrete(rng)
	want := in
	want.Xor(&d)
	got := x.EvalConcrete(c, stateToBools(&in))
	if !got.Equal(&want) {
		t.Fatal("symbolic state XOR wrong")
	}
}

func TestFromConcreteIsConstant(t *testing.T) {
	var d keccak.State
	d.SetBit(7, true)
	s := FromConcrete(&d)
	for i, r := range s.Bits {
		if !r.IsConst() {
			t.Fatalf("bit %d not constant", i)
		}
		if r.ConstVal() != (i == 7) {
			t.Fatalf("bit %d wrong constant", i)
		}
	}
}

func TestDigestRefs(t *testing.T) {
	c := NewCircuit()
	s := NewSymInput(c)
	refs := s.DigestRefs(224)
	if len(refs) != 224 {
		t.Fatalf("DigestRefs length %d", len(refs))
	}
	for i, r := range refs {
		if r != s.Bits[i] {
			t.Fatalf("DigestRefs[%d] mismatch", i)
		}
	}
}

func TestLastTwoRoundsGateBudget(t *testing.T) {
	// The attack relies on the two-round cone being small; regression-
	// guard the circuit size (χ contributes 1600 ANDs per layer).
	c := NewCircuit()
	ss := NewSymInput(c)
	ss.Chi(c)
	ss.Iota(22)
	ss.Round(c, 23)
	and, xor := c.GateCounts()
	if and != 3200 {
		t.Fatalf("AND gates = %d, want 3200 (2 χ layers)", and)
	}
	if xor > 12000 {
		t.Fatalf("XOR gates = %d, exceeds budget", xor)
	}
}

func BenchmarkBuildTwoRoundCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCircuit()
		ss := NewSymInput(c)
		ss.Chi(c)
		ss.Iota(22)
		ss.Round(c, 23)
	}
}
