package symbolic

import (
	"math/bits"
	"sort"
	"strings"
)

// Poly is a Boolean polynomial in algebraic normal form over at most
// 64 variables: a set of monomials, each a bitmask of participating
// variables (0 = the constant 1). Addition is XOR (symmetric
// difference of monomial sets).
//
// The paper's method rests on Keccak's low algebraic degree; Poly lets
// the test suite and the analysis example verify those degrees
// (deg χ = 2, deg χ⁻¹ = 3) instead of citing them.
type Poly map[uint64]struct{}

// NewPoly returns the zero polynomial.
func NewPoly() Poly { return Poly{} }

// PolyConst returns 0 or 1.
func PolyConst(b bool) Poly {
	p := NewPoly()
	if b {
		p[0] = struct{}{}
	}
	return p
}

// PolyVar returns the polynomial x_i.
func PolyVar(i int) Poly {
	if i < 0 || i >= 64 {
		panic("symbolic: Poly supports variables 0..63")
	}
	return Poly{uint64(1) << uint(i): {}}
}

// Clone returns a copy.
func (p Poly) Clone() Poly {
	q := make(Poly, len(p))
	for m := range p {
		q[m] = struct{}{}
	}
	return q
}

// Add returns p + q (XOR).
func (p Poly) Add(q Poly) Poly {
	out := p.Clone()
	for m := range q {
		if _, ok := out[m]; ok {
			delete(out, m)
		} else {
			out[m] = struct{}{}
		}
	}
	return out
}

// Mul returns p · q. Over GF(2), x² = x, so multiplying monomials ORs
// their masks.
func (p Poly) Mul(q Poly) Poly {
	out := NewPoly()
	for a := range p {
		for b := range q {
			m := a | b
			if _, ok := out[m]; ok {
				delete(out, m)
			} else {
				out[m] = struct{}{}
			}
		}
	}
	return out
}

// Not returns p + 1.
func (p Poly) Not() Poly { return p.Add(PolyConst(true)) }

// Degree returns the algebraic degree (-1 for the zero polynomial).
func (p Poly) Degree() int {
	d := -1
	for m := range p {
		if n := bits.OnesCount64(m); n > d {
			d = n
		}
	}
	return d
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Equal reports whether p and q are identical polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p) != len(q) {
		return false
	}
	for m := range p {
		if _, ok := q[m]; !ok {
			return false
		}
	}
	return true
}

// Eval evaluates p under an assignment given as a bitmask.
func (p Poly) Eval(assign uint64) bool {
	acc := false
	for m := range p {
		if m&assign == m {
			acc = !acc
		}
	}
	return acc
}

// String renders the polynomial deterministically, e.g. "x0*x2 + x1 + 1".
func (p Poly) String() string {
	if len(p) == 0 {
		return "0"
	}
	masks := make([]uint64, 0, len(p))
	for m := range p {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	terms := make([]string, 0, len(masks))
	for _, m := range masks {
		if m == 0 {
			terms = append(terms, "1")
			continue
		}
		var vs []string
		for i := 0; i < 64; i++ {
			if m>>uint(i)&1 == 1 {
				vs = append(vs, "x"+itoa(i))
			}
		}
		terms = append(terms, strings.Join(vs, "*"))
	}
	return strings.Join(terms, " + ")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [4]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// ANFFromTruthTable computes the ANF of an n-variable Boolean function
// given its 2^n truth table (index = assignment bitmask) via the
// Möbius transform.
func ANFFromTruthTable(n int, table []bool) Poly {
	if len(table) != 1<<uint(n) {
		panic("symbolic: truth table length mismatch")
	}
	coeff := append([]bool(nil), table...)
	for i := 0; i < n; i++ {
		step := 1 << uint(i)
		for j := 0; j < len(coeff); j += 2 * step {
			for k := j; k < j+step; k++ {
				coeff[k+step] = coeff[k+step] != coeff[k]
			}
		}
	}
	p := NewPoly()
	for m, c := range coeff {
		if c {
			p[uint64(m)] = struct{}{}
		}
	}
	return p
}

// ChiRowANF returns the ANF polynomials of the 5 output bits of the χ
// row map (5 variables).
func ChiRowANF() [5]Poly {
	var out [5]Poly
	for x := 0; x < 5; x++ {
		a := PolyVar(x)
		b := PolyVar((x + 1) % 5)
		c := PolyVar((x + 2) % 5)
		out[x] = a.Add(b.Not().Mul(c))
	}
	return out
}

// InvChiRowANF returns the ANF polynomials of the 5 output bits of the
// inverse χ row map, recovered from its truth table.
func InvChiRowANF() [5]Poly {
	// Build χ's truth table, invert it, Möbius each output bit.
	var inv [32]int
	for in := 0; in < 32; in++ {
		out := 0
		for x := 0; x < 5; x++ {
			b := in >> x & 1
			b1 := in >> ((x + 1) % 5) & 1
			b2 := in >> ((x + 2) % 5) & 1
			out |= (b ^ (^b1 & 1 & b2)) << x
		}
		inv[out] = in
	}
	var polys [5]Poly
	for x := 0; x < 5; x++ {
		table := make([]bool, 32)
		for v := 0; v < 32; v++ {
			table[v] = inv[v]>>x&1 == 1
		}
		polys[x] = ANFFromTruthTable(5, table)
	}
	return polys
}
