package symbolic

import "sha3afa/internal/keccak"

// SymState is a symbolic Keccak state: one circuit reference per state
// bit, in the same bit-index convention as keccak.State
// (bit i = 64*(x+5y)+z).
type SymState struct {
	Bits [keccak.StateBits]Ref
}

// NewSymInput allocates 1600 fresh circuit inputs as a symbolic state.
// The i-th state bit is input index base+i for the returned base.
func NewSymInput(c *Circuit) *SymState {
	s := &SymState{}
	for i := range s.Bits {
		s.Bits[i] = c.Input()
	}
	return s
}

// FromConcrete lifts a concrete state to constants.
func FromConcrete(st *keccak.State) *SymState {
	s := &SymState{}
	for i := range s.Bits {
		s.Bits[i] = False
		if st.Bit(i) {
			s.Bits[i] = True
		}
	}
	return s
}

// Clone returns a copy of the symbolic state.
func (s *SymState) Clone() *SymState {
	c := *s
	return &c
}

// Xor returns the bitwise XOR of two symbolic states.
func (s *SymState) Xor(c *Circuit, o *SymState) *SymState {
	out := &SymState{}
	for i := range s.Bits {
		out.Bits[i] = c.Xor(s.Bits[i], o.Bits[i])
	}
	return out
}

func (s *SymState) bit(x, y, z int) Ref {
	return s.Bits[keccak.BitIndex(x, y, z)]
}

func (s *SymState) setBit(x, y, z int, r Ref) {
	s.Bits[keccak.BitIndex(x, y, z)] = r
}

// Theta applies the symbolic θ step.
func (s *SymState) Theta(c *Circuit) {
	// Column parities.
	var parity [5][64]Ref
	for x := 0; x < 5; x++ {
		for z := 0; z < 64; z++ {
			parity[x][z] = c.XorMany(
				s.bit(x, 0, z), s.bit(x, 1, z), s.bit(x, 2, z),
				s.bit(x, 3, z), s.bit(x, 4, z))
		}
	}
	var out SymState
	for x := 0; x < 5; x++ {
		for z := 0; z < 64; z++ {
			d := c.Xor(parity[(x+4)%5][z], parity[(x+1)%5][(z+63)%64])
			for y := 0; y < 5; y++ {
				out.setBit(x, y, z, c.Xor(s.bit(x, y, z), d))
			}
		}
	}
	*s = out
}

// Rho applies the symbolic ρ step (pure wire permutation).
func (s *SymState) Rho() {
	var out SymState
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			off := keccak.RhoOffsets[x][y]
			for z := 0; z < 64; z++ {
				out.setBit(x, y, (z+off)%64, s.bit(x, y, z))
			}
		}
	}
	*s = out
}

// Pi applies the symbolic π step (pure wire permutation).
func (s *SymState) Pi() {
	var out SymState
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 64; z++ {
				out.setBit(x, y, z, s.bit((x+3*y)%5, x, z))
			}
		}
	}
	*s = out
}

// Chi applies the symbolic χ step: the only gates with AND nodes.
func (s *SymState) Chi(c *Circuit) {
	var out SymState
	for y := 0; y < 5; y++ {
		for z := 0; z < 64; z++ {
			var row [5]Ref
			for x := 0; x < 5; x++ {
				row[x] = s.bit(x, y, z)
			}
			for x := 0; x < 5; x++ {
				out.setBit(x, y, z, c.Xor(row[x], c.AndNot(row[(x+1)%5], row[(x+2)%5])))
			}
		}
	}
	*s = out
}

// Iota XORs the round constant — negations on the affected bits.
func (s *SymState) Iota(r int) {
	rc := keccak.RoundConstants[r]
	for z := 0; z < 64; z++ {
		if rc>>uint(z)&1 == 1 {
			s.setBit(0, 0, z, s.bit(0, 0, z).Not())
		}
	}
}

// LinearLayer applies L = π ∘ ρ ∘ θ.
func (s *SymState) LinearLayer(c *Circuit) {
	s.Theta(c)
	s.Rho()
	s.Pi()
}

// Round applies one full symbolic round.
func (s *SymState) Round(c *Circuit, r int) {
	s.LinearLayer(c)
	s.Chi(c)
	s.Iota(r)
}

// PermuteRounds applies rounds from..to-1.
func (s *SymState) PermuteRounds(c *Circuit, from, to int) {
	for r := from; r < to; r++ {
		s.Round(c, r)
	}
}

// DigestRefs returns the refs of the first n digest bits (state bit i
// is digest bit i under the byte serialization order).
func (s *SymState) DigestRefs(nBits int) []Ref {
	return append([]Ref(nil), s.Bits[:nBits]...)
}

// EvalConcrete evaluates the symbolic state under an input assignment,
// returning a concrete keccak.State.
func (s *SymState) EvalConcrete(c *Circuit, inputs []bool) keccak.State {
	vals := c.Eval(inputs, s.Bits[:])
	var out keccak.State
	for i, v := range vals {
		if v {
			out.SetBit(i, true)
		}
	}
	return out
}
