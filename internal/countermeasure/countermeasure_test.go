package countermeasure

import (
	"bytes"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func TestTemporalRedundancyCleanRun(t *testing.T) {
	for _, mode := range keccak.FixedModes {
		msg := []byte("clean " + mode.String())
		d := TemporalRedundancy(mode, msg, 4, 22, nil)
		if d.Detected {
			t.Fatalf("%s: false positive on clean run", mode)
		}
		if !bytes.Equal(d.Digest, keccak.Sum(mode, msg)) {
			t.Fatalf("%s: protected digest differs from plain digest", mode)
		}
	}
}

func TestTemporalRedundancyDetectsGuardedFault(t *testing.T) {
	mode := keccak.SHA3_256
	msg := []byte("guarded fault")
	inj := fault.NewInjector(fault.Byte, 1)
	detected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		delta := inj.Sample().Delta()
		// Guard covers rounds 20..23; fault at round 22 is inside.
		d := TemporalRedundancy(mode, msg, 4, 22, &delta)
		if d.Detected {
			detected++
		}
	}
	if detected != trials {
		t.Fatalf("temporal redundancy detected %d/%d guarded faults", detected, trials)
	}
}

func TestTemporalRedundancyMissesEarlyFault(t *testing.T) {
	mode := keccak.SHA3_256
	msg := []byte("early fault")
	var delta keccak.State
	delta.SetBit(100, true)
	// Guard covers rounds 22..23 only; fault at round 10 is baked
	// into the snapshot and must go undetected (the coverage boundary).
	d := TemporalRedundancy(mode, msg, 2, 10, &delta)
	if d.Detected {
		t.Fatal("fault before the snapshot should evade temporal redundancy")
	}
	// And the digest is indeed faulty (the protection failed silently).
	if bytes.Equal(d.Digest, keccak.Sum(mode, msg)) {
		t.Fatal("fault did not alter the digest")
	}
}

func TestParityGuardCleanRun(t *testing.T) {
	for _, mode := range keccak.FixedModes {
		msg := []byte("parity clean " + mode.String())
		d := ParityGuard(mode, msg, 22, nil)
		if d.Detected {
			t.Fatalf("%s: parity guard false positive", mode)
		}
		if !bytes.Equal(d.Digest, keccak.Sum(mode, msg)) {
			t.Fatalf("%s: parity-guarded digest differs", mode)
		}
	}
}

func TestParityGuardDetectsOddFaults(t *testing.T) {
	// A fault whose per-lane injected pattern has odd parity must trip
	// the guard; an even (e.g. two-bit same-lane) pattern must not.
	mode := keccak.SHA3_256
	msg := []byte("parity faults")

	var odd keccak.State
	odd.SetBit(300, true)
	if d := ParityGuard(mode, msg, 22, &odd); !d.Detected {
		t.Fatal("single-bit fault not detected by parity guard")
	}

	var even keccak.State
	even.SetBit(300, true)
	even.SetBit(301, true) // same lane, even parity
	if d := ParityGuard(mode, msg, 22, &even); d.Detected {
		t.Fatal("even-parity same-lane fault should evade the parity guard")
	}
}

func TestParityGuardDetectionRateByModel(t *testing.T) {
	// Detection rate = P(some lane receives an odd number of flipped
	// bits). For byte faults within one lane this is P(odd popcount of
	// a uniform non-zero byte) = 128/255.
	mode := keccak.SHA3_512
	msg := []byte("rate test")
	inj := fault.NewInjector(fault.Byte, 9)
	detected := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		delta := inj.Sample().Delta()
		if ParityGuard(mode, msg, 22, &delta).Detected {
			detected++
		}
	}
	rate := float64(detected) / trials
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("byte-fault parity detection rate %.3f, expected ≈ 0.502", rate)
	}
}

func TestInfective(t *testing.T) {
	mode := keccak.SHA3_256
	clean := Detection{Digest: keccak.Sum(mode, []byte("m")), Detected: false}
	if !bytes.Equal(Infective(clean, mode), clean.Digest) {
		t.Fatal("infective mangled a clean digest")
	}
	bad := Detection{Digest: clean.Digest, Detected: true}
	out := Infective(bad, mode)
	if bytes.Equal(out, clean.Digest) {
		t.Fatal("infective leaked the faulty digest")
	}
	if len(out) != len(clean.Digest) {
		t.Fatal("infective changed digest length")
	}
}

func TestPredictLinearParityMatchesConcrete(t *testing.T) {
	var s keccak.State
	for i := range s {
		s[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	pred := predictLinearParity(&s)
	got := s
	got.LinearLayer()
	if pred != laneParities(&got) {
		t.Fatal("linear parity prediction wrong")
	}
}

func TestTemporalRedundancyBadGuardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for guardRounds 0")
		}
	}()
	TemporalRedundancy(keccak.SHA3_256, nil, 0, 22, nil)
}
