// Package countermeasure implements the fault-detection protections
// the paper's conclusion calls for ("calling for protections against
// fault injection and fault analysis"), and evaluates their detection
// rates against the same injector the attack uses:
//
//   - Temporal redundancy: recompute the final rounds and compare.
//     Detects every fault that changes the digest, at ~2× cost of the
//     protected rounds.
//   - Parity prediction: carry per-lane parities through the round.
//     θ, ρ, π and ι admit exact linear parity prediction; χ's parity
//     is predicted from the input row values. A fault injected mid-
//     round breaks the predicted/observed parity match with
//     probability depending on its width.
//   - Infective masking (lightweight): on detection, the digest is
//     replaced by unrelated output so faulty digests never leave the
//     device (turning detection into AFA starvation).
package countermeasure

import (
	"bytes"
	"math/bits"

	"sha3afa/internal/keccak"
)

// Detection reports the outcome of one protected hash computation.
type Detection struct {
	Digest   []byte
	Detected bool
}

// TemporalRedundancy computes the digest while recomputing the last
// `guardRounds` rounds a second time from a snapshot and comparing.
// The fault hook mirrors keccak.HashWithFault: delta is XORed into the
// θ input of faultRound (pass nil for a clean run). Only the primary
// computation receives the fault — the redundant recomputation models
// an attacker who cannot strike twice in one hashing.
func TemporalRedundancy(mode keccak.Mode, msg []byte, guardRounds int, faultRound int, delta *keccak.State) Detection {
	if guardRounds <= 0 || guardRounds > keccak.NumRounds {
		panic("countermeasure: invalid guardRounds")
	}
	tr := keccak.TraceHash(mode, msg)
	snapshotRound := keccak.NumRounds - guardRounds

	// Primary computation with the fault.
	s := tr.Rounds[0]
	var snapshot keccak.State
	for r := 0; r < keccak.NumRounds; r++ {
		if r == snapshotRound {
			snapshot = s
		}
		if delta != nil && r == faultRound {
			s.Xor(delta)
		}
		s.Round(r)
	}
	primary := s.ExtractBytes(mode.DigestBits() / 8)

	// Redundant recomputation of the guarded suffix. The snapshot is
	// taken from the primary run, so a fault that struck *before* the
	// snapshot round is baked into it and escapes detection — exactly
	// the coverage boundary of temporal redundancy.
	check := snapshot
	check.PermuteRounds(snapshotRound, keccak.NumRounds)
	redundant := check.ExtractBytes(mode.DigestBits() / 8)

	det := !bytes.Equal(primary, redundant)
	return Detection{Digest: primary, Detected: det}
}

// laneParities returns the 25 lane parities of a state.
func laneParities(s *keccak.State) uint32 {
	var p uint32
	for i, l := range s {
		if bits.OnesCount64(l)&1 == 1 {
			p |= 1 << uint(i)
		}
	}
	return p
}

// predictLinearParity predicts lane parities across θ∘ρ∘π from input
// parities alone (all three are linear and ρ preserves lane parity).
func predictLinearParity(in *keccak.State) uint32 {
	// θ: out(x,y) = in(x,y) ⊕ D(x); parity(out lane) = parity(in lane)
	// ⊕ parity(D lane). D(x) = C(x-1) ⊕ rot(C(x+1),1): parity(D) =
	// parity(C(x-1)) ⊕ parity(C(x+1)); C parities from column sums.
	var colPar [5]bool
	for x := 0; x < 5; x++ {
		var c uint64
		for y := 0; y < 5; y++ {
			c ^= in[keccak.LaneIndex(x, y)]
		}
		colPar[x] = bits.OnesCount64(c)&1 == 1
	}
	var after [25]bool
	for x := 0; x < 5; x++ {
		dPar := colPar[(x+4)%5] != colPar[(x+1)%5]
		for y := 0; y < 5; y++ {
			lanePar := bits.OnesCount64(in[keccak.LaneIndex(x, y)])&1 == 1
			after[keccak.LaneIndex(x, y)] = lanePar != dPar
		}
	}
	// ρ preserves lane parity; π permutes lanes.
	var out uint32
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			if after[keccak.LaneIndex((x+3*y)%5, x)] {
				out |= 1 << uint(keccak.LaneIndex(x, y))
			}
		}
	}
	return out
}

// ParityGuard runs the final two rounds with per-step parity checking
// on the linear layers: before χ of each guarded round the lane
// parities of the actual state are compared with parities predicted
// from the pre-θ state. A fault injected at the θ input of round 22
// perturbs the θ-input after prediction... — concretely, the guard
// snapshots the θ input at the start of the round, predicts the
// post-L parities, and compares them against the observed post-L
// state computed from the (possibly faulted) input. Faults injected
// *between* the snapshot and the linear layer flip an odd/even number
// of lane bits and are caught when any faulted lane parity flips —
// i.e. whenever the injected pattern has odd parity in some lane.
func ParityGuard(mode keccak.Mode, msg []byte, faultRound int, delta *keccak.State) Detection {
	tr := keccak.TraceHash(mode, msg)
	s := tr.Rounds[0]
	detected := false
	for r := 0; r < keccak.NumRounds; r++ {
		guarded := r >= 22
		var predicted uint32
		if guarded {
			predicted = predictLinearParity(&s)
		}
		if delta != nil && r == faultRound {
			s.Xor(delta)
		}
		s.LinearLayer()
		if guarded && laneParities(&s) != predicted {
			detected = true
		}
		s.Chi()
		s.Iota(r)
	}
	return Detection{Digest: s.ExtractBytes(mode.DigestBits() / 8), Detected: detected}
}

// Infective wraps a detection scheme: when a fault is detected the
// digest is replaced by the hash of the internal state (unrelated to
// the true digest), starving differential/algebraic analysis of usable
// faulty outputs.
func Infective(d Detection, mode keccak.Mode) []byte {
	if !d.Detected {
		return d.Digest
	}
	return keccak.Sum(mode, append([]byte("infective"), d.Digest...))
}
