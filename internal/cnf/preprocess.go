package cnf

import "sort"

// Preprocessing: satisfiability-preserving formula reductions applied
// before handing an instance to the solver (or exporting it). These
// are the classic SatELite-style rules restricted to the safe subset:
// unit-propagation rewriting, subsumption, and self-subsuming
// resolution (clause strengthening).

// PreprocessStats reports what a Preprocess call removed.
type PreprocessStats struct {
	UnitsPropagated   int
	ClausesRemoved    int
	LiteralsRemoved   int
	SubsumedClauses   int
	StrengthenedLits  int
	IterationsReached int
}

// Preprocess simplifies the formula in place. The transformation is
// equisatisfiable and model-preserving over the remaining variables:
// unit clauses are kept (so models can be read off), satisfied clauses
// are dropped, falsified literals are deleted, subsumed clauses are
// removed and self-subsuming resolution strengthens clauses. Returns
// statistics.
func (f *Formula) Preprocess() PreprocessStats {
	var st PreprocessStats
	for iter := 0; iter < 10; iter++ {
		st.IterationsReached = iter + 1
		changed := false

		// --- Unit propagation rewriting ---
		val := map[int]bool{} // literal -> true
		for _, c := range f.clauses {
			if len(c) == 1 {
				val[c[0]] = true
			}
		}
		if len(val) > 0 {
			kept := f.clauses[:0]
			for _, c := range f.clauses {
				sat := false
				out := c[:0]
				for _, l := range c {
					switch {
					case val[l]:
						sat = true
					case val[-l]:
						st.LiteralsRemoved++
						changed = true
						continue
					}
					if sat {
						break
					}
					out = append(out, l)
				}
				if sat && len(c) > 1 {
					st.ClausesRemoved++
					changed = true
					continue
				}
				if sat { // the unit clause itself
					kept = append(kept, c)
					continue
				}
				kept = append(kept, out)
				if len(out) == 1 && !val[out[0]] {
					val[out[0]] = true
					st.UnitsPropagated++
					changed = true
				}
			}
			f.clauses = kept
		}

		// --- Subsumption and self-subsuming resolution ---
		// Sort literals and index clauses by their shortest literal's
		// occurrence list to keep the pairwise check near-linear.
		for _, c := range f.clauses {
			sort.Ints(c)
		}
		occ := map[int][]int{} // literal -> clause indices
		for i, c := range f.clauses {
			for _, l := range c {
				occ[l] = append(occ[l], i)
			}
		}
		removed := make([]bool, len(f.clauses))
		for i, c := range f.clauses {
			if removed[i] || len(c) == 0 {
				continue
			}
			// Candidate superset clauses share c's first literal (for
			// subsumption) or its negation (for strengthening).
			for _, l := range c {
				for _, j := range occ[l] {
					if j == i || removed[j] {
						continue
					}
					d := f.clauses[j]
					if len(d) < len(c) {
						continue
					}
					if subset(c, d) {
						removed[j] = true
						st.SubsumedClauses++
						changed = true
					}
				}
				// Self-subsuming resolution: if c \ {l} ∪ {-l} ⊆ d,
				// then l... — resolve c with d on l, strengthening d
				// by removing -l.
				for _, j := range occ[-l] {
					if j == i || removed[j] {
						continue
					}
					d := f.clauses[j]
					if len(d) < len(c) {
						continue
					}
					if subsetExcept(c, d, l) {
						f.clauses[j] = deleteLit(d, -l)
						st.StrengthenedLits++
						changed = true
					}
				}
			}
		}
		if anyTrue(removed) {
			kept := f.clauses[:0]
			for i, c := range f.clauses {
				if !removed[i] {
					kept = append(kept, c)
				}
			}
			f.clauses = kept
		}

		if !changed {
			break
		}
	}
	return st
}

// subset reports whether every literal of c occurs in d (both sorted).
func subset(c, d []int) bool {
	i := 0
	for _, l := range d {
		if i < len(c) && c[i] == l {
			i++
		}
	}
	return i == len(c)
}

// subsetExcept reports whether every literal of c except l occurs in
// d, and -l occurs in d — the self-subsuming-resolution premise.
func subsetExcept(c, d []int, l int) bool {
	hasNeg := false
	for _, dl := range d {
		if dl == -l {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		return false
	}
	i := 0
	for _, dl := range d {
		for i < len(c) && c[i] == l {
			i++
		}
		if i < len(c) && c[i] == dl {
			i++
		}
	}
	for i < len(c) && c[i] == l {
		i++
	}
	return i == len(c)
}

func deleteLit(c []int, l int) []int {
	out := make([]int, 0, len(c)-1)
	for _, x := range c {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
