package cnf

import "sort"

// Preprocessing: satisfiability-preserving formula reductions applied
// before handing an instance to the solver (or exporting it). These
// are the classic SatELite-style rules restricted to the safe subset:
// unit-propagation rewriting, subsumption, and self-subsuming
// resolution (clause strengthening).
//
// The hot structures are dense, slice-indexed arrays rather than maps:
// literals are small integers, so the assignment lives in a []int8
// indexed by variable and the occurrence lists in a [][]int32 indexed
// by literal slot (2(v−1) for v, 2(v−1)+1 for ¬v). On attack-sized
// instances (10⁵–10⁶ literals) this removes all hashing from the
// preprocessing loop.

// PreprocessStats reports what a Preprocess call removed.
type PreprocessStats struct {
	UnitsPropagated   int
	ClausesRemoved    int
	LiteralsRemoved   int
	SubsumedClauses   int
	StrengthenedLits  int
	IterationsReached int
}

// litSlot maps a DIMACS literal to its dense occurrence-list index.
func litSlot(l int) int {
	if l > 0 {
		return 2 * (l - 1)
	}
	return 2*(-l-1) + 1
}

// Preprocess simplifies the formula in place. The transformation is
// equisatisfiable and model-preserving over the remaining variables:
// unit clauses are kept (so models can be read off), satisfied clauses
// are dropped, falsified literals are deleted, subsumed clauses are
// removed and self-subsuming resolution strengthens clauses. When the
// unit clauses are contradictory the formula is closed with an
// explicit empty clause (both sides are unsatisfiable, so equivalence
// is trivial). Returns statistics.
func (f *Formula) Preprocess() PreprocessStats {
	var st PreprocessStats
	n := f.numVars

	// Dense assignment: 0 = unassigned, +1 = true, −1 = false.
	val := make([]int8, n+1)
	assigned := 0
	contradiction := false
	litVal := func(l int) int8 {
		if l > 0 {
			return val[l]
		}
		return -val[-l]
	}
	assign := func(l int) {
		v, sign := l, int8(1)
		if l < 0 {
			v, sign = -l, -1
		}
		switch val[v] {
		case 0:
			val[v] = sign
			assigned++
		case sign:
		default:
			contradiction = true
		}
	}

	// Dense occurrence lists, allocated once and truncated per
	// iteration.
	occ := make([][]int32, 2*n)
	var removed []bool

	for iter := 0; iter < 10; iter++ {
		st.IterationsReached = iter + 1
		changed := false

		// --- Unit propagation rewriting ---
		for _, c := range f.clauses {
			if len(c) == 1 {
				assign(c[0])
			}
		}
		if contradiction {
			f.clauses = append(f.clauses, []int{})
			return st
		}
		if assigned > 0 {
			kept := f.clauses[:0]
			for _, c := range f.clauses {
				sat := false
				out := c[:0]
				for _, l := range c {
					switch litVal(l) {
					case 1:
						sat = true
					case -1:
						st.LiteralsRemoved++
						changed = true
						continue
					}
					if sat {
						break
					}
					out = append(out, l)
				}
				if sat && len(c) > 1 {
					st.ClausesRemoved++
					changed = true
					continue
				}
				if sat { // the unit clause itself
					kept = append(kept, c)
					continue
				}
				kept = append(kept, out)
				if len(out) == 1 && litVal(out[0]) == 0 {
					assign(out[0])
					st.UnitsPropagated++
					changed = true
				}
			}
			f.clauses = kept
			if contradiction {
				f.clauses = append(f.clauses, []int{})
				return st
			}
		}

		// --- Subsumption and self-subsuming resolution ---
		// Sort literals and index clauses by occurrence list to keep
		// the pairwise check near-linear.
		for _, c := range f.clauses {
			sort.Ints(c)
		}
		for i := range occ {
			occ[i] = occ[i][:0]
		}
		for i, c := range f.clauses {
			for _, l := range c {
				occ[litSlot(l)] = append(occ[litSlot(l)], int32(i))
			}
		}
		if cap(removed) < len(f.clauses) {
			removed = make([]bool, len(f.clauses))
		} else {
			removed = removed[:len(f.clauses)]
			for i := range removed {
				removed[i] = false
			}
		}
		for i, c := range f.clauses {
			if removed[i] || len(c) == 0 {
				continue
			}
			// Candidate superset clauses share c's first literal (for
			// subsumption) or its negation (for strengthening).
			for _, l := range c {
				for _, j := range occ[litSlot(l)] {
					if int(j) == i || removed[j] {
						continue
					}
					d := f.clauses[j]
					if len(d) < len(c) {
						continue
					}
					if subset(c, d) {
						removed[j] = true
						st.SubsumedClauses++
						changed = true
					}
				}
				// Self-subsuming resolution: if c \ {l} ∪ {-l} ⊆ d,
				// then resolve c with d on l, strengthening d by
				// removing -l.
				for _, j := range occ[litSlot(-l)] {
					if int(j) == i || removed[j] {
						continue
					}
					d := f.clauses[j]
					if len(d) < len(c) {
						continue
					}
					if subsetExcept(c, d, l) {
						f.clauses[j] = deleteLit(d, -l)
						st.StrengthenedLits++
						changed = true
					}
				}
			}
		}
		if anyTrue(removed) {
			kept := f.clauses[:0]
			for i, c := range f.clauses {
				if !removed[i] {
					kept = append(kept, c)
				}
			}
			f.clauses = kept
		}

		if !changed {
			break
		}
	}
	return st
}

// subset reports whether every literal of c occurs in d (both sorted).
func subset(c, d []int) bool {
	i := 0
	for _, l := range d {
		if i < len(c) && c[i] == l {
			i++
		}
	}
	return i == len(c)
}

// subsetExcept reports whether every literal of c except l occurs in
// d, and -l occurs in d — the self-subsuming-resolution premise.
func subsetExcept(c, d []int, l int) bool {
	hasNeg := false
	for _, dl := range d {
		if dl == -l {
			hasNeg = true
			break
		}
	}
	if !hasNeg {
		return false
	}
	i := 0
	for _, dl := range d {
		for i < len(c) && c[i] == l {
			i++
		}
		if i < len(c) && c[i] == dl {
			i++
		}
	}
	for i < len(c) && c[i] == l {
		i++
	}
	return i == len(c)
}

func deleteLit(c []int, l int) []int {
	out := make([]int, 0, len(c)-1)
	for _, x := range c {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}
