package cnf

import (
	"math/rand"
	"testing"
)

// equivalentOnOriginalVars checks that two formulas have identical
// satisfying assignments over variables 1..n (by brute force).
func equivalentOnOriginalVars(t *testing.T, a, b *Formula, n int) {
	t.Helper()
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m>>(v-1)&1 == 1
		}
		if a.Eval(assign) != b.Eval(assign) {
			t.Fatalf("preprocessing changed semantics at assignment %b", m)
		}
	}
}

func TestPreprocessPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(8)
		f := New()
		f.NewVars(n)
		nCl := 1 + rng.Intn(4*n)
		for i := 0; i < nCl; i++ {
			w := 1 + rng.Intn(4)
			c := make([]int, w)
			for j := range c {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			f.AddClause(c...)
		}
		f.Simplify() // remove tautologies first (Preprocess assumes none matter)
		orig := f.Clone()
		f.Preprocess()
		equivalentOnOriginalVars(t, orig, f, n)
	}
}

func TestPreprocessSubsumption(t *testing.T) {
	f := New()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(a, b)
	f.AddClause(a, b, c) // subsumed
	st := f.Preprocess()
	if st.SubsumedClauses != 1 || f.NumClauses() != 1 {
		t.Fatalf("subsumption failed: %+v, %d clauses", st, f.NumClauses())
	}
}

func TestPreprocessSelfSubsumingResolution(t *testing.T) {
	f := New()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(a, b)     // C
	f.AddClause(-a, b, c) // D: resolving on a strengthens D to (b, c)
	st := f.Preprocess()
	if st.StrengthenedLits == 0 {
		t.Fatalf("no strengthening happened: %+v", st)
	}
	// D must have lost -a.
	for _, cl := range f.Clauses() {
		for _, l := range cl {
			if l == -a {
				t.Fatal("strengthened literal still present")
			}
		}
	}
}

func TestPreprocessUnits(t *testing.T) {
	f := New()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.Unit(a)
	f.AddClause(-a, b) // rewrites to unit b
	f.AddClause(a, c)  // satisfied, dropped
	st := f.Preprocess()
	if st.UnitsPropagated == 0 || st.ClausesRemoved == 0 {
		t.Fatalf("unit rewriting did not fire: %+v", st)
	}
	orig := New()
	orig.NewVars(3)
	orig.Unit(a)
	orig.AddClause(-a, b)
	orig.AddClause(a, c)
	equivalentOnOriginalVars(t, orig, f, 3)
}

func TestPreprocessIdempotentOnClean(t *testing.T) {
	f := New()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(a, b)
	f.AddClause(-a, -b)
	before := f.NumClauses()
	st := f.Preprocess()
	if f.NumClauses() != before || st.SubsumedClauses != 0 {
		t.Fatalf("preprocess modified an irreducible formula: %+v", st)
	}
}
