// Package cnf represents propositional formulas in conjunctive normal
// form, provides the Tseitin-style gate gadgets the symbolic Keccak
// encoder emits, and reads/writes the DIMACS exchange format — the
// escape hatch for handing attack instances to an external SAT solver.
//
// Literal convention (DIMACS): variables are 1..NumVars; literal +v is
// the variable, -v its negation. Literal 0 is invalid.
package cnf

import (
	"fmt"
	"sort"
)

// Formula is a CNF formula: a conjunction of clauses over NumVars
// variables.
type Formula struct {
	numVars int
	clauses [][]int
}

// New returns an empty formula with no variables.
func New() *Formula { return &Formula{} }

// NumVars returns the highest variable index in use.
func (f *Formula) NumVars() int { return f.numVars }

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.clauses) }

// Clauses exposes the clause list (callers must not mutate).
func (f *Formula) Clauses() [][]int { return f.clauses }

// NewVar allocates a fresh variable and returns its index.
func (f *Formula) NewVar() int {
	f.numVars++
	return f.numVars
}

// NewVars allocates n fresh variables, returned in order.
func (f *Formula) NewVars(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = f.NewVar()
	}
	return out
}

// AddClause appends a clause (copied). It panics on literal 0 and
// grows NumVars to cover any referenced variable.
func (f *Formula) AddClause(lits ...int) {
	c := make([]int, len(lits))
	for i, l := range lits {
		if l == 0 {
			panic("cnf: literal 0 in clause")
		}
		v := l
		if v < 0 {
			v = -v
		}
		if v > f.numVars {
			f.numVars = v
		}
		c[i] = l
	}
	f.clauses = append(f.clauses, c)
}

// Eval checks an assignment (assign[v] is the value of variable v;
// index 0 unused) against every clause.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.clauses {
		ok := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if v >= len(assign) {
				return false
			}
			if assign[v] == (l > 0) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Simplify removes tautological clauses and duplicate literals within
// clauses, returning the number of clauses removed.
func (f *Formula) Simplify() int {
	kept := f.clauses[:0]
	removed := 0
	for _, c := range f.clauses {
		sort.Ints(c)
		out := c[:0]
		taut := false
		for i, l := range c {
			if i > 0 && l == c[i-1] {
				continue // duplicate
			}
			if -l == l {
				panic("cnf: zero literal")
			}
			out = append(out, l)
		}
		// Tautology: both polarities present (sorted: -v before +v but
		// not adjacent necessarily; scan).
		seen := make(map[int]bool, len(out))
		for _, l := range out {
			if seen[-l] {
				taut = true
				break
			}
			seen[l] = true
		}
		if taut {
			removed++
			continue
		}
		kept = append(kept, out)
	}
	f.clauses = kept
	return removed
}

// UnitPropagate runs unit propagation to fixpoint over the clause
// list. It returns the forced literals (in propagation order) and
// false if a conflict (empty clause) was derived. The formula is not
// modified.
func (f *Formula) UnitPropagate() (forced []int, ok bool) {
	val := make(map[int]bool) // literal -> assigned true
	assignedVar := make(map[int]bool)
	assign := func(l int) {
		val[l] = true
		v := l
		if v < 0 {
			v = -v
		}
		assignedVar[v] = true
		forced = append(forced, l)
	}
	for changed := true; changed; {
		changed = false
		for _, c := range f.clauses {
			var unassigned []int
			sat := false
			for _, l := range c {
				if val[l] {
					sat = true
					break
				}
				v := l
				if v < 0 {
					v = -v
				}
				if !assignedVar[v] {
					unassigned = append(unassigned, l)
				}
			}
			if sat {
				continue
			}
			switch len(unassigned) {
			case 0:
				return forced, false
			case 1:
				assign(unassigned[0])
				changed = true
			}
		}
	}
	return forced, true
}

// Stats summarizes the formula shape; useful for the CNF-size figure.
type Stats struct {
	Vars      int
	Clauses   int
	Literals  int
	Binary    int
	Ternary   int
	LongestCl int
}

// ComputeStats returns size statistics.
func (f *Formula) ComputeStats() Stats {
	st := Stats{Vars: f.numVars, Clauses: len(f.clauses)}
	for _, c := range f.clauses {
		st.Literals += len(c)
		switch len(c) {
		case 2:
			st.Binary++
		case 3:
			st.Ternary++
		}
		if len(c) > st.LongestCl {
			st.LongestCl = len(c)
		}
	}
	return st
}

// String formats stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("vars=%d clauses=%d lits=%d (bin=%d tern=%d max=%d)",
		s.Vars, s.Clauses, s.Literals, s.Binary, s.Ternary, s.LongestCl)
}

// Clone returns a deep copy.
func (f *Formula) Clone() *Formula {
	c := &Formula{numVars: f.numVars, clauses: make([][]int, len(f.clauses))}
	for i, cl := range f.clauses {
		c.clauses[i] = append([]int(nil), cl...)
	}
	return c
}

// ClonePrefix returns a deep copy of the first nClauses clauses over
// numVars variables. It is the template-instantiation fast path: the
// literals are copied into one flat slab (a single allocation instead
// of one per clause), and the clause headers subslice it, so cloning a
// multi-million-clause template costs a memcpy rather than a rebuild.
// numVars must cover every literal in the prefix; it may exceed the
// prefix's maximum variable so the clone can pre-own variables the
// caller is about to constrain. Panics if nClauses is out of range.
func (f *Formula) ClonePrefix(nClauses, numVars int) *Formula {
	if nClauses < 0 || nClauses > len(f.clauses) {
		panic("cnf: ClonePrefix clause count out of range")
	}
	total := 0
	for _, cl := range f.clauses[:nClauses] {
		total += len(cl)
	}
	slab := make([]int, 0, total)
	c := &Formula{numVars: numVars, clauses: make([][]int, nClauses)}
	for i, cl := range f.clauses[:nClauses] {
		start := len(slab)
		slab = append(slab, cl...)
		c.clauses[i] = slab[start:len(slab):len(slab)]
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if v > c.numVars {
				c.numVars = v
			}
		}
	}
	return c
}
