package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serializes the formula in the standard DIMACS CNF format
// understood by every off-the-shelf SAT solver. Comment lines may be
// provided and are emitted first.
func (f *Formula) WriteDIMACS(w io.Writer, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.numVars, len(f.clauses)); err != nil {
		return err
	}
	for _, cl := range f.clauses {
		for _, l := range cl {
			if _, err := bw.WriteString(strconv.Itoa(l)); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS CNF file. It tolerates comments anywhere,
// multi-line clauses, and validates the header counts (clause count
// must match; variable indexes must not exceed the declared count).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	f := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	declaredVars, declaredClauses := -1, -1
	var cur []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			var err error
			if declaredVars, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("cnf: bad var count: %v", err)
			}
			if declaredClauses, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("cnf: bad clause count: %v", err)
			}
			continue
		}
		if declaredVars < 0 {
			return nil, fmt.Errorf("cnf: clause before problem line")
		}
		for _, tok := range strings.Fields(line) {
			l, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q: %v", tok, err)
			}
			if l == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := l
			if v < 0 {
				v = -v
			}
			if v > declaredVars {
				return nil, fmt.Errorf("cnf: literal %d exceeds declared %d vars", l, declaredVars)
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("cnf: trailing clause without terminating 0")
	}
	if declaredClauses >= 0 && len(f.clauses) != declaredClauses {
		return nil, fmt.Errorf("cnf: header declares %d clauses, found %d", declaredClauses, len(f.clauses))
	}
	if declaredVars > f.numVars {
		f.numVars = declaredVars
	}
	return f, nil
}
