package cnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// randomDIMACSFormula draws a formula shaped like the edge cases the
// serializer must survive: clauses of width 0 (the empty clause) up to
// 7, repeated literals, and declared-but-unused trailing variables.
func randomDIMACSFormula(rng *rand.Rand) *Formula {
	f := New()
	nVars := 1 + rng.Intn(30)
	f.NewVars(nVars)
	nClauses := rng.Intn(40)
	for i := 0; i < nClauses; i++ {
		w := rng.Intn(8)
		if w == 0 && rng.Intn(4) != 0 {
			w = 1 // empty clauses stay present but rarer
		}
		c := make([]int, w)
		for j := range c {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		f.AddClause(c...)
	}
	return f
}

func formulasEqual(t *testing.T, trial int, a, b *Formula) {
	t.Helper()
	if a.NumVars() != b.NumVars() {
		t.Fatalf("trial %d: vars %d != %d", trial, a.NumVars(), b.NumVars())
	}
	if a.NumClauses() != b.NumClauses() {
		t.Fatalf("trial %d: clauses %d != %d", trial, a.NumClauses(), b.NumClauses())
	}
	ca, cb := a.Clauses(), b.Clauses()
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			t.Fatalf("trial %d clause %d: width %d != %d", trial, i, len(ca[i]), len(cb[i]))
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				t.Fatalf("trial %d clause %d: %v != %v", trial, i, ca[i], cb[i])
			}
		}
	}
}

// TestDIMACSRoundTripProperty serializes random formulas, re-parses
// them, and demands clause-for-clause equality — including the empty
// clause, which serializes to a bare "0" line.
func TestDIMACSRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		f := randomDIMACSFormula(rng)
		var buf bytes.Buffer
		if err := f.WriteDIMACS(&buf, "round-trip property test"); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		formulasEqual(t, trial, f, back)
	}
}

// TestDIMACSRoundTripSurvivesBlankLinesAndComments injects blank lines
// and comments between every line of the serialized form; the parser
// must tolerate them and reproduce the identical formula.
func TestDIMACSRoundTripSurvivesBlankLinesAndComments(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		f := randomDIMACSFormula(rng)
		var buf bytes.Buffer
		if err := f.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		var noisy strings.Builder
		for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
			switch rng.Intn(3) {
			case 0:
				noisy.WriteString("\n   \n")
			case 1:
				noisy.WriteString("c interleaved comment\n")
			}
			noisy.WriteString(line)
			noisy.WriteString("\n")
		}
		back, err := ParseDIMACS(strings.NewReader(noisy.String()))
		if err != nil {
			t.Fatalf("trial %d: parse with noise: %v", trial, err)
		}
		formulasEqual(t, trial, f, back)
	}
}

// TestDIMACSEmptyClauseExplicit pins the hardest edge: a formula that
// is just the empty clause (UNSAT by definition) must survive the trip.
func TestDIMACSEmptyClauseExplicit(t *testing.T) {
	f := New()
	f.NewVars(3)
	f.AddClause(1, -2)
	f.AddClause() // empty clause
	f.AddClause(3)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	formulasEqual(t, 0, f, back)
	if len(back.Clauses()[1]) != 0 {
		t.Fatal("empty clause lost in round trip")
	}
}
