package cnf

import (
	"bytes"
	"strings"
	"testing"
)

// satisfyingModels enumerates all satisfying assignments of f (over
// all variables) — only usable for small formulas.
func satisfyingModels(f *Formula) [][]bool {
	n := f.NumVars()
	var out [][]bool
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m>>(v-1)&1 == 1
		}
		if f.Eval(assign) {
			out = append(out, assign)
		}
	}
	return out
}

// checkGate verifies that a gadget's output variable is functionally
// forced: for every assignment of the input variables there is exactly
// one satisfying completion, and its output matches fn.
func checkGate(t *testing.T, build func(f *Formula, in []int) int, arity int, fn func(in []bool) bool) {
	t.Helper()
	f := New()
	in := f.NewVars(arity)
	out := build(f, in)
	models := satisfyingModels(f)
	byInput := map[int][]bool{}
	for _, m := range models {
		key := 0
		for i, v := range in {
			if m[v] {
				key |= 1 << i
			}
		}
		if _, dup := byInput[key]; dup {
			t.Fatalf("two satisfying completions for input %b", key)
		}
		byInput[key] = m
	}
	if len(byInput) != 1<<arity {
		t.Fatalf("only %d of %d inputs satisfiable", len(byInput), 1<<arity)
	}
	for key, m := range byInput {
		bitsIn := make([]bool, arity)
		for i := range bitsIn {
			bitsIn[i] = key>>i&1 == 1
		}
		want := fn(bitsIn)
		got := m[abs(out)]
		if out < 0 {
			got = !got
		}
		if got != want {
			t.Fatalf("input %b: gate output %v, want %v", key, got, want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGateAnd(t *testing.T) {
	checkGate(t, func(f *Formula, in []int) int { return f.GateAnd(in[0], in[1]) }, 2,
		func(in []bool) bool { return in[0] && in[1] })
}

func TestGateOr(t *testing.T) {
	checkGate(t, func(f *Formula, in []int) int { return f.GateOr(in[0], in[1]) }, 2,
		func(in []bool) bool { return in[0] || in[1] })
}

func TestGateAndNot(t *testing.T) {
	checkGate(t, func(f *Formula, in []int) int { return f.GateAndNot(in[0], in[1]) }, 2,
		func(in []bool) bool { return !in[0] && in[1] })
}

func TestGateXor2(t *testing.T) {
	checkGate(t, func(f *Formula, in []int) int { return f.GateXor2(in[0], in[1]) }, 2,
		func(in []bool) bool { return in[0] != in[1] })
}

func TestGateXorMany(t *testing.T) {
	for arity := 1; arity <= 7; arity++ {
		arity := arity
		checkGate(t, func(f *Formula, in []int) int { return f.GateXorMany(in) }, arity,
			func(in []bool) bool {
				p := false
				for _, b := range in {
					p = p != b
				}
				return p
			})
	}
}

func TestAddXorClause(t *testing.T) {
	for arity := 1; arity <= 5; arity++ {
		for _, rhs := range []bool{false, true} {
			f := New()
			in := f.NewVars(arity)
			f.AddXorClause(in, rhs)
			for _, m := range satisfyingModels(f) {
				p := false
				for _, v := range in {
					p = p != m[v]
				}
				if p != rhs {
					t.Fatalf("arity %d rhs %v: model with parity %v", arity, rhs, p)
				}
			}
			// Count: exactly half of assignments have each parity.
			if got := len(satisfyingModels(f)); got != 1<<(arity-1) {
				t.Fatalf("arity %d rhs %v: %d models, want %d", arity, rhs, got, 1<<(arity-1))
			}
		}
	}
}

func TestAtMostOne(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} { // spans pairwise and sequential paths
		f := New()
		in := f.NewVars(n)
		f.AtMostOne(in)
		for _, m := range satisfyingModels(f) {
			cnt := 0
			for _, v := range in {
				if m[v] {
					cnt++
				}
			}
			if cnt > 1 {
				t.Fatalf("n=%d: model with %d true literals", n, cnt)
			}
		}
		// Every ≤1 pattern must be achievable.
		patterns := map[int]bool{}
		for _, m := range satisfyingModels(f) {
			key := 0
			for i, v := range in {
				if m[v] {
					key |= 1 << i
				}
			}
			patterns[key] = true
		}
		if len(patterns) != n+1 {
			t.Fatalf("n=%d: %d reachable patterns, want %d", n, len(patterns), n+1)
		}
	}
}

func TestExactlyOne(t *testing.T) {
	f := New()
	in := f.NewVars(6)
	f.ExactlyOne(in)
	patterns := map[int]bool{}
	for _, m := range satisfyingModels(f) {
		cnt, key := 0, 0
		for i, v := range in {
			if m[v] {
				cnt++
				key |= 1 << i
			}
		}
		if cnt != 1 {
			t.Fatalf("model with %d true literals", cnt)
		}
		patterns[key] = true
	}
	if len(patterns) != 6 {
		t.Fatalf("%d singleton patterns, want 6", len(patterns))
	}
}

func TestUnitPropagate(t *testing.T) {
	f := New()
	a, b, c := f.NewVar(), f.NewVar(), f.NewVar()
	f.Unit(a)
	f.Implies(a, b)
	f.AddClause(-b, -a, c)
	forced, ok := f.UnitPropagate()
	if !ok {
		t.Fatal("consistent formula reported conflict")
	}
	want := map[int]bool{a: true, b: true, c: true}
	got := map[int]bool{}
	for _, l := range forced {
		got[abs(l)] = l > 0
	}
	for v, val := range want {
		if got[v] != val {
			t.Fatalf("var %d propagated to %v, want %v", v, got[v], val)
		}
	}
	// Conflict case.
	f.Unit(-c)
	if _, ok := f.UnitPropagate(); ok {
		t.Fatal("conflicting formula not detected")
	}
}

func TestSimplify(t *testing.T) {
	f := New()
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(a, -a, b) // tautology
	f.AddClause(a, a, b)  // duplicate literal
	removed := f.Simplify()
	if removed != 1 {
		t.Fatalf("removed %d clauses, want 1", removed)
	}
	if f.NumClauses() != 1 || len(f.Clauses()[0]) != 2 {
		t.Fatalf("surviving clause wrong: %v", f.Clauses())
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := New()
	vars := f.NewVars(5)
	f.AddClause(vars[0], -vars[1])
	f.AddClause(vars[2], vars[3], -vars[4])
	f.Unit(-vars[0])
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf, "attack instance", "seed 42"); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars() != f.NumVars() || back.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumVars(), back.NumClauses(), f.NumVars(), f.NumClauses())
	}
	for i, c := range f.Clauses() {
		bc := back.Clauses()[i]
		if len(bc) != len(c) {
			t.Fatalf("clause %d length changed", i)
		}
		for j := range c {
			if bc[j] != c[j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",          // clause before header
		"p cnf x 1\n1 0\n", // bad var count
		"p cnf 2 1\n3 0\n", // literal exceeds vars
		"p cnf 2 2\n1 0\n", // clause count mismatch
		"p cnf 2 1\n1 2\n", // missing terminator
		"p dnf 2 1\n1 0\n", // wrong format tag
	}
	for _, s := range cases {
		if _, err := ParseDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("ParseDIMACS accepted %q", s)
		}
	}
}

func TestParseDIMACSTolerance(t *testing.T) {
	in := "c comment\np cnf 3 2\nc mid comment\n1 -2\n3 0\n-1 2 -3 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 || f.NumVars() != 3 {
		t.Fatalf("parsed shape %d/%d", f.NumVars(), f.NumClauses())
	}
}

func TestStats(t *testing.T) {
	f := New()
	v := f.NewVars(4)
	f.AddClause(v[0], v[1])
	f.AddClause(v[0], v[1], v[2])
	f.AddClause(v[0], v[1], v[2], v[3])
	st := f.ComputeStats()
	if st.Vars != 4 || st.Clauses != 3 || st.Literals != 9 || st.Binary != 1 || st.Ternary != 1 || st.LongestCl != 4 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if !strings.Contains(st.String(), "vars=4") {
		t.Fatal("Stats.String missing fields")
	}
}

func TestCloneIndependent(t *testing.T) {
	f := New()
	a := f.NewVar()
	f.Unit(a)
	c := f.Clone()
	c.AddClause(-a)
	if f.NumClauses() != 1 {
		t.Fatal("Clone shares clause storage")
	}
}

func TestAddClauseGrowsVars(t *testing.T) {
	f := New()
	f.AddClause(-7)
	if f.NumVars() != 7 {
		t.Fatalf("NumVars = %d, want 7", f.NumVars())
	}
}
