package cnf

// Gate gadgets: Tseitin encodings of the boolean structure the
// symbolic Keccak encoder produces. Each gadget allocates its output
// variable (unless noted) and adds the defining clauses.

// Unit forces literal l true.
func (f *Formula) Unit(l int) { f.AddClause(l) }

// EquivLit adds clauses forcing a == b (as literals).
func (f *Formula) EquivLit(a, b int) {
	f.AddClause(-a, b)
	f.AddClause(a, -b)
}

// GateAnd returns out with out <-> (a AND b).
func (f *Formula) GateAnd(a, b int) int {
	out := f.NewVar()
	f.AddClause(-out, a)
	f.AddClause(-out, b)
	f.AddClause(out, -a, -b)
	return out
}

// GateOr returns out with out <-> (a OR b).
func (f *Formula) GateOr(a, b int) int {
	out := f.NewVar()
	f.AddClause(out, -a)
	f.AddClause(out, -b)
	f.AddClause(-out, a, b)
	return out
}

// GateAndNot returns out with out <-> ((NOT a) AND b) — the χ product
// term.
func (f *Formula) GateAndNot(a, b int) int {
	out := f.NewVar()
	f.AddClause(-out, -a)
	f.AddClause(-out, b)
	f.AddClause(out, a, -b)
	return out
}

// GateXor2 returns out with out <-> (a XOR b).
func (f *Formula) GateXor2(a, b int) int {
	out := f.NewVar()
	f.AddXorClause([]int{a, b, out}, false)
	return out
}

// AddXorClause constrains XOR(lits) = rhs (rhs=true means odd parity),
// expanding into the 2^(n-1) CNF clauses. Callers should keep n ≤ 5;
// the symbolic layer cuts longer chains first.
func (f *Formula) AddXorClause(lits []int, rhs bool) {
	n := len(lits)
	if n == 0 {
		if rhs {
			// 0 = 1: unsatisfiable; encode with an empty-equivalent pair.
			v := f.NewVar()
			f.AddClause(v)
			f.AddClause(-v)
		}
		return
	}
	if n > 16 {
		panic("cnf: XOR clause too wide; cut it first")
	}
	// Emit every sign pattern with an even (for rhs=true) number of
	// positive literals negated... Standard construction: clause
	// (l1^s1 ∨ ... ∨ ln^sn) for every sign vector s with parity(s) !=
	// rhs, where flipping a literal's sign means negating it.
	for mask := 0; mask < 1<<n; mask++ {
		if parity(mask) == rhs {
			continue
		}
		clause := make([]int, n)
		for i := 0; i < n; i++ {
			l := lits[i]
			if mask>>i&1 == 1 {
				l = -l
			}
			clause[i] = l
		}
		f.AddClause(clause...)
	}
}

func parity(m int) bool {
	p := false
	for m != 0 {
		p = !p
		m &= m - 1
	}
	return p
}

// GateXorMany XORs any number of literals by chaining balanced 3-ary
// XOR gates, returning the output literal. Length 0 is invalid.
func (f *Formula) GateXorMany(lits []int) int {
	switch len(lits) {
	case 0:
		panic("cnf: empty XOR")
	case 1:
		return lits[0]
	case 2:
		return f.GateXor2(lits[0], lits[1])
	}
	// Fold three inputs at a time: out <-> a^b^c costs 8 clauses but
	// halves the chain depth versus pairwise folding.
	acc := lits
	for len(acc) > 1 {
		var next []int
		i := 0
		for ; i+3 <= len(acc); i += 3 {
			out := f.NewVar()
			f.AddXorClause([]int{acc[i], acc[i+1], acc[i+2], out}, false)
			next = append(next, out)
		}
		switch len(acc) - i {
		case 2:
			next = append(next, f.GateXor2(acc[i], acc[i+1]))
		case 1:
			next = append(next, acc[i])
		}
		acc = next
	}
	return acc[0]
}

// AtMostOne adds the sequential (Sinz) at-most-one encoding over the
// literals: linear clauses and auxiliary variables instead of the
// quadratic pairwise encoding.
func (f *Formula) AtMostOne(lits []int) {
	n := len(lits)
	if n <= 1 {
		return
	}
	if n <= 4 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				f.AddClause(-lits[i], -lits[j])
			}
		}
		return
	}
	// s[i] = "some literal among lits[0..i] is true".
	s := f.NewVars(n - 1)
	f.AddClause(-lits[0], s[0])
	for i := 1; i < n-1; i++ {
		f.AddClause(-lits[i], s[i])
		f.AddClause(-s[i-1], s[i])
		f.AddClause(-lits[i], -s[i-1])
	}
	f.AddClause(-lits[n-1], -s[n-2])
}

// ExactlyOne adds at-least-one plus at-most-one.
func (f *Formula) ExactlyOne(lits []int) {
	f.AddClause(lits...)
	f.AtMostOne(lits)
}

// Implies adds (a -> b).
func (f *Formula) Implies(a, b int) { f.AddClause(-a, b) }
