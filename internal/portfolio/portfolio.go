// Package portfolio races N diversified CDCL solvers over the same
// CNF on separate goroutines and returns the first definitive answer.
//
// Each member runs the repository's sat.Solver with a different
// diversification preset (seed, restart cadence, activity decay,
// phase policy — see presets.go). Members exchange short / low-LBD
// learned clauses through bounded per-solver import queues: a clause
// learned by one solver is implied by the shared problem clauses, so
// injecting it into a sibling at decision level 0 is sound and prunes
// search the sibling has not done yet. The first solver to return
// Sat or Unsat wins; the rest are interrupted and the losers' partial
// work is kept (solvers stay warm for the next incremental call).
//
// The portfolio's *status* is deterministic — every member solves the
// same formula, so all definitive answers agree — but which member
// wins, and therefore which satisfying model is returned, depends on
// scheduling. Callers that need model determinism must run with
// Workers=1 (which executes inline, byte-identical to a plain
// sat.Solver with the base options).
package portfolio

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/obs"
	"sha3afa/internal/sat"
)

// Options configures a portfolio.
type Options struct {
	// Workers is the number of racing solvers; <= 0 means NumCPU.
	Workers int
	// Base is the solver configuration preset 0 runs unchanged and the
	// other presets diversify from (see Presets).
	Base sat.Options
	// ShareMaxLen exports learned clauses with at most this many
	// literals (0 = default 8).
	ShareMaxLen int
	// ShareMaxLBD additionally exports clauses with LBD at most this
	// (0 = default 4).
	ShareMaxLBD int
	// ImportLimit bounds each solver's pending-import queue; overflow
	// is dropped (0 = default 4096).
	ImportLimit int
	// NoSharing disables the clause exchange entirely.
	NoSharing bool
	// Recorder, when non-nil, receives per-member solver progress
	// (each member emits under "sat[i]:<preset>"), clause-share
	// import/export traffic, and win attribution for every Solve.
	Recorder obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.ShareMaxLen == 0 {
		o.ShareMaxLen = 8
	}
	if o.ShareMaxLBD == 0 {
		o.ShareMaxLBD = 4
	}
	if o.ImportLimit == 0 {
		o.ImportLimit = 4096
	}
	return o
}

// SolverStat reports one member's contribution to the last Solve.
type SolverStat struct {
	ID     int
	Name   string     // diversification preset name
	Status sat.Status // this member's own outcome (Unknown = canceled/budget)
	Stats  sat.Stats
}

func (st SolverStat) String() string {
	return fmt.Sprintf("[%d] %-10s %-8s conflicts=%-8d propagations=%-10d restarts=%-5d imported=%-6d exported=%d",
		st.ID, st.Name, st.Status, st.Stats.Conflicts, st.Stats.Propagations,
		st.Stats.Restarts, st.Stats.Imported, st.Stats.Exported)
}

// Portfolio is an incremental parallel solver: clauses added between
// Solve calls are broadcast to every member, mirroring the sat.Solver
// incremental interface so it can slot under core.Attack.
type Portfolio struct {
	opts    Options
	solvers []*sat.Solver
	names   []string
	last    []sat.Status
	winner  int
	model   []bool
	failed  []int // winner's failed-assumption core from the last Unsat

	rec obs.Recorder
	// prevImported/prevExported snapshot each member's share counters
	// at the end of the previous Solve, so win events carry per-solve
	// traffic deltas rather than lifetime totals.
	prevImported []int64
	prevExported []int64
}

// New returns an empty portfolio of diversified solvers.
func New(opts Options) *Portfolio {
	opts = opts.withDefaults()
	presets := Presets(opts.Workers, opts.Base)
	p := &Portfolio{
		opts:         opts,
		last:         make([]sat.Status, len(presets)),
		winner:       -1,
		rec:          opts.Recorder,
		prevImported: make([]int64, len(presets)),
		prevExported: make([]int64, len(presets)),
	}
	for i, pre := range presets {
		s := sat.NewWithOptions(pre.Options)
		s.SetImportLimit(opts.ImportLimit)
		if p.rec != nil {
			s.SetRecorder(p.rec, fmt.Sprintf("sat[%d]:%s", i, pre.Name))
		}
		p.solvers = append(p.solvers, s)
		p.names = append(p.names, pre.Name)
	}
	if !opts.NoSharing && len(p.solvers) > 1 {
		for i, s := range p.solvers {
			peers := make([]*sat.Solver, 0, len(p.solvers)-1)
			for j, o := range p.solvers {
				if j != i {
					peers = append(peers, o)
				}
			}
			s.SetLearnCallback(opts.ShareMaxLen, opts.ShareMaxLBD,
				func(lits []int, lbd int) {
					for _, peer := range peers {
						peer.ImportClause(lits, lbd)
					}
				})
		}
	}
	return p
}

// Workers returns the number of member solvers.
func (p *Portfolio) Workers() int { return len(p.solvers) }

// NumVars returns the variable count (identical across members).
func (p *Portfolio) NumVars() int { return p.solvers[0].NumVars() }

// EnsureVars grows every member to at least n variables.
func (p *Portfolio) EnsureVars(n int) {
	for _, s := range p.solvers {
		for s.NumVars() < n {
			s.NewVar()
		}
	}
}

// AddClause broadcasts a problem clause to every member. An error
// means the formula is already unsatisfiable at level 0.
func (p *Portfolio) AddClause(lits ...int) error {
	var firstErr error
	for _, s := range p.solvers {
		if err := s.AddClause(lits...); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Solve races all members under the given assumptions and returns the
// first definitive status, interrupting the losers. It returns
// Unknown only when every member ran out of its own budget.
func (p *Portfolio) Solve(assumptions ...int) sat.Status {
	return p.SolveContext(context.Background(), assumptions...)
}

// SolveContext is Solve with cancellation: when ctx is done every
// member is interrupted and Unknown is returned.
func (p *Portfolio) SolveContext(ctx context.Context, assumptions ...int) sat.Status {
	var start time.Time
	if p.rec != nil {
		start = time.Now()
	}
	p.winner = -1
	p.failed = nil
	for i := range p.last {
		p.last[i] = sat.Unknown
	}
	if len(p.solvers) == 1 {
		st := p.solvers[0].SolveContext(ctx, assumptions...)
		p.last[0] = st
		if st == sat.Sat {
			p.winner = 0
			p.model = append(p.model[:0], p.solvers[0].Model()...)
		} else if st == sat.Unsat {
			p.winner = 0
			p.failed = p.solvers[0].FailedAssumptions()
		}
		if p.rec != nil {
			p.emitWin(st, time.Since(start))
		}
		return st
	}

	type outcome struct {
		id int
		st sat.Status
	}
	results := make(chan outcome, len(p.solvers))
	for i, s := range p.solvers {
		go func(id int, s *sat.Solver) {
			results <- outcome{id, s.Solve(assumptions...)}
		}(i, s)
	}

	stop := ctx.Done()
	status := sat.Unknown
	for remaining := len(p.solvers); remaining > 0; {
		select {
		case <-stop:
			// External cancellation: interrupt everyone once, then keep
			// draining until all goroutines have returned.
			for _, s := range p.solvers {
				s.Interrupt()
			}
			stop = nil
		case o := <-results:
			remaining--
			p.last[o.id] = o.st
			if o.st == sat.Unknown {
				continue
			}
			if p.winner < 0 {
				p.winner = o.id
				status = o.st
				if o.st == sat.Sat {
					// The winner's goroutine finished before sending on
					// the channel, so reading its model is race-free.
					p.model = append(p.model[:0], p.solvers[o.id].Model()...)
				} else {
					// Unsat: capture the winner's failed-assumption core
					// (race-free for the same reason as the model read).
					p.failed = p.solvers[o.id].FailedAssumptions()
				}
				for j, s := range p.solvers {
					if j != o.id {
						s.Interrupt()
					}
				}
			} else if status != o.st {
				// Two members disagreeing on a definitive answer means
				// the clause exchange broke soundness — never continue.
				panic(fmt.Sprintf("portfolio: solver %d says %v but solver %d says %v",
					p.winner, status, o.id, o.st))
			}
		}
	}
	// Interrupts aimed at members that had already finished on their
	// own budget were never consumed; drop them so they cannot abort
	// the next incremental call.
	for _, s := range p.solvers {
		s.ClearInterrupt()
	}
	if p.rec != nil {
		p.emitWin(status, time.Since(start))
	}
	return status
}

// emitWin records win attribution and clause-share traffic for the
// Solve that just finished. Called on the portfolio's owning goroutine
// after every member goroutine has returned, so reading member stats
// is race-free.
func (p *Portfolio) emitWin(status sat.Status, elapsed time.Duration) {
	var imported, exported int64
	for i, s := range p.solvers {
		st := s.Stats()
		imported += st.Imported - p.prevImported[i]
		exported += st.Exported - p.prevExported[i]
		p.prevImported[i], p.prevExported[i] = st.Imported, st.Exported
	}
	name := "-"
	if p.winner >= 0 {
		name = p.names[p.winner]
	}
	m := p.rec.Metrics()
	m.Counter("portfolio.solves").Inc()
	m.Counter("portfolio.shared.imported").Add(imported)
	m.Counter("portfolio.shared.exported").Add(exported)
	p.rec.Emit("portfolio", "portfolio.win",
		obs.F("winner", p.winner),
		obs.F("name", name),
		obs.F("status", status.String()),
		obs.F("members", len(p.solvers)),
		obs.F("ms", float64(elapsed.Microseconds())/1e3),
		obs.F("imported", imported),
		obs.F("exported", exported))
}

// Model returns the winner's satisfying assignment from the last Sat
// result, indexed by DIMACS variable (index 0 unused).
func (p *Portfolio) Model() []bool { return p.model }

// Winner returns the index of the member that decided the last Solve,
// or -1 if none did.
func (p *Portfolio) Winner() int { return p.winner }

// FailedAssumptions returns, after an Unsat result from a Solve with
// assumptions, the winning member's failed-assumption core: a subset
// of the assumptions already sufficient for unsatisfiability. Which
// core is returned depends on which member won the race, but every
// member's core is a valid core of the same formula, so callers may
// act on any of them. Empty when the formula is unsatisfiable on its
// own.
func (p *Portfolio) FailedAssumptions() []int {
	return append([]int(nil), p.failed...)
}

// Stats reports each member's accumulated counters and last outcome.
func (p *Portfolio) Stats() []SolverStat {
	out := make([]SolverStat, len(p.solvers))
	for i, s := range p.solvers {
		out[i] = SolverStat{ID: i, Name: p.names[i], Status: p.last[i], Stats: s.Stats()}
	}
	return out
}

// Result is the outcome of a one-shot Solve over a formula.
type Result struct {
	Status   sat.Status
	Model    []bool // nil unless Sat
	Winner   int    // index into Solvers; -1 when Unknown
	Solvers  []SolverStat
	WallTime time.Duration
}

// Solve is the one-shot entry point: load the formula into a fresh
// portfolio, race, and report per-solver statistics.
func Solve(f *cnf.Formula, opts Options) Result {
	return SolveContext(context.Background(), f, opts)
}

// SolveContext is Solve with cancellation.
func SolveContext(ctx context.Context, f *cnf.Formula, opts Options) Result {
	p := New(opts)
	p.EnsureVars(f.NumVars())
	start := time.Now()
	for _, c := range f.Clauses() {
		if err := p.AddClause(c...); err != nil {
			// UNSAT at level 0: no need to race.
			return Result{Status: sat.Unsat, Winner: 0, Solvers: p.Stats(), WallTime: time.Since(start)}
		}
	}
	st := p.SolveContext(ctx)
	res := Result{Status: st, Winner: p.winner, Solvers: p.Stats(), WallTime: time.Since(start)}
	if st == sat.Sat {
		res.Model = append([]bool(nil), p.Model()...)
	}
	return res
}
