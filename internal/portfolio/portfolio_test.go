package portfolio

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/sat"
)

// pigeonhole encodes PHP(holes+1, holes) — UNSAT with real search.
func pigeonhole(holes int) *cnf.Formula {
	f := cnf.New()
	pigeons := holes + 1
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = f.NewVars(holes)
		f.AddClause(p[i]...)
	}
	for h := 0; h < holes; h++ {
		for i := 0; i < pigeons; i++ {
			for j := i + 1; j < pigeons; j++ {
				f.AddClause(-p[i][h], -p[j][h])
			}
		}
	}
	return f
}

func plantedFormula(rng *rand.Rand, n int) *cnf.Formula {
	planted := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		planted[v] = rng.Intn(2) == 1
	}
	f := cnf.New()
	f.NewVars(n)
	for i := 0; i < 4*n; i++ {
		c := make([]int, 3)
		for {
			ok := false
			for j := range c {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
				w := v
				if w < 0 {
					w = -w
				}
				if planted[w] == (v > 0) {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		f.AddClause(c...)
	}
	return f
}

func TestPortfolioMatchesSingleSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		var f *cnf.Formula
		if trial%2 == 0 {
			f = plantedFormula(rng, 60+10*trial)
		} else {
			f = pigeonhole(4 + trial/2)
		}
		want, _ := sat.SolveFormula(f, sat.Options{})
		for _, workers := range []int{1, 4} {
			res := Solve(f, Options{Workers: workers})
			if res.Status != want {
				t.Fatalf("trial %d workers=%d: portfolio=%v single=%v", trial, workers, res.Status, want)
			}
			if res.Status == sat.Sat {
				if res.Model == nil || !f.Eval(res.Model) {
					t.Fatalf("trial %d workers=%d: winner's model does not satisfy the formula", trial, workers)
				}
				if res.Winner < 0 || res.Winner >= workers {
					t.Fatalf("trial %d: bad winner index %d", trial, res.Winner)
				}
			}
			if len(res.Solvers) != workers {
				t.Fatalf("trial %d: %d solver stats, want %d", trial, len(res.Solvers), workers)
			}
		}
	}
}

func TestPortfolioIncrementalWithAssumptionsAndClauses(t *testing.T) {
	// Mirror the attack's usage: incremental clauses, guard literals as
	// assumptions, model enumeration via blocking clauses.
	p := New(Options{Workers: 3})
	p.EnsureVars(3)
	if err := p.AddClause(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddClause(1, 3); err != nil {
		t.Fatal(err)
	}
	if p.Solve(-1) != sat.Sat {
		t.Fatal("(1|2)&(1|3) under ¬1 should be SAT")
	}
	m := p.Model()
	if m[1] || !m[2] || !m[3] {
		t.Fatalf("model %v violates assumptions/clauses", m)
	}
	if p.Solve(-1, -2) != sat.Unsat {
		t.Fatal("¬1∧¬2 should be UNSAT")
	}
	// Members stay reusable after an assumption-UNSAT race.
	if p.Solve() != sat.Sat {
		t.Fatal("portfolio unusable after assumption conflict")
	}
	// Enumerate all models of (1|2)&(1|3) by blocking; there are 5.
	seen := 0
	for p.Solve() == sat.Sat {
		seen++
		if seen > 8 {
			t.Fatal("enumeration does not terminate")
		}
		m := p.Model()
		block := make([]int, 0, 3)
		for v := 1; v <= 3; v++ {
			if m[v] {
				block = append(block, -v)
			} else {
				block = append(block, v)
			}
		}
		if err := p.AddClause(block...); err != nil {
			break
		}
	}
	if seen != 5 {
		t.Fatalf("enumerated %d models, want 5", seen)
	}
}

func TestPortfolioClauseSharing(t *testing.T) {
	// A hard UNSAT instance forces every member to learn; with the
	// exchange on, short learned clauses must actually cross solvers.
	f := pigeonhole(7)
	res := Solve(f, Options{Workers: 4, ShareMaxLen: 16, ShareMaxLBD: 8})
	if res.Status != sat.Unsat {
		t.Fatalf("PHP(7) = %v, want UNSAT", res.Status)
	}
	var exported, imported int64
	for _, st := range res.Solvers {
		exported += st.Stats.Exported
		imported += st.Stats.Imported
	}
	if exported == 0 {
		t.Fatal("no clauses exported despite sharing enabled")
	}
	// Imports only materialize when a loser survives long enough to
	// restart; on a race-detector-slowed run that can legitimately be
	// rare, so only sanity-check the direction, not a threshold.
	if imported > 0 && exported == 0 {
		t.Fatal("imported clauses without any exports")
	}
}

func TestPortfolioSharingSoundness(t *testing.T) {
	// Status must agree with the sequential answer across many mixed
	// instances while clauses flow between members (the panic inside
	// SolveContext guards Sat/Unsat disagreement).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		f := plantedFormula(rng, 40)
		res := Solve(f, Options{Workers: 4, ShareMaxLen: 32, ShareMaxLBD: 16})
		if res.Status != sat.Sat {
			t.Fatalf("planted trial %d: %v", trial, res.Status)
		}
		if !f.Eval(res.Model) {
			t.Fatalf("planted trial %d: invalid model", trial)
		}
	}
	if res := Solve(pigeonhole(6), Options{Workers: 4, ShareMaxLen: 32, ShareMaxLBD: 16}); res.Status != sat.Unsat {
		t.Fatalf("PHP(6) with sharing: %v", res.Status)
	}
}

func TestPortfolioCancellation(t *testing.T) {
	// PHP(10) is far beyond what any member can decide quickly;
	// cancelling the context must end the race promptly with Unknown.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := SolveContext(ctx, pigeonhole(10), Options{Workers: runtime.NumCPU()})
	elapsed := time.Since(start)
	if res.Status != sat.Unknown {
		t.Fatalf("cancelled solve returned %v", res.Status)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Winner != -1 {
		t.Fatalf("cancelled solve has winner %d", res.Winner)
	}
}

func TestPortfolioLosersAreInterrupted(t *testing.T) {
	// One member decides instantly (unit clauses); the others must be
	// interrupted rather than grinding on, so Solve returns promptly
	// and the portfolio stays reusable.
	f := pigeonhole(9)
	extra := f.NewVar()
	f.AddClause(extra)
	f.AddClause(-extra) // UNSAT at level 0 once both units propagate
	start := time.Now()
	res := Solve(f, Options{Workers: 4})
	if res.Status != sat.Unsat {
		t.Fatalf("got %v", res.Status)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("losers not interrupted: %v", elapsed)
	}
}

func TestPresetsDeterministicAndDiverse(t *testing.T) {
	a := Presets(8, sat.Options{})
	b := Presets(8, sat.Options{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("preset %d not deterministic", i)
		}
	}
	if a[0].Options != (sat.Options{}) {
		t.Fatalf("preset 0 must be the unchanged base, got %+v", a[0].Options)
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for i, pre := range a {
		if names[pre.Name] {
			t.Fatalf("duplicate preset name %q", pre.Name)
		}
		names[pre.Name] = true
		if i > 0 {
			if seeds[pre.Options.Seed] {
				t.Fatalf("duplicate seed %d", pre.Options.Seed)
			}
			seeds[pre.Options.Seed] = true
		}
	}
}
