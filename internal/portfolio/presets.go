package portfolio

import (
	"fmt"

	"sha3afa/internal/sat"
)

// Preset is one diversified solver configuration.
type Preset struct {
	Name    string
	Options sat.Options
}

// Presets derives n diversified solver configurations from a base.
// Preset 0 ("ref") is the base unchanged, so a 1-worker portfolio is
// byte-identical to a plain solver; the rest cycle through four
// families and draw distinct deterministic seeds, so even two members
// of the same family explore different search trees:
//
//   - ref:    the base heuristics untouched
//   - agile:  fast Luby restarts, slow activity decay, a pinch of
//     random branching — chases short proofs
//   - stable: long restart cycles, aggressive decay, true-first
//     phases — digs deep on one trajectory
//   - random: random initial phases and frequent random branching —
//     the diversity backstop
//
// Seeds are a pure function of the member index, so a portfolio of
// the same size is reproducible run to run (up to goroutine timing).
func Presets(n int, base sat.Options) []Preset {
	if n < 1 {
		n = 1
	}
	out := make([]Preset, n)
	for i := range out {
		o := base
		name := "ref"
		if i > 0 {
			o.Seed = int64(i)*0x9E3779B9 + 1
			switch i % 4 {
			case 1:
				name = "agile"
				o.RestartBase = 32
				o.VarDecay = 0.99
				o.RandomVarFreq = 0.01
			case 2:
				name = "stable"
				o.RestartBase = 512
				o.VarDecay = 0.90
				o.InitialPhase = sat.PhaseTrue
			case 3:
				name = "random"
				o.InitialPhase = sat.PhaseRandom
				o.RandomVarFreq = 0.05
			case 0:
				name = "ref"
				o.RandomVarFreq = 0.005
			}
			if i >= 4 {
				name = fmt.Sprintf("%s-%d", name, i/4+1)
			}
		}
		out[i] = Preset{Name: name, Options: o}
	}
	return out
}
