package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// TestSharedRecorderConcurrency feeds ONE recorder from everything that
// can emit concurrently: four campaign workers, each running an attack
// whose two portfolio members also emit solver progress. Tiny conflict
// budgets keep it fast; run with -race to make it a real data-race
// check (the -race CI job runs the full matrix of emitters through
// this single shared obs.Trace).
func TestSharedRecorderConcurrency(t *testing.T) {
	tr := obs.NewTrace(io.Discard, 128)
	SetWorkers(4)
	defer SetWorkers(1)
	cfg := core.DefaultConfig(keccak.SHA3_512, fault.Byte)
	cfg.KnownPosition = true
	cfg.Portfolio = 2
	cfg.SolverOptions.MaxConflicts = 200
	cfg.SolverOptions.ProgressEvery = 32
	runs := RunAFABatch(keccak.SHA3_512, fault.Byte, 700, 4, AFAOptions{
		MaxFaults:  6,
		SolveEvery: 3,
		Recorder:   tr,
		Config:     &cfg,
	})
	for i, r := range runs {
		if r.Err != "" {
			t.Fatalf("run %d failed: %s", i, r.Err)
		}
	}
	snap := tr.Metrics().Snapshot()
	if snap.Counters["campaign.runs"] != 4 {
		t.Fatalf("campaign.runs = %d, want 4", snap.Counters["campaign.runs"])
	}
	if snap.Counters["portfolio.solves"] == 0 {
		t.Fatal("portfolio emitted no win events")
	}
	if total, _ := tr.Totals(); total == 0 {
		t.Fatal("no events emitted")
	}
}

// TestCheckpointKeepsEffortFields: the wall-clock and solver-effort
// fields ride the checkpoint JSON, so a resumed batch reproduces the
// full Summary — timing and effort columns included — from disk.
func TestCheckpointKeepsEffortFields(t *testing.T) {
	dir := t.TempDir()
	run := AFARun{
		Mode: keccak.SHA3_256, Model: fault.Byte, Seed: 11,
		Recovered: true, FaultsUsed: 40,
		TotalTime: 1234567890, SolveTime: 987654321,
		Conflicts: 55555, Propagations: 7777777, Evicted: 2,
	}
	if err := SaveCheckpoint(dir, run); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadCheckpoint(dir, run.Mode, run.Model, run.Seed, run.Noise)
	if !ok {
		t.Fatal("checkpoint not loaded back")
	}
	if got.TotalTime != run.TotalTime || got.SolveTime != run.SolveTime ||
		got.Conflicts != run.Conflicts || got.Propagations != run.Propagations {
		t.Fatalf("effort fields mutated by the round trip:\n got %+v\nwant %+v", got, run)
	}
	s := SummarizeAFA([]AFARun{got})
	if s.AvgSolveTime != run.SolveTime || s.AvgConflicts != float64(run.Conflicts) ||
		s.AvgPropagations != float64(run.Propagations) || s.AvgEvicted != 2 {
		t.Fatalf("summary effort columns wrong: %+v", s)
	}
}

// firstIndex returns the line index of the first event named ev, or -1.
func firstIndex(events []map[string]any, ev string) int {
	for i, e := range events {
		if e["ev"] == ev {
			return i
		}
	}
	return -1
}

// countEvents returns how many events are named ev.
func countEvents(events []map[string]any, ev string) int {
	n := 0
	for _, e := range events {
		if e["ev"] == ev {
			n++
		}
	}
	return n
}

// TestTraceGolden is the acceptance criterion for the observability
// stream: a seeded SHA3-256 single-byte attack, traced to JSONL, must
// produce a parseable stream containing solver progress, portfolio win
// attribution, all four attack phase spans in pipeline order, and the
// closing campaign run record.
func TestTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf, 1024)
	// Known positions keep the SHA3-256 instances tractable on one core
	// (same reasoning as the noisy-campaign test); preprocessing is
	// armed so the attack.preprocess phase actually occurs, and a small
	// progress cadence guarantees mid-solve progress events.
	cfg := core.DefaultConfig(keccak.SHA3_256, fault.Byte)
	cfg.KnownPosition = true
	cfg.Preprocess = true
	cfg.Portfolio = 2
	cfg.SolverOptions.ProgressEvery = 64
	run := RunAFA(keccak.SHA3_256, fault.Byte, 301, AFAOptions{
		MaxFaults:  150,
		SolveEvery: 12, // sparse solve points keep the test short
		Recorder:   tr,
		Config:     &cfg,
	})
	if run.Err != "" {
		t.Fatalf("run failed: %s", run.Err)
	}
	if !run.Recovered {
		t.Fatalf("not recovered within %d faults", run.FaultsUsed)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("trace sink error: %v", err)
	}

	var events []map[string]any
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i, err, line)
		}
		if e["ev"] == "" || e["ev"] == nil {
			t.Fatalf("trace line %d has no event name: %s", i, line)
		}
		events = append(events, e)
	}

	// The attack pipeline order, by first occurrence: the correct digest
	// is encoded before anything is preprocessed, preprocessing precedes
	// the first solve, and decoding only happens after a Sat result.
	order := []string{"attack.encode.end", "attack.preprocess.end", "attack.solve.end", "attack.decode.end"}
	prev := -1
	for _, ev := range order {
		idx := firstIndex(events, ev)
		if idx < 0 {
			t.Fatalf("trace has no %s event", ev)
		}
		if idx <= prev {
			t.Fatalf("%s first occurs at line %d, out of pipeline order %v", ev, idx, order)
		}
		prev = idx
	}

	if countEvents(events, "solver.progress") == 0 {
		t.Fatal("trace has no solver.progress events")
	}
	if countEvents(events, "portfolio.win") == 0 {
		t.Fatal("trace has no portfolio.win events")
	}
	if n := countEvents(events, "campaign.run"); n != 1 {
		t.Fatalf("trace has %d campaign.run records, want 1", n)
	}
	rec := events[firstIndex(events, "campaign.run")]
	f, _ := rec["f"].(map[string]any)
	if f == nil || f["recovered"] != true {
		t.Fatalf("campaign.run record = %v, want recovered=true", rec)
	}
	if c, _ := f["conflicts"].(float64); c <= 0 {
		t.Fatalf("campaign.run record carries no solver effort: %v", f)
	}
	// The run record is the last event: it is emitted by the outermost
	// deferred hook of RunAFACtx, after every phase span has closed.
	if last := events[len(events)-1]; last["ev"] != "campaign.run" {
		t.Fatalf("last event is %q, want campaign.run", last["ev"])
	}
}
