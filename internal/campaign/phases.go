package campaign

import (
	"fmt"
	"io"
	"time"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// TablePhases — experiment P4: where an attack's wall clock goes, per
// SHA-3 mode, under the single-byte model. Each mode's batch runs with
// its own metrics-only recorder (no ring, no sink), so the phase
// timers — fed by the attack.{encode,preprocess,solve,decode} spans —
// aggregate exactly that mode's runs. Preprocessing is armed so all
// four phases are exercised; known fault positions keep an all-modes
// sweep inside a single-core budget (the P3 precedent — the phase
// *split* is what this table measures, and the relaxed attack only
// shifts more of it into solve). The emitter installs its own per-mode
// recorders; a process-wide recorder (SetRecorder) still sees the
// campaign.run records because those resolve through AFAOptions first.
func TablePhases(w io.Writer, seeds, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "P4: phase-time breakdown, single-byte model, known positions, preprocessing on (seeds=%d)\n", seeds)
	fmt.Fprintf(w, "%-10s | %-9s | %-12s | %-12s | %-12s | %-12s | %s\n",
		"mode", "recovered", "encode", "preprocess", "solve", "decode", "conflicts")
	for _, mode := range keccak.FixedModes {
		tr := obs.NewTrace(nil, 0)
		cfg := core.DefaultConfig(mode, fault.Byte)
		cfg.KnownPosition = true
		cfg.Preprocess = true
		// Same budget/stride scaling as Table1: shorter digests carry
		// less information per fault, so the sweep needs more of them
		// and solves less often.
		budget, stride := maxFaults, 1
		if mode.DigestBits() < 384 {
			budget, stride = maxFaults*2, 4
		}
		runs := RunAFABatch(mode, fault.Byte, 11000, seeds, AFAOptions{
			MaxFaults:  budget,
			SolveEvery: stride,
			Recorder:   tr,
			Config:     &cfg,
		})
		recovered := 0
		for _, r := range runs {
			if r.Recovered {
				recovered++
			}
		}
		snap := tr.Metrics().Snapshot()
		phases := []string{"attack.encode", "attack.preprocess", "attack.solve", "attack.decode"}
		var totals [4]float64
		var sum float64
		for i, name := range phases {
			totals[i] = snap.Timers[name].TotalMS
			sum += totals[i]
		}
		fmt.Fprintf(w, "%-10s | %4d/%-4d", mode, recovered, len(runs))
		for i := range phases {
			pct := 0.0
			if sum > 0 {
				pct = 100 * totals[i] / sum
			}
			fmt.Fprintf(w, " | %8s %2.0f%%", msDur(totals[i]).Round(time.Millisecond), pct)
		}
		fmt.Fprintf(w, " | %d\n", snap.Counters["sat.conflicts"])
	}
}

// msDur converts a millisecond float (the timer unit) to a Duration.
func msDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
