// Package campaign orchestrates the paper's experiments: repeated
// attack runs over seeded random messages and fault streams, per-mode
// and per-model sweeps, and emitters that print the rows of each table
// and the series of each figure in DESIGN.md's experiment index.
package campaign

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"sha3afa/internal/core"
	"sha3afa/internal/dfa"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
	"sha3afa/internal/portfolio"
)

// AFARun is the outcome of one AFA attack campaign. It is the unit of
// checkpointing: the struct round-trips through JSON, so every field
// must stay serializable.
type AFARun struct {
	Mode        keccak.Mode
	Model       fault.Model
	Seed        int64
	Noise       fault.Noise // injection noise the campaign ran under
	Recovered   bool
	FaultsUsed  int // faults consumed until recovery (== MaxFaults when not recovered)
	TotalTime   time.Duration
	SolveTime   time.Duration // cumulative SAT time
	// Conflicts/Propagations aggregate solver effort across all members
	// of the final attempt. Together with the wall-clock fields above
	// they are part of the checkpoint JSON, so a resumed batch
	// reproduces the full Summary — timing and effort columns included —
	// without re-running anything.
	Conflicts    int64
	Propagations int64
	Vars         int // final CNF size
	Clauses      int
	FaultsIdent int // faults whose (window,value) the final model reproduced exactly
	MessageOK   bool
	// Evicted counts observations the guarded attack quarantined as
	// out-of-model; EvictedOK counts how many of those were genuinely
	// noisy (ground truth), and NoisyFed how many noisy observations
	// were fed in total — together they score blame accuracy.
	Evicted   int
	EvictedOK int
	NoisyFed  int
	// Retries counts budget escalations after BudgetExceeded attempts.
	Retries int
	// Err is non-empty when the run failed outright: a worker panic, a
	// setup error, or cancellation. A run with Err set is never
	// checkpointed and never counted as recovered.
	Err string
	// Solvers reports per-solver work: one entry for the classic
	// solver, one per member when the attack ran a portfolio.
	Solvers []portfolio.SolverStat
}

// AFAOptions controls one AFA campaign run.
type AFAOptions struct {
	MaxFaults int
	// SolveEvery solves after every k-th fault (1 = after each). The
	// first solve happens once the information-theoretic minimum
	// number of faulty digests is available.
	SolveEvery int
	// MinFaults defers the first solve; 0 derives the information-
	// theoretic minimum from digest and state sizes.
	MinFaults int
	// Noise degrades the simulated injections (duds, model
	// violations). Any non-zero noise automatically arms the guarded
	// attack (core.Config.Guarded) so blamed observations are evicted
	// instead of killing the run.
	Noise fault.Noise
	// Retries allows this many whole-campaign re-attempts after a run
	// that saw BudgetExceeded and did not recover. Each retry escalates
	// the solver budget (conflicts ×4, timeout ×2) and the final retry
	// additionally arms a small solver portfolio.
	Retries int
	// Checkpoint, when set, is a directory where RunAFABatch records
	// each finished run as JSON (written atomically via rename).
	Checkpoint string
	// Resume makes RunAFABatch load existing checkpoint records
	// instead of re-running their campaigns.
	Resume bool
	// Recorder, when non-nil, receives a "campaign.run" event per run
	// plus everything the attack layers emit (see internal/obs). When
	// nil, the process-wide recorder (SetRecorder) is consulted, so
	// emitters with io.Writer-only signatures still trace.
	Recorder obs.Recorder
	// Config overrides; zero value uses core.DefaultConfig.
	Config *core.Config
}

// randomMessage draws a single-block message for the mode.
func randomMessage(mode keccak.Mode, rng *rand.Rand) []byte {
	n := 1 + rng.Intn(mode.RateBytes()-1)
	msg := make([]byte, n)
	rng.Read(msg)
	return msg
}

// minFaults returns the information-theoretic minimum number of
// faulty digests before the state can possibly be pinned down.
func minFaults(mode keccak.Mode) int {
	d := mode.DigestBits()
	need := keccak.StateBits - d // the correct digest gives d bits
	k := (need + d - 1) / d
	if k < 1 {
		k = 1
	}
	return k
}

// RunAFA executes one seeded AFA campaign: a random message, a stream
// of faults under the model, solving until recovery or MaxFaults. It
// honours the process-wide batch context (SetContext).
func RunAFA(mode keccak.Mode, model fault.Model, seed int64, opts AFAOptions) AFARun {
	return RunAFACtx(Context(), mode, model, seed, opts)
}

// RunAFACtx is RunAFA with cancellation. The run can never kill its
// caller: worker panics are recovered into run.Err, and a done context
// stops the fault stream, marking the run canceled.
func RunAFACtx(ctx context.Context, mode keccak.Mode, model fault.Model, seed int64, opts AFAOptions) (run AFARun) {
	run = AFARun{Mode: mode, Model: model, Seed: seed, Noise: opts.Noise}
	rec := opts.Recorder
	if rec == nil {
		rec = ActiveRecorder()
	}
	if rec != nil {
		// Registered before the recover and TotalTime defers so it runs
		// after both: the run record sees the final Err and timing.
		defer func() { emitRunRecord(rec, &run) }()
	}
	defer func() {
		if r := recover(); r != nil {
			run.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	msg := randomMessage(mode, rng)
	if opts.MaxFaults <= 0 {
		opts.MaxFaults = 100
	}
	if opts.SolveEvery <= 0 {
		// Wider fault models carry less information per observation
		// and produce harder instances, so solving after every single
		// fault wastes time: default to a model-scaled stride.
		opts.SolveEvery = model.Width() / 8
		if opts.SolveEvery < 1 {
			opts.SolveEvery = 1
		}
	}
	if opts.MinFaults <= 0 {
		opts.MinFaults = minFaults(mode)
	}

	var correct []byte
	var injs []fault.Injection
	if opts.Noise.Enabled() {
		correct, injs = fault.NoisyCampaign(mode, msg, model, 22, opts.MaxFaults, seed+1, opts.Noise)
	} else {
		correct, injs = fault.Campaign(mode, msg, model, 22, opts.MaxFaults, seed+1)
	}
	var cfg core.Config
	if opts.Config != nil {
		cfg = *opts.Config
	} else {
		cfg = core.DefaultConfig(mode, model)
	}
	cfg.Mode, cfg.Model = mode, model
	if cfg.Recorder == nil {
		cfg.Recorder = rec
	}
	if opts.Noise.Enabled() {
		// Noisy observations would otherwise turn the attack terminally
		// Inconsistent: arm the guarded engine so they get evicted.
		cfg.Guarded = true
	}
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	start := time.Now()
	defer func() { run.TotalTime = time.Since(start) }()
	for attempt := 0; ; attempt++ {
		sawBudget := runAFAAttempt(ctx, &run, cfg, correct, injs, msg, &truth, opts)
		if run.Recovered || run.Err != "" || attempt >= opts.Retries || !sawBudget {
			return run
		}
		run.Retries++
		escalate(&cfg, attempt+1 == opts.Retries)
	}
}

// emitRunRecord reports one finished campaign run to the recorder: the
// per-run event the trace golden test keys on, plus the aggregate
// counters the live progress ticker displays.
func emitRunRecord(rec obs.Recorder, run *AFARun) {
	m := rec.Metrics()
	m.Counter("campaign.runs").Inc()
	if run.Recovered {
		m.Counter("campaign.recovered").Inc()
	}
	fields := []obs.Field{
		obs.F("mode", run.Mode.String()),
		obs.F("model", run.Model.String()),
		obs.F("seed", run.Seed),
		obs.F("recovered", run.Recovered),
		obs.F("faults", run.FaultsUsed),
		obs.F("conflicts", run.Conflicts),
		obs.F("propagations", run.Propagations),
		obs.F("evicted", run.Evicted),
		obs.F("retries", run.Retries),
		obs.F("total_ms", float64(run.TotalTime.Microseconds())/1e3),
		obs.F("solve_ms", float64(run.SolveTime.Microseconds())/1e3),
	}
	if run.Err != "" {
		fields = append(fields, obs.F("err", run.Err))
	}
	rec.Emit("campaign", "campaign.run", fields...)
}

// runAFAAttempt streams the observations into one fresh attack session
// and fills the run record. It reports whether any solve exhausted its
// budget (the signal for escalation).
func runAFAAttempt(ctx context.Context, run *AFARun, cfg core.Config, correct []byte,
	injs []fault.Injection, msg []byte, truth *keccak.State, opts AFAOptions) (sawBudget bool) {
	atk := core.NewAttack(cfg)
	if err := atk.AddCorrect(correct); err != nil {
		run.Err = err.Error()
		return false
	}
	finish := func(n int) {
		run.FaultsUsed = n
		run.Solvers = atk.SolverStats()
		run.Conflicts, run.Propagations = 0, 0
		for _, st := range run.Solvers {
			run.Conflicts += st.Stats.Conflicts
			run.Propagations += st.Stats.Propagations
		}
		evicted := atk.Evicted()
		run.Evicted, run.EvictedOK = len(evicted), 0
		for _, k := range evicted {
			if injs[k].Kind != fault.Clean {
				run.EvictedOK++
			}
		}
		run.NoisyFed = 0
		for _, inj := range injs[:n] {
			if inj.Kind != fault.Clean {
				run.NoisyFed++
			}
		}
	}
	for i, inj := range injs {
		if ctx.Err() != nil {
			run.Err = "canceled"
			finish(i)
			return sawBudget
		}
		if err := atk.AddInjection(inj); err != nil {
			run.Err = err.Error()
			finish(i)
			return sawBudget
		}
		n := i + 1
		if n < opts.MinFaults || (n-opts.MinFaults)%opts.SolveEvery != 0 {
			continue
		}
		res, err := atk.SolveContext(ctx)
		if err != nil {
			run.Err = err.Error()
			finish(n)
			return sawBudget
		}
		run.SolveTime += res.SolveTime
		run.Vars, run.Clauses = res.Vars, res.Clauses
		if res.Status == core.BudgetExceeded {
			sawBudget = true
		}
		if res.Status == core.Recovered {
			run.Recovered = res.ChiInput.Equal(truth)
			got, ok := atk.ExtractMessage(res.ChiInput)
			run.MessageOK = ok && string(got) == string(msg)
			run.FaultsIdent = 0
			if rfs, err := atk.RecoveredFaults(); err == nil {
				for k, rf := range rfs {
					if rf.Silent || rf.Evicted {
						continue
					}
					// Compare by state difference so canonicalized
					// sliding-window faults count as exact matches.
					rd, td := rf.Fault.Delta(), injs[k].Fault.Delta()
					if rd.Equal(&td) {
						run.FaultsIdent++
					}
				}
			}
			finish(n)
			return sawBudget
		}
	}
	finish(len(injs))
	return sawBudget
}

// escalate widens the solver budget for a retry after BudgetExceeded:
// conflict budgets quadruple, timeouts double, and the last rung of
// the ladder additionally arms a small portfolio of diversified
// solvers — the strongest (and most expensive) engine available.
func escalate(cfg *core.Config, last bool) {
	if cfg.SolverOptions.MaxConflicts > 0 {
		cfg.SolverOptions.MaxConflicts *= 4
	}
	if cfg.SolverOptions.Timeout > 0 {
		cfg.SolverOptions.Timeout *= 2
	}
	if last && cfg.Portfolio <= 1 {
		n := runtime.NumCPU()
		if n > 4 {
			n = 4
		}
		if n < 2 {
			n = 2
		}
		cfg.Portfolio = n
	}
}

// DFARun is the outcome of one DFA campaign.
type DFARun struct {
	Mode       keccak.Mode
	Model      fault.Model
	Seed       int64
	Recovered  bool
	FaultsUsed int
	Identified int
	Skipped    int
	ForcedA    int
	TotalTime  time.Duration
	// Infeasible marks models DFA cannot process at all (identification
	// space too large) — the paper's "DFA fails" entries.
	Infeasible bool
	// Err is non-empty when the run failed outright (worker panic or
	// setup error) instead of completing with a verdict.
	Err string
}

// RunDFA executes one seeded DFA campaign mirroring RunAFA with
// signature-based fault identification. It honours the process-wide
// batch context (SetContext): a done context stops the fault stream
// and marks the run canceled, the same contract the AFA runs have.
func RunDFA(mode keccak.Mode, model fault.Model, seed int64, maxFaults int) DFARun {
	return runDFA(Context(), mode, model, seed, maxFaults, false)
}

// RunDFAOracle executes a DFA campaign with oracle-identified faults —
// the baseline's most favourable setting, isolating equation
// extraction from identification.
func RunDFAOracle(mode keccak.Mode, model fault.Model, seed int64, maxFaults int) DFARun {
	return runDFA(Context(), mode, model, seed, maxFaults, true)
}

func runDFA(ctx context.Context, mode keccak.Mode, model fault.Model, seed int64, maxFaults int, oracle bool) (run DFARun) {
	run = DFARun{Mode: mode, Model: model, Seed: seed}
	defer func() {
		if r := recover(); r != nil {
			run.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	msg := randomMessage(mode, rng)
	if maxFaults <= 0 {
		maxFaults = 1000
	}
	correct, injs := fault.Campaign(mode, msg, model, 22, maxFaults, seed+1)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	atk := dfa.NewAttack(mode, model)
	atk.AddCorrect(correct)
	start := time.Now()
	for i, inj := range injs {
		if ctx.Err() != nil {
			run.Err = "canceled"
			run.TotalTime = time.Since(start)
			return run
		}
		if oracle {
			if err := atk.AddInjectionKnown(inj); err != nil {
				run.Err = err.Error()
				run.TotalTime = time.Since(start)
				return run
			}
		} else if _, err := atk.AddInjection(inj); err != nil {
			run.Infeasible = true
			run.TotalTime = time.Since(start)
			return run
		}
		snap := atk.Snapshot()
		run.ForcedA = snap.ForcedA
		run.Identified, run.Skipped = snap.Identified, snap.Skipped
		if snap.Status == dfa.Recovered {
			run.Recovered = snap.ChiInput.Equal(&truth)
			run.FaultsUsed = i + 1
			run.TotalTime = time.Since(start)
			return run
		}
	}
	run.FaultsUsed = maxFaults
	run.TotalTime = time.Since(start)
	return run
}

// Summary aggregates runs of one (mode, model, method) cell.
type Summary struct {
	Runs       int
	Recovered  int
	AvgFaults  float64 // over recovered runs
	AvgTime    time.Duration
	Infeasible bool
	// Effort columns, averaged over recovered runs (AFA only; zero for
	// DFA). They come straight from the run records, so a resumed batch
	// reproduces them from checkpoints without re-running.
	AvgSolveTime    time.Duration
	AvgConflicts    float64
	AvgPropagations float64
	AvgEvicted      float64
	// Errors counts runs that failed outright (panic, setup error,
	// cancellation). They are excluded from the recovery statistics: an
	// aborted run says nothing about the attack's fault requirements.
	Errors int
}

// SummarizeAFA folds AFA runs into a table cell.
func SummarizeAFA(runs []AFARun) Summary {
	var s Summary
	s.Runs = len(runs)
	var faults, evicted int
	var total, solve time.Duration
	var conflicts, propagations int64
	for _, r := range runs {
		if r.Err != "" {
			s.Errors++
			continue
		}
		if r.Recovered {
			s.Recovered++
			faults += r.FaultsUsed
			total += r.TotalTime
			solve += r.SolveTime
			conflicts += r.Conflicts
			propagations += r.Propagations
			evicted += r.Evicted
		}
	}
	if s.Recovered > 0 {
		n := time.Duration(s.Recovered)
		s.AvgFaults = float64(faults) / float64(s.Recovered)
		s.AvgTime = total / n
		s.AvgSolveTime = solve / n
		s.AvgConflicts = float64(conflicts) / float64(s.Recovered)
		s.AvgPropagations = float64(propagations) / float64(s.Recovered)
		s.AvgEvicted = float64(evicted) / float64(s.Recovered)
	}
	return s
}

// SummarizeDFA folds DFA runs into a table cell.
func SummarizeDFA(runs []DFARun) Summary {
	var s Summary
	s.Runs = len(runs)
	var faults int
	var total time.Duration
	for _, r := range runs {
		if r.Err != "" {
			s.Errors++
			continue
		}
		if r.Infeasible {
			s.Infeasible = true
		}
		if r.Recovered {
			s.Recovered++
			faults += r.FaultsUsed
			total += r.TotalTime
		}
	}
	if s.Recovered > 0 {
		s.AvgFaults = float64(faults) / float64(s.Recovered)
		s.AvgTime = total / time.Duration(s.Recovered)
	}
	return s
}

// Cell renders a summary the way the paper's tables do.
func (s Summary) Cell() string {
	cell := func() string {
		if s.Infeasible {
			return "infeasible"
		}
		if s.Recovered == 0 {
			return "fail"
		}
		return fmt.Sprintf("%.1f faults / %s (%d/%d ok)",
			s.AvgFaults, s.AvgTime.Round(time.Millisecond), s.Recovered, s.Runs)
	}()
	if s.Errors > 0 {
		cell += fmt.Sprintf(" [%d err]", s.Errors)
	}
	return cell
}

// Fprintf is a small helper so emitters can target any writer.
func Fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
