// Package campaign orchestrates the paper's experiments: repeated
// attack runs over seeded random messages and fault streams, per-mode
// and per-model sweeps, and emitters that print the rows of each table
// and the series of each figure in DESIGN.md's experiment index.
package campaign

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sha3afa/internal/core"
	"sha3afa/internal/dfa"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/portfolio"
)

// AFARun is the outcome of one AFA attack campaign.
type AFARun struct {
	Mode        keccak.Mode
	Model       fault.Model
	Seed        int64
	Recovered   bool
	FaultsUsed  int // faults consumed until recovery (== MaxFaults when not recovered)
	TotalTime   time.Duration
	SolveTime   time.Duration // cumulative SAT time
	Vars        int           // final CNF size
	Clauses     int
	FaultsIdent int // faults whose (window,value) the final model reproduced exactly
	MessageOK   bool
	// Solvers reports per-solver work: one entry for the classic
	// solver, one per member when the attack ran a portfolio.
	Solvers []portfolio.SolverStat
}

// AFAOptions controls one AFA campaign run.
type AFAOptions struct {
	MaxFaults int
	// SolveEvery solves after every k-th fault (1 = after each). The
	// first solve happens once the information-theoretic minimum
	// number of faulty digests is available.
	SolveEvery int
	// MinFaults defers the first solve; 0 derives the information-
	// theoretic minimum from digest and state sizes.
	MinFaults int
	// Config overrides; zero value uses core.DefaultConfig.
	Config *core.Config
}

// randomMessage draws a single-block message for the mode.
func randomMessage(mode keccak.Mode, rng *rand.Rand) []byte {
	n := 1 + rng.Intn(mode.RateBytes()-1)
	msg := make([]byte, n)
	rng.Read(msg)
	return msg
}

// minFaults returns the information-theoretic minimum number of
// faulty digests before the state can possibly be pinned down.
func minFaults(mode keccak.Mode) int {
	d := mode.DigestBits()
	need := keccak.StateBits - d // the correct digest gives d bits
	k := (need + d - 1) / d
	if k < 1 {
		k = 1
	}
	return k
}

// RunAFA executes one seeded AFA campaign: a random message, a stream
// of faults under the model, solving until recovery or MaxFaults.
func RunAFA(mode keccak.Mode, model fault.Model, seed int64, opts AFAOptions) AFARun {
	run := AFARun{Mode: mode, Model: model, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	msg := randomMessage(mode, rng)
	if opts.MaxFaults <= 0 {
		opts.MaxFaults = 100
	}
	if opts.SolveEvery <= 0 {
		// Wider fault models carry less information per observation
		// and produce harder instances, so solving after every single
		// fault wastes time: default to a model-scaled stride.
		opts.SolveEvery = model.Width() / 8
		if opts.SolveEvery < 1 {
			opts.SolveEvery = 1
		}
	}
	first := opts.MinFaults
	if first <= 0 {
		first = minFaults(mode)
	}

	correct, injs := fault.Campaign(mode, msg, model, 22, opts.MaxFaults, seed+1)
	var cfg core.Config
	if opts.Config != nil {
		cfg = *opts.Config
	} else {
		cfg = core.DefaultConfig(mode, model)
	}
	cfg.Mode, cfg.Model = mode, model

	atk := core.NewAttack(cfg)
	start := time.Now()
	if err := atk.AddCorrect(correct); err != nil {
		panic(err)
	}
	truth := keccak.TraceHash(mode, msg).ChiInput(22)
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			panic(err)
		}
		n := i + 1
		if n < first || (n-first)%opts.SolveEvery != 0 {
			continue
		}
		res, err := atk.Solve()
		if err != nil {
			panic(err)
		}
		run.SolveTime += res.SolveTime
		run.Vars, run.Clauses = res.Vars, res.Clauses
		if res.Status == core.Recovered {
			run.Recovered = res.ChiInput.Equal(&truth)
			run.FaultsUsed = n
			got, ok := atk.ExtractMessage(res.ChiInput)
			run.MessageOK = ok && string(got) == string(msg)
			if rfs, err := atk.RecoveredFaults(); err == nil {
				for k, rf := range rfs {
					if rf.Silent {
						continue
					}
					// Compare by state difference so canonicalized
					// sliding-window faults count as exact matches.
					rd, td := rf.Fault.Delta(), injs[k].Fault.Delta()
					if rd.Equal(&td) {
						run.FaultsIdent++
					}
				}
			}
			run.TotalTime = time.Since(start)
			run.Solvers = atk.SolverStats()
			return run
		}
	}
	run.FaultsUsed = opts.MaxFaults
	run.TotalTime = time.Since(start)
	run.Solvers = atk.SolverStats()
	return run
}

// DFARun is the outcome of one DFA campaign.
type DFARun struct {
	Mode       keccak.Mode
	Model      fault.Model
	Seed       int64
	Recovered  bool
	FaultsUsed int
	Identified int
	Skipped    int
	ForcedA    int
	TotalTime  time.Duration
	// Infeasible marks models DFA cannot process at all (identification
	// space too large) — the paper's "DFA fails" entries.
	Infeasible bool
}

// RunDFA executes one seeded DFA campaign mirroring RunAFA with
// signature-based fault identification.
func RunDFA(mode keccak.Mode, model fault.Model, seed int64, maxFaults int) DFARun {
	return runDFA(mode, model, seed, maxFaults, false)
}

// RunDFAOracle executes a DFA campaign with oracle-identified faults —
// the baseline's most favourable setting, isolating equation
// extraction from identification.
func RunDFAOracle(mode keccak.Mode, model fault.Model, seed int64, maxFaults int) DFARun {
	return runDFA(mode, model, seed, maxFaults, true)
}

func runDFA(mode keccak.Mode, model fault.Model, seed int64, maxFaults int, oracle bool) DFARun {
	run := DFARun{Mode: mode, Model: model, Seed: seed}
	rng := rand.New(rand.NewSource(seed))
	msg := randomMessage(mode, rng)
	if maxFaults <= 0 {
		maxFaults = 1000
	}
	correct, injs := fault.Campaign(mode, msg, model, 22, maxFaults, seed+1)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	atk := dfa.NewAttack(mode, model)
	atk.AddCorrect(correct)
	start := time.Now()
	for i, inj := range injs {
		if oracle {
			if err := atk.AddInjectionKnown(inj); err != nil {
				panic(err)
			}
		} else if _, err := atk.AddInjection(inj); err != nil {
			run.Infeasible = true
			run.TotalTime = time.Since(start)
			return run
		}
		snap := atk.Snapshot()
		run.ForcedA = snap.ForcedA
		run.Identified, run.Skipped = snap.Identified, snap.Skipped
		if snap.Status == dfa.Recovered {
			run.Recovered = snap.ChiInput.Equal(&truth)
			run.FaultsUsed = i + 1
			run.TotalTime = time.Since(start)
			return run
		}
	}
	run.FaultsUsed = maxFaults
	run.TotalTime = time.Since(start)
	return run
}

// Summary aggregates runs of one (mode, model, method) cell.
type Summary struct {
	Runs       int
	Recovered  int
	AvgFaults  float64 // over recovered runs
	AvgTime    time.Duration
	Infeasible bool
}

// SummarizeAFA folds AFA runs into a table cell.
func SummarizeAFA(runs []AFARun) Summary {
	var s Summary
	s.Runs = len(runs)
	var faults int
	var total time.Duration
	for _, r := range runs {
		if r.Recovered {
			s.Recovered++
			faults += r.FaultsUsed
			total += r.TotalTime
		}
	}
	if s.Recovered > 0 {
		s.AvgFaults = float64(faults) / float64(s.Recovered)
		s.AvgTime = total / time.Duration(s.Recovered)
	}
	return s
}

// SummarizeDFA folds DFA runs into a table cell.
func SummarizeDFA(runs []DFARun) Summary {
	var s Summary
	s.Runs = len(runs)
	var faults int
	var total time.Duration
	for _, r := range runs {
		if r.Infeasible {
			s.Infeasible = true
		}
		if r.Recovered {
			s.Recovered++
			faults += r.FaultsUsed
			total += r.TotalTime
		}
	}
	if s.Recovered > 0 {
		s.AvgFaults = float64(faults) / float64(s.Recovered)
		s.AvgTime = total / time.Duration(s.Recovered)
	}
	return s
}

// Cell renders a summary the way the paper's tables do.
func (s Summary) Cell() string {
	if s.Infeasible {
		return "infeasible"
	}
	if s.Recovered == 0 {
		return "fail"
	}
	return fmt.Sprintf("%.1f faults / %s (%d/%d ok)",
		s.AvgFaults, s.AvgTime.Round(time.Millisecond), s.Recovered, s.Runs)
}

// Fprintf is a small helper so emitters can target any writer.
func Fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
