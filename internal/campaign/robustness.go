package campaign

import (
	"fmt"
	"io"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// RobustnessNoiseLevels is the P3 sweep: from a perfect injector to a
// setup where nearly a third of all injections are unusable.
var RobustnessNoiseLevels = []fault.Noise{
	{},
	{Dud: 0.05},
	{Dud: 0.10, Violation: 0.05},
	{Dud: 0.20, Violation: 0.10},
}

// TableRobustness — experiment P3: the attack's recovery rate, fault
// budget, and blame accuracy as injection noise rises (SHA3-512, byte
// model, guarded attack, known fault positions so a 4×seeds sweep fits
// a single-core budget — the eviction machinery measured is identical
// in the relaxed-position attack). Rows are intentionally time-free:
// every figure printed is a pure function of (seeds, maxFaults, noise),
// so the table is byte-identical across machines, worker counts, and
// checkpoint resumes — which is what makes the resume test meaningful.
func TableRobustness(w io.Writer, seeds, maxFaults int, checkpoint string, resume bool) {
	w = LockWriter(w)
	fmt.Fprintf(w, "P3: noise robustness, SHA3-512 byte model, known positions (seeds=%d, max %d faults)\n", seeds, maxFaults)
	fmt.Fprintf(w, "%-24s | %-9s | %-10s | %-11s | %-12s | %s\n",
		"noise", "recovered", "avg faults", "avg evicted", "blame acc.", "errors")
	cfg := core.DefaultConfig(keccak.SHA3_512, fault.Byte)
	cfg.KnownPosition = true
	for _, noise := range RobustnessNoiseLevels {
		opts := AFAOptions{
			MaxFaults:  maxFaults,
			Noise:      noise,
			Checkpoint: checkpoint,
			Resume:     resume,
			Config:     &cfg,
		}
		runs := RunAFABatch(keccak.SHA3_512, fault.Byte, 9000, seeds, opts)
		var recovered, faults, evicted, evictedOK, errors int
		for _, r := range runs {
			if r.Err != "" {
				errors++
				continue
			}
			if r.Recovered {
				recovered++
				faults += r.FaultsUsed
				evicted += r.Evicted
				evictedOK += r.EvictedOK
			}
		}
		avgFaults, avgEvicted, blame := "-", "-", "-"
		if recovered > 0 {
			avgFaults = fmt.Sprintf("%.1f", float64(faults)/float64(recovered))
			avgEvicted = fmt.Sprintf("%.1f", float64(evicted)/float64(recovered))
		}
		if evicted > 0 {
			blame = fmt.Sprintf("%.0f%%", 100*float64(evictedOK)/float64(evicted))
		}
		fmt.Fprintf(w, "%-24s | %4d/%-4d | %-10s | %-11s | %-12s | %d\n",
			noise, recovered, len(runs), avgFaults, avgEvicted, blame, errors)
	}
}
