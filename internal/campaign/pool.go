package campaign

import (
	"context"
	"errors"
	"sync"
)

// Pool is the campaign worker pool with job-granular submission: a
// fixed set of workers consuming individually submitted tasks, instead
// of the index-range fan-out the batch emitters use. The attack daemon
// feeds it one task per job so jobs from different HTTP requests share
// the same bounded parallelism; forEachIndexCtx is built on it so batch
// emitters and the daemon exercise one scheduler.
//
// Tasks receive the pool's context and are expected to honour it (the
// attack layer threads it into the SAT backend, so running solves are
// interrupted on cancellation). After the context is done, queued tasks
// are discarded without running and Submit fails fast.
type Pool struct {
	ctx   context.Context
	tasks chan func(context.Context)
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("campaign: pool closed")

// NewPool starts workers goroutines (minimum 1) consuming submitted
// tasks until Close. A nil ctx means Background.
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{ctx: ctx, tasks: make(chan func(context.Context))}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				if p.ctx.Err() != nil {
					continue // canceled: drain without running
				}
				fn(p.ctx)
			}
		}()
	}
	return p
}

// Submit hands one task to the pool, blocking until a worker accepts
// it (the channel is unbuffered — backpressure is the queue's job, not
// the pool's). It returns ErrPoolClosed after Close and the context
// error once the pool's context is done.
func (p *Pool) Submit(fn func(context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	case <-p.ctx.Done():
		return p.ctx.Err()
	}
}

// Close stops accepting tasks and waits for in-flight ones to finish
// (or be discarded, when the context is already done). It is
// idempotent and safe to call concurrently with Submit: submissions in
// flight either hand their task to a worker first or fail with
// ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
