package campaign

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func TestMinFaults(t *testing.T) {
	want := map[keccak.Mode]int{
		keccak.SHA3_224: 7, // (1600-224)/224 → 7
		keccak.SHA3_256: 6,
		keccak.SHA3_384: 4,
		keccak.SHA3_512: 3,
	}
	for mode, w := range want {
		if got := minFaults(mode); got != w {
			t.Errorf("minFaults(%s) = %d, want %d", mode, got, w)
		}
	}
}

func TestRandomMessageFitsOneBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mode := range keccak.FixedModes {
		for i := 0; i < 50; i++ {
			msg := randomMessage(mode, rng)
			if len(msg) == 0 || len(msg) >= mode.RateBytes() {
				t.Fatalf("%s: message of %d bytes does not fit one padded block", mode, len(msg))
			}
		}
	}
}

func TestSummaryCells(t *testing.T) {
	s := SummarizeAFA([]AFARun{
		{Recovered: true, FaultsUsed: 10, TotalTime: 2 * time.Second},
		{Recovered: true, FaultsUsed: 20, TotalTime: 4 * time.Second},
		{Recovered: false, FaultsUsed: 50},
	})
	if s.Runs != 3 || s.Recovered != 2 || s.AvgFaults != 15 || s.AvgTime != 3*time.Second {
		t.Fatalf("bad AFA summary: %+v", s)
	}
	if !strings.Contains(s.Cell(), "15.0 faults") {
		t.Fatalf("cell = %q", s.Cell())
	}
	if got := SummarizeDFA([]DFARun{{Infeasible: true}}).Cell(); got != "infeasible" {
		t.Fatalf("infeasible cell = %q", got)
	}
	if got := SummarizeAFA([]AFARun{{Recovered: false}}).Cell(); got != "fail" {
		t.Fatalf("fail cell = %q", got)
	}
}

func TestFigure4Runs(t *testing.T) {
	var sb strings.Builder
	Figure4(&sb, 1)
	out := sb.String()
	for _, mode := range keccak.FixedModes {
		if !strings.Contains(out, mode.String()) {
			t.Fatalf("F4 missing row for %s:\n%s", mode, out)
		}
	}
}

func TestAblationEncodingRuns(t *testing.T) {
	var sb strings.Builder
	AblationEncoding(&sb)
	out := sb.String()
	if !strings.Contains(out, "SHA3-224") || !strings.Contains(out, "pruned") {
		t.Fatalf("A1 output malformed:\n%s", out)
	}
}

func TestTableCountermeasureRuns(t *testing.T) {
	var sb strings.Builder
	TableCountermeasure(&sb, 20)
	out := sb.String()
	for _, want := range []string{"1-bit", "byte", "16-bit", "32-bit", "byte-unaligned"} {
		if !strings.Contains(out, want) {
			t.Fatalf("C1 missing row %q:\n%s", want, out)
		}
	}
}

func TestTableStarvationRuns(t *testing.T) {
	var sb strings.Builder
	TableStarvation(&sb, 25)
	out := sb.String()
	if !strings.Contains(out, "unprotected") || !strings.Contains(out, "protected") {
		t.Fatalf("C2 output malformed:\n%s", out)
	}
}

func TestRunDFAWideModelInfeasible(t *testing.T) {
	run := RunDFA(keccak.SHA3_512, fault.Word16, 1, 3)
	if !run.Infeasible {
		t.Fatal("DFA under 16-bit model should be infeasible")
	}
}

func TestRunDFASingleBitProgress(t *testing.T) {
	run := RunDFA(keccak.SHA3_512, fault.SingleBit, 2, 25)
	if run.Infeasible {
		t.Fatal("single-bit DFA infeasible")
	}
	if run.Identified == 0 || run.ForcedA == 0 {
		t.Fatalf("DFA made no progress: %+v", run)
	}
}
