package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// Checkpointing: long batches record every finished run as one small
// JSON file, so a killed process can be restarted with Resume and only
// the missing repetitions re-run. The file name encodes everything that
// determines a run's result — mode, model, noise level, seed — so
// sweeps over noise levels at the same seed never collide, and a
// checkpoint directory can safely be shared by a whole experiment. A
// run is deterministic given those parameters (times excepted), so a
// resumed batch reproduces an uninterrupted one wherever times are not
// printed.

// sanitize makes a table label safe for a file name.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// checkpointFile returns the per-run checkpoint path inside dir.
func checkpointFile(dir string, mode keccak.Mode, model fault.Model, seed int64, noise fault.Noise) string {
	name := fmt.Sprintf("afa_%s_%s_d%g_v%g_s%d.json",
		sanitize(mode.String()), sanitize(model.String()), noise.Dud, noise.Violation, seed)
	return filepath.Join(dir, name)
}

// WriteJSONAtomic writes v as indented JSON to path via a uniquely
// named temp file in the same directory plus a rename, so readers (and
// a crash mid-write) never observe a torn record, and concurrent
// writers to the same path cannot clobber each other's temp file — the
// last rename wins with a complete document either way. The parent
// directory is created if missing. This is the durability primitive
// behind both campaign checkpoints and the attack daemon's job store.
func WriteJSONAtomic(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveCheckpoint writes a finished run into dir atomically (a rename
// over a temp file, so a crash mid-write never leaves a torn record).
func SaveCheckpoint(dir string, run AFARun) error {
	return WriteJSONAtomic(checkpointFile(dir, run.Mode, run.Model, run.Seed, run.Noise), run)
}

// LoadCheckpoint returns the recorded run for the given parameters, or
// false when no usable record exists. Records whose identity fields do
// not match the requested parameters (say, a file copied between
// directories) and records of failed runs are ignored, so those runs
// re-run instead of resurrecting an error.
func LoadCheckpoint(dir string, mode keccak.Mode, model fault.Model, seed int64, noise fault.Noise) (AFARun, bool) {
	data, err := os.ReadFile(checkpointFile(dir, mode, model, seed, noise))
	if err != nil {
		return AFARun{}, false
	}
	var run AFARun
	if err := json.Unmarshal(data, &run); err != nil {
		return AFARun{}, false
	}
	if run.Mode != mode || run.Model != model || run.Seed != seed || run.Noise != noise || run.Err != "" {
		return AFARun{}, false
	}
	return run, true
}
