package campaign

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestForEachIndexCoversAllIndices: every index runs exactly once, for
// worker counts below, at, and above the item count.
func TestForEachIndexCoversAllIndices(t *testing.T) {
	defer SetWorkers(1)
	for _, workers := range []int{1, 2, 4, 17} {
		SetWorkers(workers)
		const n = 100
		var mu sync.Mutex
		hits := make([]int, n)
		forEachIndex(n, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestSetWorkersClampsToOne: non-positive counts fall back to the
// sequential path.
func TestSetWorkersClampsToOne(t *testing.T) {
	defer SetWorkers(1)
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) -> Workers()=%d, want 1", Workers())
	}
	SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(-5) -> Workers()=%d, want 1", Workers())
	}
}

// TestLockWriterIdempotent: wrapping twice returns the same writer, so
// nested emitters don't stack mutexes.
func TestLockWriterIdempotent(t *testing.T) {
	var buf bytes.Buffer
	lw := LockWriter(&buf)
	if LockWriter(lw) != lw {
		t.Fatal("LockWriter re-wrapped an already locked writer")
	}
}

// TestLockWriterNoInterleaving: concurrent whole-line Writes never
// interleave mid-line.
func TestLockWriterNoInterleaving(t *testing.T) {
	var buf bytes.Buffer
	w := LockWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			line := []byte(fmt.Sprintf("line-from-goroutine-%d\n", g))
			for k := 0; k < 50; k++ {
				w.Write(line)
			}
		}(g)
	}
	wg.Wait()
	for _, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("line-from-goroutine-")) {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

// TestRunAFABatchSeedOrder: results come back keyed by seed regardless
// of scheduling, and match a sequential reference run field-for-field
// on the deterministic fields. The fault budget is kept below the
// information-theoretic minimum so no SAT solving happens — each
// repetition still simulates its full fault campaign, which is what
// the batch plumbing parallelizes; concurrent *solving* is covered by
// the portfolio package and the core portfolio test, and a full
// campaign per repetition would blow the race detector's time budget
// on small CI machines.
func TestRunAFABatchSeedOrder(t *testing.T) {
	defer SetWorkers(1)
	mode, model := keccak.SHA3_512, fault.Byte
	opts := AFAOptions{MaxFaults: 2} // < minFaults(SHA3-512) = 3: no solve
	const reps = 6

	SetWorkers(1)
	seq := RunAFABatch(mode, model, 4300, reps, opts)
	SetWorkers(3)
	par := RunAFABatch(mode, model, 4300, reps, opts)

	if len(seq) != reps || len(par) != reps {
		t.Fatalf("batch sizes: seq=%d par=%d, want %d", len(seq), len(par), reps)
	}
	for i := range seq {
		if seq[i].Seed != 4300+int64(i) {
			t.Fatalf("rep %d: sequential batch out of seed order: %d", i, seq[i].Seed)
		}
		if par[i].Seed != seq[i].Seed {
			t.Fatalf("rep %d: seed %d != %d", i, par[i].Seed, seq[i].Seed)
		}
		if par[i].Recovered != seq[i].Recovered || par[i].FaultsUsed != seq[i].FaultsUsed ||
			par[i].Vars != seq[i].Vars || par[i].Clauses != seq[i].Clauses {
			t.Fatalf("rep %d diverged: seq{rec=%v faults=%d vars=%d} par{rec=%v faults=%d vars=%d}",
				i, seq[i].Recovered, seq[i].FaultsUsed, seq[i].Vars,
				par[i].Recovered, par[i].FaultsUsed, par[i].Vars)
		}
	}
}

// TestFigure4ByteIdenticalAcrossWorkers: a parallelized emitter writes
// byte-identical output under 1 and 4 workers — the satellite's
// acceptance criterion for the locked-writer refactor.
func TestFigure4ByteIdenticalAcrossWorkers(t *testing.T) {
	defer SetWorkers(1)
	var seq, par bytes.Buffer
	SetWorkers(1)
	Figure4(&seq, 2)
	SetWorkers(4)
	Figure4(&par, 2)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("Figure4 output differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			seq.String(), par.String())
	}
}
