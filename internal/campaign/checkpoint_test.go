package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestCheckpointConcurrentAccess is the daemon's restart-path
// guarantee: many goroutines writing and resuming the same checkpoint
// directory — including the same record — must never let a reader
// observe a torn file. Atomic rename means every LoadCheckpoint either
// misses or returns one of the complete records some writer produced.
func TestCheckpointConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	const writers, rounds = 2, 50
	base := AFARun{Mode: keccak.SHA3_512, Model: fault.Byte, Seed: 42, Recovered: true}

	var wg sync.WaitGroup
	var firstWrite sync.Once
	written := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				run := base
				run.FaultsUsed = w*rounds + i + 1 // distinguishable, always > 0
				if err := SaveCheckpoint(dir, run); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				firstWrite.Do(func() { close(written) })
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-written // overlap with the writers, not ahead of them
		seen := 0
		for i := 0; i < writers*rounds; i++ {
			run, ok := LoadCheckpoint(dir, base.Mode, base.Model, base.Seed, base.Noise)
			if !ok {
				t.Error("record vanished mid-rewrite: rename is not atomic")
				return
			}
			seen++
			if run.Mode != base.Mode || run.Seed != base.Seed || !run.Recovered || run.FaultsUsed <= 0 {
				t.Errorf("torn or foreign record resumed: %+v", run)
				return
			}
		}
		t.Logf("reader observed %d complete records", seen)
	}()
	wg.Wait()

	// After the dust settles the record must parse and be resumable.
	if _, ok := LoadCheckpoint(dir, base.Mode, base.Model, base.Seed, base.Noise); !ok {
		t.Fatal("no checkpoint resumable after concurrent writes")
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover files after atomic writes: %v", names)
	}
}

func TestWriteJSONAtomicCreatesParents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deeper", "doc.json")
	if err := WriteJSONAtomic(path, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["x"] != 1 {
		t.Fatalf("content mangled: %v", got)
	}
}
