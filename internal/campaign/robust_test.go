package campaign

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sha3afa/internal/core"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// TestRunAFAPanicRecovery: a panicking worker (Round 21 is not modeled,
// so core.NewBuilder panics) must surface as run.Err on every
// repetition instead of killing the batch — exercised across a real
// worker pool so -race also checks the recovery path.
func TestRunAFAPanicRecovery(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(1)
	bad := core.DefaultConfig(keccak.SHA3_512, fault.Byte)
	bad.Round = 21
	runs := RunAFABatch(keccak.SHA3_512, fault.Byte, 100, 8, AFAOptions{
		MaxFaults: 5,
		Config:    &bad,
	})
	for i, run := range runs {
		if !strings.Contains(run.Err, "panic") || !strings.Contains(run.Err, "Round 22") {
			t.Fatalf("run %d: Err = %q, want recovered panic about Round 22", i, run.Err)
		}
		if run.Recovered {
			t.Fatalf("run %d recovered despite panicking", i)
		}
	}
	s := SummarizeAFA(runs)
	if s.Errors != len(runs) || s.Recovered != 0 {
		t.Fatalf("summary did not count errors: %+v", s)
	}
	if !strings.Contains(s.Cell(), "[8 err]") {
		t.Fatalf("cell = %q, want error count", s.Cell())
	}
}

// TestRunAFACanceled: a canceled context stops the fault stream and
// marks the run, and a canceled batch marks never-started repetitions.
func TestRunAFACanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := RunAFACtx(ctx, keccak.SHA3_512, fault.Byte, 1, AFAOptions{MaxFaults: 5})
	if run.Err != "canceled" {
		t.Fatalf("Err = %q, want canceled", run.Err)
	}
	runs := RunAFABatchCtx(ctx, keccak.SHA3_512, fault.Byte, 1, 4, AFAOptions{MaxFaults: 5})
	for i, r := range runs {
		if r.Err != "canceled" {
			t.Fatalf("batch run %d: Err = %q, want canceled", i, r.Err)
		}
		if r.Seed != 1+int64(i) {
			t.Fatalf("batch run %d: seed %d not filled in", i, r.Seed)
		}
	}
	if s := SummarizeAFA(runs); s.Errors != 4 {
		t.Fatalf("canceled runs not counted as errors: %+v", s)
	}
}

// TestCheckpointRoundTrip: save/load identity, plus the guards — a
// record whose parameters do not match the request, or that recorded a
// failure, must not resume.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := AFARun{
		Mode: keccak.SHA3_256, Model: fault.Byte, Seed: 7,
		Noise: fault.Noise{Dud: 0.1}, Recovered: true, FaultsUsed: 33,
		Evicted: 3, EvictedOK: 3, NoisyFed: 3,
	}
	if err := SaveCheckpoint(dir, run); err != nil {
		t.Fatal(err)
	}
	got, ok := LoadCheckpoint(dir, run.Mode, run.Model, run.Seed, run.Noise)
	if !ok {
		t.Fatal("checkpoint not loaded back")
	}
	if runRow(got) != runRow(run) || got.TotalTime != run.TotalTime {
		t.Fatalf("round trip mutated the run:\n got %+v\nwant %+v", got, run)
	}
	if _, ok := LoadCheckpoint(dir, run.Mode, run.Model, 8, run.Noise); ok {
		t.Fatal("loaded a checkpoint for the wrong seed")
	}
	if _, ok := LoadCheckpoint(dir, run.Mode, run.Model, run.Seed, fault.Noise{}); ok {
		t.Fatal("loaded a checkpoint for the wrong noise level")
	}
	failed := run
	failed.Seed, failed.Err = 9, "panic: boom"
	if err := SaveCheckpoint(dir, failed); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadCheckpoint(dir, failed.Mode, failed.Model, failed.Seed, failed.Noise); ok {
		t.Fatal("resumed a failed run instead of re-running it")
	}
}

// runRow renders the deterministic (time-free) fields of a run — the
// exact information the robustness table prints. A resumed batch must
// reproduce an uninterrupted one byte for byte under this rendering.
func runRow(r AFARun) string {
	return fmt.Sprintf("%s %s s%d n[%s] rec=%v used=%d ident=%d msg=%v ev=%d evOK=%d noisy=%d retries=%d err=%q",
		r.Mode, r.Model, r.Seed, r.Noise, r.Recovered, r.FaultsUsed, r.FaultsIdent,
		r.MessageOK, r.Evicted, r.EvictedOK, r.NoisyFed, r.Retries, r.Err)
}

// TestBatchCheckpointResume: a batch killed after one repetition and
// restarted with -resume must (a) actually load the finished run from
// disk and (b) produce summary rows byte-identical to an uninterrupted
// batch.
func TestBatchCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	// Known positions keep the instances easy and fully deterministic;
	// sparse solve points keep the runs short (known-position recovery
	// needs ~30 faults, so solve only a few times on the way there).
	cfg := core.DefaultConfig(keccak.SHA3_512, fault.Byte)
	cfg.KnownPosition = true
	opts := AFAOptions{MaxFaults: 45, SolveEvery: 14, Config: &cfg}
	const base, reps = 500, 2

	uninterrupted := RunAFABatch(keccak.SHA3_512, fault.Byte, base, reps, opts)

	dir := t.TempDir()
	partialOpts := opts
	partialOpts.Checkpoint = dir
	// "Kill" the batch after its first repetition…
	partial := RunAFABatch(keccak.SHA3_512, fault.Byte, base, 1, partialOpts)
	// …and restart the full batch with resume.
	resumeOpts := partialOpts
	resumeOpts.Resume = true
	resumed := RunAFABatch(keccak.SHA3_512, fault.Byte, base, reps, resumeOpts)

	// Wall-clock equality across separate executions is as good as a
	// proof that the first repetition was loaded, not re-run.
	if resumed[0].TotalTime != partial[0].TotalTime {
		t.Fatal("first repetition was re-run instead of resumed from its checkpoint")
	}
	for i := range uninterrupted {
		got, want := runRow(resumed[i]), runRow(uninterrupted[i])
		if got != want {
			t.Fatalf("row %d differs after resume:\n got %s\nwant %s", i, got, want)
		}
		if !resumed[i].Recovered {
			t.Fatalf("row %d did not recover: %s", i, got)
		}
	}
}

// TestNoisyCampaignRecoversEvicting is the paper-level acceptance
// criterion: with 10% duds and 5% model violations a SHA3-256
// single-byte campaign still recovers the state, evicting exactly the
// noisy observations it was fed.
func TestNoisyCampaignRecoversEvicting(t *testing.T) {
	if testing.Short() {
		t.Skip("solver test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("solver-heavy test skipped under -race")
	}
	// Known positions keep the SHA3-256 instances tractable on one
	// core; the guarded machinery exercised (UNSAT → blame → evict →
	// retry) is identical to the relaxed-position path, which the
	// SHA3-512 guarded tests cover.
	cfg := core.DefaultConfig(keccak.SHA3_256, fault.Byte)
	cfg.KnownPosition = true
	run := RunAFA(keccak.SHA3_256, fault.Byte, 301, AFAOptions{
		MaxFaults: 150,
		Noise:     fault.Noise{Dud: 0.10, Violation: 0.05},
		Config:    &cfg,
	})
	if run.Err != "" {
		t.Fatalf("run failed: %s", run.Err)
	}
	if !run.Recovered {
		t.Fatalf("not recovered under noise within %d faults (evicted %d)", run.FaultsUsed, run.Evicted)
	}
	if run.Evicted == 0 {
		t.Fatal("no observations evicted despite 15% injection noise")
	}
	// Blame must be exact: everything evicted was genuinely noisy, and
	// nothing noisy survived to recovery (an out-of-model observation
	// that stayed active would have made the final model impossible).
	if run.EvictedOK != run.Evicted {
		t.Fatalf("evicted %d observations but only %d were genuinely noisy", run.Evicted, run.EvictedOK)
	}
	if run.EvictedOK != run.NoisyFed {
		t.Fatalf("fed %d noisy observations but only evicted %d", run.NoisyFed, run.EvictedOK)
	}
	t.Logf("recovered after %d faults, evicted %d/%d noisy", run.FaultsUsed, run.Evicted, run.NoisyFed)
}
