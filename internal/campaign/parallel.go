package campaign

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/obs"
)

// The campaign worker pool: independent repetitions of an experiment
// (one per seed) are embarrassingly parallel, so the emitters fan
// their seed loops out over a process-wide worker count. Seeds are a
// pure function of the repetition index — never of scheduling — so
// results are reproducible and the emitted tables are byte-identical
// for every worker count.

var workerCount int32 = 1

// SetWorkers sets the process-wide campaign parallelism (minimum 1).
// It is wired to the -workers CLI flag.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	atomic.StoreInt32(&workerCount, int32(n))
}

// Workers returns the current campaign parallelism.
func Workers() int { return int(atomic.LoadInt32(&workerCount)) }

// batchCtx is the process-wide cancellation context for campaign
// batches. The emitters have stable io.Writer-only signatures, so the
// CLI arms cancellation once (SetContext with a signal-bound context)
// and every seed loop honours it: already-emitted rows stay flushed,
// not-yet-started repetitions are skipped.
var batchCtx atomic.Value // context.Context

// SetContext installs the context every subsequent batch and emitter
// consults for cancellation; nil restores context.Background().
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	batchCtx.Store(ctx)
}

// Context returns the process-wide batch context.
func Context() context.Context {
	if ctx, ok := batchCtx.Load().(context.Context); ok {
		return ctx
	}
	return context.Background()
}

// obsRec is the process-wide observability recorder, mirroring
// batchCtx: the emitters have stable io.Writer-only signatures, so the
// CLI arms tracing once (SetRecorder with the -trace/-progress/-debug
// recorder) and every campaign run started by any emitter emits
// through it. The recorder is shared by the whole worker pool, which
// obs.Trace supports (all methods are safe for concurrent use).
var obsRec atomic.Value // recBox

// recBox keeps atomic.Value happy: it requires a consistent concrete
// type, which a bare interface value would violate.
type recBox struct{ r obs.Recorder }

// SetRecorder installs the process-wide recorder every subsequent
// campaign run emits through; nil disables recording again.
func SetRecorder(r obs.Recorder) { obsRec.Store(recBox{r}) }

// ActiveRecorder returns the process-wide recorder (nil = off).
func ActiveRecorder() obs.Recorder {
	if b, ok := obsRec.Load().(recBox); ok {
		return b.r
	}
	return nil
}

// forEachIndex runs fn(0) … fn(n-1) across Workers() goroutines under
// the process-wide batch context. Each invocation must only write to
// state owned by its own index (the emitters give every repetition its
// own slice slot). With one worker it degenerates to a plain loop on
// the calling goroutine, keeping the sequential path byte-identical.
func forEachIndex(n int, fn func(i int)) {
	forEachIndexCtx(Context(), n, fn)
}

// forEachIndexCtx is forEachIndex with explicit cancellation: once ctx
// is done no further index is started (indices already running finish
// on their own — long solves are additionally interrupted because the
// runs thread the same context into the SAT backend). The parallel
// path runs on a job-granular Pool — the same scheduler the attack
// daemon submits to.
func forEachIndexCtx(ctx context.Context, n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	p := NewPool(ctx, w)
	for i := 0; i < n; i++ {
		i := i
		if p.Submit(func(context.Context) { fn(i) }) != nil {
			break // canceled: remaining indices are skipped
		}
	}
	p.Close()
}

// lockedWriter serializes Writes so rows emitted from concurrent
// goroutines can never interleave mid-line.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// LockWriter wraps w so each Write call is atomic. Wrapping an
// already-locked writer returns it unchanged, so emitters can wrap
// defensively at their entry points.
func LockWriter(w io.Writer) io.Writer {
	if _, ok := w.(*lockedWriter); ok {
		return w
	}
	return &lockedWriter{w: w}
}

// RunAFABatch runs reps seeded AFA campaigns (seeds base, base+1, …)
// across the worker pool and returns them in seed order regardless of
// scheduling. It honours the process-wide batch context (SetContext).
func RunAFABatch(mode keccak.Mode, model fault.Model, baseSeed int64, reps int, opts AFAOptions) []AFARun {
	return RunAFABatchCtx(Context(), mode, model, baseSeed, reps, opts)
}

// RunAFABatchCtx is RunAFABatch with cancellation and checkpointing.
// With opts.Checkpoint set, every finished run is persisted before the
// batch moves on; with opts.Resume additionally set, previously
// persisted runs are loaded instead of re-run, so a killed batch picks
// up exactly where it stopped. Repetitions never started (because ctx
// was canceled) come back with Err == "canceled" and are counted as
// errors, never as failures of the attack.
func RunAFABatchCtx(ctx context.Context, mode keccak.Mode, model fault.Model, baseSeed int64, reps int, opts AFAOptions) []AFARun {
	runs := make([]AFARun, reps)
	forEachIndexCtx(ctx, reps, func(i int) {
		seed := baseSeed + int64(i)
		if opts.Resume && opts.Checkpoint != "" {
			if run, ok := LoadCheckpoint(opts.Checkpoint, mode, model, seed, opts.Noise); ok {
				runs[i] = run
				return
			}
		}
		run := RunAFACtx(ctx, mode, model, seed, opts)
		if opts.Checkpoint != "" && run.Err == "" {
			// A failed save must not fail the run; the worst case is
			// re-running this repetition after a restart.
			_ = SaveCheckpoint(opts.Checkpoint, run)
		}
		runs[i] = run
	})
	if ctx.Err() != nil {
		for i := range runs {
			if runs[i].TotalTime == 0 && runs[i].Err == "" && !runs[i].Recovered {
				// Never started: forEachIndexCtx skipped it after
				// cancellation.
				runs[i] = AFARun{Mode: mode, Model: model, Seed: baseSeed + int64(i),
					Noise: opts.Noise, Err: "canceled"}
			}
		}
	}
	return runs
}
