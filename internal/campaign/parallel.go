package campaign

import (
	"io"
	"sync"
	"sync/atomic"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// The campaign worker pool: independent repetitions of an experiment
// (one per seed) are embarrassingly parallel, so the emitters fan
// their seed loops out over a process-wide worker count. Seeds are a
// pure function of the repetition index — never of scheduling — so
// results are reproducible and the emitted tables are byte-identical
// for every worker count.

var workerCount int32 = 1

// SetWorkers sets the process-wide campaign parallelism (minimum 1).
// It is wired to the -workers CLI flag.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	atomic.StoreInt32(&workerCount, int32(n))
}

// Workers returns the current campaign parallelism.
func Workers() int { return int(atomic.LoadInt32(&workerCount)) }

// forEachIndex runs fn(0) … fn(n-1) across Workers() goroutines. Each
// invocation must only write to state owned by its own index (the
// emitters give every repetition its own slice slot). With one worker
// it degenerates to a plain loop on the calling goroutine, keeping the
// sequential path byte-identical.
func forEachIndex(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int32 = -1
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// lockedWriter serializes Writes so rows emitted from concurrent
// goroutines can never interleave mid-line.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// LockWriter wraps w so each Write call is atomic. Wrapping an
// already-locked writer returns it unchanged, so emitters can wrap
// defensively at their entry points.
func LockWriter(w io.Writer) io.Writer {
	if _, ok := w.(*lockedWriter); ok {
		return w
	}
	return &lockedWriter{w: w}
}

// RunAFABatch runs reps seeded AFA campaigns (seeds base, base+1, …)
// across the worker pool and returns them in seed order regardless of
// scheduling.
func RunAFABatch(mode keccak.Mode, model fault.Model, baseSeed int64, reps int, opts AFAOptions) []AFARun {
	runs := make([]AFARun, reps)
	forEachIndex(reps, func(i int) {
		runs[i] = RunAFA(mode, model, baseSeed+int64(i), opts)
	})
	return runs
}
