package campaign

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"sha3afa/internal/cnf"
	"sha3afa/internal/core"
	"sha3afa/internal/dfa"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
	"sha3afa/internal/sat"
	"sha3afa/internal/symbolic"
)

// This file regenerates every table and figure in DESIGN.md's
// experiment index. Each emitter takes size knobs so the bench harness
// can run scaled-down versions and cmd/afa can run the full versions.

// Table1 — faults needed to recover the χ input of round 22, AFA vs
// DFA, under the single-byte fault model, for all four SHA-3 modes.
func Table1(w io.Writer, seeds, afaMaxFaults, dfaMaxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "T1: faults to recover full state, single-byte model (seeds=%d)\n", seeds)
	fmt.Fprintf(w, "%-10s | %-34s | %-34s | %-34s\n", "mode", "AFA (relaxed)", "DFA (relaxed ident.)", "DFA (oracle ident.)")
	for _, mode := range keccak.FixedModes {
		afa := make([]AFARun, seeds)
		dfaRel := make([]DFARun, seeds)
		dfaOra := make([]DFARun, seeds)
		// Shorter digests yield less information per fault: scale the
		// budget and solve less often to keep the sweep tractable.
		budget, stride := afaMaxFaults, 1
		if mode.DigestBits() < 384 {
			budget, stride = afaMaxFaults*2, 4
		}
		forEachIndex(seeds, func(s int) {
			afa[s] = RunAFA(mode, fault.Byte, int64(1000+s), AFAOptions{MaxFaults: budget, SolveEvery: stride})
			dfaRel[s] = RunDFA(mode, fault.Byte, int64(1000+s), dfaMaxFaults)
			dfaOra[s] = RunDFAOracle(mode, fault.Byte, int64(1000+s), dfaMaxFaults)
		})
		fmt.Fprintf(w, "%-10s | %-34s | %-34s | %-34s\n",
			mode, SummarizeAFA(afa).Cell(), SummarizeDFA(dfaRel).Cell(), SummarizeDFA(dfaOra).Cell())
	}
}

// Table2 — AFA under the relaxed 16-bit fault model for all four
// modes: faults needed and wall-clock time (the paper: all four modes
// broken within several minutes).
func Table2(w io.Writer, seeds, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "T2: AFA under 16-bit faults (seeds=%d)\n", seeds)
	fmt.Fprintf(w, "%-10s | %-34s | DFA\n", "mode", "AFA")
	for _, mode := range keccak.FixedModes {
		runs := RunAFABatch(mode, fault.Word16, 2000, seeds, AFAOptions{MaxFaults: maxFaults})
		dfaCell := "infeasible (identification space 100·2^16)"
		fmt.Fprintf(w, "%-10s | %-34s | %s\n", mode, SummarizeAFA(runs).Cell(), dfaCell)
	}
}

// Table3 — AFA on SHA3-512 under the 32-bit fault model.
func Table3(w io.Writer, seeds, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "T3: AFA on SHA3-512 under 32-bit faults (seeds=%d)\n", seeds)
	runs := RunAFABatch(keccak.SHA3_512, fault.Word32, 3000, seeds, AFAOptions{MaxFaults: maxFaults})
	fmt.Fprintf(w, "SHA3-512   | %-34s | DFA: infeasible (identification space 50·2^32)\n",
		SummarizeAFA(runs).Cell())
}

// Table4 — fault identification rates. For DFA: the fraction of single
// injected faults whose (window, value) is pinned uniquely by
// differential signatures. For AFA: the fraction of faults whose
// (window, value) the recovered model reproduces exactly at the end of
// a successful attack.
func Table4(w io.Writer, trials int, afaSeeds int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "T4: fault identification rate (DFA trials=%d, AFA seeds=%d)\n", trials, afaSeeds)
	fmt.Fprintf(w, "%-10s | %-8s | %-12s | %-12s\n", "mode", "model", "DFA unique", "AFA exact")
	for _, mode := range []keccak.Mode{keccak.SHA3_256, keccak.SHA3_512} {
		for _, m := range []fault.Model{fault.SingleBit, fault.Byte} {
			rng := rand.New(rand.NewSource(42))
			inj := fault.NewInjector(m, 43)
			unique := 0
			for i := 0; i < trials; i++ {
				msg := randomMessage(mode, rng)
				correct := keccak.Sum(mode, msg)
				f := inj.Sample()
				delta := f.Delta()
				faulty := keccak.HashWithFault(mode, msg, 22, &delta)
				if _, n, err := dfa.IdentifyUnique(m, correct, faulty, mode.DigestBits()); err == nil && n == 1 {
					unique++
				}
			}
			budget := 60
			if mode.DigestBits() < 384 {
				budget = 110
			}
			runs := RunAFABatch(mode, m, 4000, afaSeeds, AFAOptions{MaxFaults: budget, SolveEvery: 3})
			identified, total := 0, 0
			for _, run := range runs {
				if run.Recovered {
					identified += run.FaultsIdent
					total += run.FaultsUsed
				}
			}
			afaCell := "n/a"
			if total > 0 {
				afaCell = fmt.Sprintf("%.0f%%", 100*float64(identified)/float64(total))
			}
			fmt.Fprintf(w, "%-10s | %-8s | %5.0f%%       | %-12s\n",
				mode, m, 100*float64(unique)/float64(trials), afaCell)
		}
	}
}

// Figure1 — success rate versus number of faults (byte model): the
// cumulative fraction of seeds recovered within k faults.
func Figure1(w io.Writer, seeds, maxFaults, step int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "F1: success rate vs faults, byte model (seeds=%d)\n", seeds)
	used := map[keccak.Mode][]int{}
	for _, mode := range keccak.FixedModes {
		stride := 2
		if mode.DigestBits() < 384 {
			stride = 5
		}
		runs := RunAFABatch(mode, fault.Byte, 5000, seeds, AFAOptions{MaxFaults: maxFaults, SolveEvery: stride})
		for _, run := range runs {
			n := run.FaultsUsed
			if !run.Recovered {
				n = maxFaults + 1
			}
			used[mode] = append(used[mode], n)
		}
	}
	fmt.Fprintf(w, "%-8s", "faults")
	for _, mode := range keccak.FixedModes {
		fmt.Fprintf(w, " | %-10s", mode)
	}
	fmt.Fprintln(w)
	for k := step; k <= maxFaults; k += step {
		fmt.Fprintf(w, "%-8d", k)
		for _, mode := range keccak.FixedModes {
			got := 0
			for _, n := range used[mode] {
				if n <= k {
					got++
				}
			}
			fmt.Fprintf(w, " | %8.0f%%", 100*float64(got)/float64(seeds))
		}
		fmt.Fprintln(w)
	}
}

// StepStat captures one incremental solve during an attack.
type StepStat struct {
	Faults    int
	SolveTime time.Duration
	Vars      int
	Clauses   int
	Status    core.Status
}

// RunAFADetailed runs one campaign recording every incremental solve.
// Errors and panics end the recording early: the steps collected so
// far are returned, so the figure emitters render a truncated series
// instead of killing the whole experiment sweep.
func RunAFADetailed(mode keccak.Mode, model fault.Model, seed int64, maxFaults int) (out []StepStat) {
	defer func() { recover() }()
	rng := rand.New(rand.NewSource(seed))
	msg := randomMessage(mode, rng)
	correct, injs := fault.Campaign(mode, msg, model, 22, maxFaults, seed+1)
	atk := core.NewAttack(core.DefaultConfig(mode, model))
	if err := atk.AddCorrect(correct); err != nil {
		return out
	}
	first := minFaults(mode)
	stride := model.Width() / 8
	if stride < 1 {
		stride = 1
	}
	for i, inj := range injs {
		if err := atk.AddInjection(inj); err != nil {
			return out
		}
		if i+1 < first || (i+1-first)%stride != 0 {
			continue
		}
		res, err := atk.Solve()
		if err != nil {
			return out
		}
		out = append(out, StepStat{
			Faults: i + 1, SolveTime: res.SolveTime,
			Vars: res.Vars, Clauses: res.Clauses, Status: res.Status,
		})
		if res.Status == core.Recovered {
			break
		}
	}
	return out
}

// Figure2 — SAT solving time versus number of faults, per fault model,
// on SHA3-512.
func Figure2(w io.Writer, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "F2: solve time vs faults (SHA3-512)\n")
	fmt.Fprintf(w, "%-8s | %-8s | %-12s | %-10s | %-10s | %s\n",
		"model", "faults", "solve", "vars", "clauses", "status")
	models := []fault.Model{fault.Byte, fault.Word16, fault.Word32}
	rows := make([][]StepStat, len(models))
	forEachIndex(len(models), func(i int) {
		rows[i] = RunAFADetailed(keccak.SHA3_512, models[i], 6000, maxFaults)
	})
	for i, m := range models {
		for _, st := range rows[i] {
			fmt.Fprintf(w, "%-8s | %-8d | %-12s | %-10d | %-10d | %s\n",
				m, st.Faults, st.SolveTime.Round(time.Millisecond), st.Vars, st.Clauses, st.Status)
		}
	}
}

// Figure3 — information accumulation: determined state bits (sampled)
// versus number of faults, AFA probe against DFA forced-bit counts.
func Figure3(w io.Writer, mode keccak.Mode, maxFaults, sample int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "F3: determined state bits vs faults (%s, byte model, sampled %d/1600)\n", mode, sample)
	rng := rand.New(rand.NewSource(7000))
	msg := randomMessage(mode, rng)
	correct, injs := fault.Campaign(mode, msg, fault.Byte, 22, maxFaults, 7001)

	idx := rng.Perm(keccak.StateBits)[:sample]
	atk := core.NewAttack(core.DefaultConfig(mode, fault.Byte))
	atk.AddCorrect(correct)
	dfaAtk := dfa.NewAttack(mode, fault.Byte)
	dfaAtk.AddCorrect(correct)

	fmt.Fprintf(w, "%-8s | %-22s | %s\n", "faults", "AFA determined (est.)", "DFA forced")
	for i, inj := range injs {
		atk.AddInjection(inj)
		dfaAtk.AddInjection(inj)
		if _, err := atk.Solve(); err != nil {
			fmt.Fprintf(w, "(series truncated at fault %d: %v)\n", i+1, err)
			return
		}
		det, err := atk.ProbeDetermined(idx)
		if err != nil {
			det = 0
		}
		est := float64(det) / float64(sample) * keccak.StateBits
		fmt.Fprintf(w, "%-8d | %6.0f / 1600          | %d / 1600\n",
			i+1, est, dfaAtk.ForcedBits())
	}
}

// Figure4 — CNF instance size by mode and fault model (no solving).
func Figure4(w io.Writer, faults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "F4: CNF size with %d faulty observations\n", faults)
	fmt.Fprintf(w, "%-10s | %-8s | %-10s | %-10s\n", "mode", "model", "vars", "clauses")
	models := []fault.Model{fault.Byte, fault.Word16, fault.Word32}
	type cell struct {
		mode keccak.Mode
		m    fault.Model
		st   cnf.Stats
	}
	cells := make([]cell, 0, len(keccak.FixedModes)*len(models))
	for _, mode := range keccak.FixedModes {
		for _, m := range models {
			cells = append(cells, cell{mode: mode, m: m})
		}
	}
	forEachIndex(len(cells), func(i int) {
		c := &cells[i]
		b := core.NewBuilder(core.DefaultConfig(c.mode, c.m))
		digest := keccak.Sum(c.mode, []byte("size probe"))
		b.AddCorrect(digest)
		for k := 0; k < faults; k++ {
			b.AddFaulty(digest, -1)
		}
		c.st = b.Formula().ComputeStats()
	})
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s | %-8s | %-10d | %-10d\n", c.mode, c.m, c.st.Vars, c.st.Clauses)
	}
}

// AblationEncoding — what cone-of-influence pruning buys: the realized
// CNF when only digest bits are constrained versus when the full
// 1600-bit output cone must be encoded.
func AblationEncoding(w io.Writer) {
	w = LockWriter(w)
	fmt.Fprintf(w, "A1: cone-of-influence pruning (two-round instance, one fault)\n")
	fmt.Fprintf(w, "%-10s | %-22s | %-22s\n", "mode", "pruned (digest cone)", "unpruned (full cone)")
	for _, mode := range keccak.FixedModes {
		pruned := encodingSize(mode, false)
		full := encodingSize(mode, true)
		fmt.Fprintf(w, "%-10s | %-22s | %-22s\n", mode, pruned, full)
	}
}

func encodingSize(mode keccak.Mode, fullCone bool) string {
	circ := symbolic.NewCircuit()
	alpha := symbolic.NewSymInput(circ)
	out := alpha.Clone()
	out.Chi(circ)
	out.Iota(22)
	out.Round(circ, 23)
	f := cnf.New()
	enc := symbolic.NewEncoder(circ, f)
	n := mode.DigestBits()
	if fullCone {
		n = keccak.StateBits
	}
	for _, r := range out.DigestRefs(n) {
		enc.Lit(r)
	}
	st := f.ComputeStats()
	return fmt.Sprintf("%d vars / %d cls", st.Vars, st.Clauses)
}

// AblationSolver — what each CDCL feature buys on a fixed attack
// instance (SHA3-512, byte model, known positions for determinism).
func AblationSolver(w io.Writer, faults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "A2: solver feature ablation (SHA3-512, byte model, %d faults, single solve)\n", faults)
	msg := []byte("solver ablation instance")
	correct, injs := fault.Campaign(keccak.SHA3_512, msg, fault.Byte, 22, faults, 8000)
	cfg := core.DefaultConfig(keccak.SHA3_512, fault.Byte)
	b := core.NewBuilder(cfg)
	b.AddCorrect(correct)
	for _, inj := range injs {
		b.AddFaulty(inj.FaultyDigest, -1)
	}
	form := b.Formula()

	variants := []struct {
		name string
		opts sat.Options
	}{
		{"full", sat.Options{}},
		{"no-VSIDS", sat.Options{NoVSIDS: true}},
		{"no-restarts", sat.Options{NoRestarts: true}},
		{"no-phase-saving", sat.Options{NoPhaseSaving: true}},
		{"no-minimize", sat.Options{NoMinimize: true}},
		{"no-reduce", sat.Options{NoReduce: true}},
	}
	fmt.Fprintf(w, "%-16s | %-12s | %-10s | %-10s | %s\n", "variant", "time", "conflicts", "decisions", "status")
	for _, v := range variants {
		v.opts.MaxConflicts = 2_000_000
		s := sat.FromFormula(form, v.opts)
		start := time.Now()
		st := s.Solve()
		el := time.Since(start)
		stats := s.Stats()
		fmt.Fprintf(w, "%-16s | %-12s | %-10d | %-10d | %s\n",
			v.name, el.Round(time.Millisecond), stats.Conflicts, stats.Decisions, st)
	}
}
