package campaign

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(context.Background(), 4)
	var ran int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func(context.Context) {
			defer wg.Done()
			atomic.AddInt64(&ran, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close()
	if ran != 100 {
		t.Fatalf("ran %d tasks, want 100", ran)
	}
	if err := p.Submit(func(context.Context) {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
}

func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 2)
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		if err := p.Submit(func(c context.Context) {
			started <- struct{}{}
			<-release
			if c.Err() == nil {
				t.Error("task context not canceled")
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	cancel()
	// Both workers are busy and the context is done: Submit must fail
	// fast instead of blocking forever.
	if err := p.Submit(func(context.Context) {}); err != context.Canceled {
		t.Fatalf("Submit after cancel: %v, want context.Canceled", err)
	}
	close(release)
	p.Close()
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(context.Background(), 1)
	p.Close()
	p.Close()
}
