//go:build race

package campaign

// raceEnabled lets solver-heavy tests skip themselves under -race; the
// campaign robustness paths (panic recovery, cancellation, checkpoint
// round trip) have fast dedicated tests that do run instrumented.
const raceEnabled = true
