package campaign

import (
	"os"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// Calibration probes: establish the fault budgets the experiment
// emitters need per mode/model. They are calibration tools rather
// than regression tests (several minutes each), so they only run when
// AFA_PROBE=1 is set in the environment.

func skipUnlessProbing(t *testing.T) {
	t.Helper()
	if testing.Short() || os.Getenv("AFA_PROBE") == "" {
		t.Skip("calibration probe: set AFA_PROBE=1 to run")
	}
}

func TestProbeAFA224Byte(t *testing.T) {
	skipUnlessProbing(t)
	run := RunAFA(keccak.SHA3_224, fault.Byte, 1, AFAOptions{MaxFaults: 120, SolveEvery: 4})
	t.Logf("SHA3-224/byte: recovered=%v faults=%d total=%v solve=%v msgOK=%v ident=%d",
		run.Recovered, run.FaultsUsed, run.TotalTime, run.SolveTime, run.MessageOK, run.FaultsIdent)
}

func TestProbeAFA256Byte(t *testing.T) {
	skipUnlessProbing(t)
	run := RunAFA(keccak.SHA3_256, fault.Byte, 1, AFAOptions{MaxFaults: 120, SolveEvery: 3})
	t.Logf("SHA3-256/byte: recovered=%v faults=%d total=%v solve=%v",
		run.Recovered, run.FaultsUsed, run.TotalTime, run.SolveTime)
}

func TestProbeAFA512Word32(t *testing.T) {
	skipUnlessProbing(t)
	run := RunAFA(keccak.SHA3_512, fault.Word32, 1, AFAOptions{MaxFaults: 60, SolveEvery: 5})
	t.Logf("SHA3-512/32-bit: recovered=%v faults=%d total=%v solve=%v",
		run.Recovered, run.FaultsUsed, run.TotalTime, run.SolveTime)
}

func TestProbeDFA512Byte(t *testing.T) {
	skipUnlessProbing(t)
	run := RunDFA(keccak.SHA3_512, fault.Byte, 1, 400)
	t.Logf("DFA SHA3-512/byte: recovered=%v faults=%d forcedA=%d ident=%d skip=%d total=%v",
		run.Recovered, run.FaultsUsed, run.ForcedA, run.Identified, run.Skipped, run.TotalTime)
}

func TestProbeDFAOracle512Byte(t *testing.T) {
	skipUnlessProbing(t)
	run := RunDFAOracle(keccak.SHA3_512, fault.Byte, 1, 600)
	t.Logf("DFA-oracle SHA3-512/byte: recovered=%v faults=%d forcedA=%d total=%v",
		run.Recovered, run.FaultsUsed, run.ForcedA, run.TotalTime)
}
