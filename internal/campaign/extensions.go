package campaign

import (
	"fmt"
	"io"
	"time"

	"sha3afa/internal/countermeasure"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// Extension experiments beyond the DATE'17 tables: the journal
// version's further relaxations (unaligned windows, XOF modes) and the
// countermeasure evaluation the paper's conclusion calls for.

// TableUnaligned — AFA under sliding-window (unaligned) fault models,
// the journal extension's strongest relaxation that still recovers.
func TableUnaligned(w io.Writer, seeds, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "E1: AFA under unaligned (sliding-window) fault models (seeds=%d)\n", seeds)
	fmt.Fprintf(w, "%-10s | %-16s | %-34s\n", "mode", "model", "AFA")
	for _, mode := range []keccak.Mode{keccak.SHA3_384, keccak.SHA3_512} {
		for _, m := range fault.UnalignedModels {
			runs := RunAFABatch(mode, m, 9000, seeds, AFAOptions{MaxFaults: maxFaults})
			fmt.Fprintf(w, "%-10s | %-16s | %-34s\n", mode, m, SummarizeAFA(runs).Cell())
		}
	}
}

// TableSHAKE — AFA against the XOF modes (with their default output
// lengths), extending "all four modes" to the full FIPS 202 family.
func TableSHAKE(w io.Writer, seeds, maxFaults int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "E2: AFA on the SHAKE XOFs, byte fault model (seeds=%d)\n", seeds)
	fmt.Fprintf(w, "%-10s | %-34s\n", "mode", "AFA")
	for _, mode := range []keccak.Mode{keccak.SHAKE128, keccak.SHAKE256} {
		runs := RunAFABatch(mode, fault.Byte, 9500, seeds, AFAOptions{MaxFaults: maxFaults})
		fmt.Fprintf(w, "%-10s | %-34s\n", mode, SummarizeAFA(runs).Cell())
	}
}

// TableCountermeasure — C1: detection rates of the protection schemes
// against the injector used by the attack, per fault model.
func TableCountermeasure(w io.Writer, trials int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "C1: countermeasure detection rates (%d injections each, fault at θ input of round 22)\n", trials)
	fmt.Fprintf(w, "%-16s | %-20s | %-20s\n", "model", "temporal (2 rounds)", "parity guard")
	mode := keccak.SHA3_256
	msg := []byte("countermeasure evaluation")
	models := append(append([]fault.Model{}, fault.Models...), fault.UnalignedModels...)
	for _, m := range models {
		inj := fault.NewInjector(m, 321)
		temporal, parity := 0, 0
		for i := 0; i < trials; i++ {
			delta := inj.Sample().Delta()
			if countermeasure.TemporalRedundancy(mode, msg, 2, 22, &delta).Detected {
				temporal++
			}
			if countermeasure.ParityGuard(mode, msg, 22, &delta).Detected {
				parity++
			}
		}
		fmt.Fprintf(w, "%-16s | %18.1f%% | %18.1f%%\n", m,
			100*float64(temporal)/float64(trials), 100*float64(parity)/float64(trials))
	}
}

// TableStarvation — how the infective countermeasure starves the
// attack: the fraction of injections that yield a usable faulty digest
// with and without protection.
func TableStarvation(w io.Writer, trials int) {
	w = LockWriter(w)
	fmt.Fprintf(w, "C2: infective output — usable faulty digests per %d injections\n", trials)
	mode := keccak.SHA3_256
	msg := []byte("starvation target")
	correct := keccak.Sum(mode, msg)
	inj := fault.NewInjector(fault.Byte, 77)
	usableRaw, usableProtected := 0, 0
	start := time.Now()
	for i := 0; i < trials; i++ {
		delta := inj.Sample().Delta()
		det := countermeasure.TemporalRedundancy(mode, msg, 2, 22, &delta)
		// Unprotected device: the faulty digest leaves as-is.
		if !bytesEqual(det.Digest, correct) {
			usableRaw++
		}
		// Protected device: infective output replaces detected faults.
		out := countermeasure.Infective(det, mode)
		if !bytesEqual(out, correct) && !det.Detected {
			usableProtected++
		}
	}
	fmt.Fprintf(w, "  unprotected: %d usable faulty digests\n", usableRaw)
	fmt.Fprintf(w, "  protected:   %d usable faulty digests (detection + infective masking)\n", usableProtected)
	fmt.Fprintf(w, "  elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
