package dfa

import "sha3afa/internal/keccak"

// Joint variable space of the DFA linear system: variables 0..1599 are
// the bits of α (χ input of round 22), 1600..3199 the bits of
// β = χ(α) (χ output of round 22).
const (
	numAVars = keccak.StateBits
	numVars  = 2 * keccak.StateBits
	bVarBase = keccak.StateBits
)

// affine is a sparse GF(2) affine expression over the joint variables.
type affine struct {
	coeffs map[int32]struct{}
	c      bool
}

func affineConst(b bool) affine {
	return affine{coeffs: map[int32]struct{}{}, c: b}
}

func affineVar(v int32) affine {
	return affine{coeffs: map[int32]struct{}{v: {}}}
}

func (a *affine) clone() affine {
	out := affine{coeffs: make(map[int32]struct{}, len(a.coeffs)), c: a.c}
	for k := range a.coeffs {
		out.coeffs[k] = struct{}{}
	}
	return out
}

// xor accumulates o into a.
func (a *affine) xor(o *affine) {
	for k := range o.coeffs {
		if _, ok := a.coeffs[k]; ok {
			delete(a.coeffs, k)
		} else {
			a.coeffs[k] = struct{}{}
		}
	}
	a.c = a.c != o.c
}

// isConst reports whether the expression has no variable terms.
func (a *affine) isConst() bool { return len(a.coeffs) == 0 }

// affineState is a 1600-wide vector of affine expressions in keccak
// bit order.
type affineState []affine

func newAffineState() affineState {
	s := make(affineState, keccak.StateBits)
	for i := range s {
		s[i] = affineConst(false)
	}
	return s
}

func (s affineState) at(x, y, z int) *affine {
	return &s[keccak.BitIndex(x, y, z)]
}

// thetaAffine applies θ to a vector of affine expressions.
func thetaAffine(in affineState) affineState {
	// Column parities.
	parity := make([]affine, 5*64)
	for x := 0; x < 5; x++ {
		for z := 0; z < 64; z++ {
			p := affineConst(false)
			for y := 0; y < 5; y++ {
				p.xor(in.at(x, y, z))
			}
			parity[x*64+z] = p
		}
	}
	out := make(affineState, keccak.StateBits)
	for x := 0; x < 5; x++ {
		for z := 0; z < 64; z++ {
			d := parity[((x+4)%5)*64+z].clone()
			d.xor(&parity[((x+1)%5)*64+(z+63)%64])
			for y := 0; y < 5; y++ {
				e := in.at(x, y, z).clone()
				e.xor(&d)
				out[keccak.BitIndex(x, y, z)] = e
			}
		}
	}
	return out
}

// rhoAffine and piAffine are wire permutations of the expressions.
func rhoAffine(in affineState) affineState {
	out := make(affineState, keccak.StateBits)
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			off := keccak.RhoOffsets[x][y]
			for z := 0; z < 64; z++ {
				out[keccak.BitIndex(x, y, (z+off)%64)] = in[keccak.BitIndex(x, y, z)]
			}
		}
	}
	return out
}

func piAffine(in affineState) affineState {
	out := make(affineState, keccak.StateBits)
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 64; z++ {
				out[keccak.BitIndex(x, y, z)] = in[keccak.BitIndex((x+3*y)%5, x, z)]
			}
		}
	}
	return out
}

// linearLayerAffine applies L = π ∘ ρ ∘ θ.
func linearLayerAffine(in affineState) affineState {
	return piAffine(rhoAffine(thetaAffine(in)))
}

// chiInput23OverB returns, for every bit of the χ input of round 23,
// its affine expression over the β variables: in' = L(β ⊕ RC22).
// Computed once per attack session and shared across faults.
func chiInput23OverB() affineState {
	seed := newAffineState()
	rc := keccak.RoundConstants[22]
	for i := 0; i < keccak.StateBits; i++ {
		e := affineVar(int32(bVarBase + i))
		if i < 64 && rc>>uint(i)&1 == 1 {
			e.c = true
		}
		seed[i] = e
	}
	return linearLayerAffine(seed)
}
