package dfa

import (
	"bytes"
	"fmt"

	"sha3afa/internal/bitmat"
	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// Status mirrors the AFA result taxonomy.
type Status int

// DFA outcomes.
const (
	Ambiguous Status = iota
	Recovered
	Inconsistent
)

func (s Status) String() string {
	switch s {
	case Recovered:
		return "recovered"
	case Inconsistent:
		return "inconsistent"
	default:
		return "ambiguous"
	}
}

// Result reports a DFA snapshot after processing the injections so far.
type Result struct {
	Status     Status
	ChiInput   keccak.State // recovered χ input of round 22 when Status == Recovered
	ForcedA    int          // α bits currently forced
	ForcedB    int          // β bits currently forced
	Identified int          // faults identified uniquely so far
	Partial    int          // ambiguous faults absorbed via candidate-intersection
	Skipped    int          // faults skipped (identification failed outright)
}

// Attack is a DFA session over one message's observations.
type Attack struct {
	mode       keccak.Mode
	model      fault.Model
	correct    []byte
	sys        *bitmat.LinearSystem
	inPrime    affineState // χ^23 input over β, shared across faults
	identified int
	partial    int // ambiguous injections absorbed via equation intersection
	skipped    int
	// ruleFired memoizes χ-relation rules already absorbed, so the
	// fixpoint loop does not pay an O(rank) redundant reduction for
	// every rule on every pass.
	ruleFired map[uint32]bool
}

// NewAttack prepares a DFA session. The correct digest must be set
// via AddCorrect before injections are processed.
func NewAttack(mode keccak.Mode, model fault.Model) *Attack {
	return &Attack{
		mode:      mode,
		model:     model,
		sys:       bitmat.NewLinearSystem(numVars),
		inPrime:   chiInput23OverB(),
		ruleFired: make(map[uint32]bool),
	}
}

// AddCorrect records the fault-free digest.
func (a *Attack) AddCorrect(digest []byte) {
	a.correct = append([]byte(nil), digest...)
}

// maxAmbiguous bounds how many surviving identification candidates
// DFA is willing to reason about jointly: with more, the injection is
// skipped (the paper's identification-failure case).
const maxAmbiguous = 64

// AddInjection identifies the fault behind a faulty digest and absorbs
// its linear equations. When identification is ambiguous but the
// candidate set is small, only the equations shared by *every*
// candidate are absorbed — sound regardless of which candidate is the
// real fault. Returns whether the fault was identified uniquely.
// Identification is exhaustive for the 1-bit and byte models; the
// wider relaxed models make DFA infeasible (the error explains why —
// this is the comparison point of the paper).
func (a *Attack) AddInjection(inj fault.Injection) (bool, error) {
	if a.correct == nil {
		return false, fmt.Errorf("dfa: AddInjection before AddCorrect")
	}
	d := a.mode.DigestBits()
	cands, err := Identify(a.model, a.correct, inj.FaultyDigest, d)
	if err != nil {
		return false, err
	}
	// Contradiction filtering: a candidate whose equations clash with
	// knowledge accumulated so far cannot be the real fault.
	if len(cands) > 1 && len(cands) <= maxAmbiguous && a.sys.Rank() > 0 {
		kept := cands[:0]
		for _, f := range cands {
			if !a.contradicts(f, inj.FaultyDigest) {
				kept = append(kept, f)
			}
		}
		cands = kept
	}
	switch {
	case len(cands) == 1:
		a.identified++
		for _, eq := range a.equations(cands[0], inj.FaultyDigest) {
			a.sys.AddEquation(eq.coeffs, eq.rhs)
		}
		a.propagateChiRelation()
		return true, nil
	case len(cands) >= 2 && len(cands) <= maxAmbiguous:
		// Absorb the intersection of all candidates' equation sets.
		common := a.commonEquations(cands, inj.FaultyDigest)
		for _, eq := range common {
			a.sys.AddEquation(eq.coeffs, eq.rhs)
		}
		if len(common) > 0 {
			a.partial++
			a.propagateChiRelation()
		} else {
			a.skipped++
		}
		return false, nil
	default:
		a.skipped++
		return false, nil
	}
}

// AddInjectionKnown absorbs an injection whose fault is already known
// (oracle identification). It isolates DFA's equation-extraction power
// from its identification weakness: the paper-style comparison "how
// many faults does the differential method need, given the fault" —
// the most favourable setting for the baseline.
func (a *Attack) AddInjectionKnown(inj fault.Injection) error {
	if a.correct == nil {
		return fmt.Errorf("dfa: AddInjectionKnown before AddCorrect")
	}
	a.identified++
	for _, eq := range a.equations(inj.Fault, inj.FaultyDigest) {
		a.sys.AddEquation(eq.coeffs, eq.rhs)
	}
	a.propagateChiRelation()
	return nil
}

// equation is one extracted linear constraint over the joint (α, β)
// variables.
type equation struct {
	coeffs *bitmat.Vec
	rhs    bool
}

func (e equation) key() string {
	return e.coeffs.String() + map[bool]string{false: "0", true: "1"}[e.rhs]
}

// contradicts reports whether a candidate's equations clash with the
// current system (checked without mutating it).
func (a *Attack) contradicts(f fault.Fault, faultyDigest []byte) bool {
	for _, eq := range a.equations(f, faultyDigest) {
		if a.sys.Contradicts(eq.coeffs, eq.rhs) {
			return true
		}
	}
	return false
}

// commonEquations returns the equations every candidate agrees on.
func (a *Attack) commonEquations(cands []fault.Fault, faultyDigest []byte) []equation {
	counts := map[string]int{}
	var first []equation
	for i, f := range cands {
		eqs := a.equations(f, faultyDigest)
		if i == 0 {
			first = eqs
		}
		seen := map[string]bool{}
		for _, eq := range eqs {
			k := eq.key()
			if !seen[k] {
				seen[k] = true
				counts[k]++
			}
		}
	}
	var out []equation
	for _, eq := range first {
		if counts[eq.key()] == len(cands) {
			out = append(out, eq)
		}
	}
	return out
}

// equations pushes the fault's affine difference through the last two
// rounds and collects every equation that stays linear over (α, β).
func (a *Attack) equations(f fault.Fault, faultyDigest []byte) []equation {
	d := a.mode.DigestBits()
	// Exact χ-input difference of round 22.
	chiInDiff := f.Delta()
	chiInDiff.LinearLayer()

	// β difference as affine expressions over α.
	deltaB := newAffineState()
	for y := 0; y < 5; y++ {
		for z := 0; z < 64; z++ {
			var din [5]bool
			for x := 0; x < 5; x++ {
				din[x] = chiInDiff.Bit(keccak.BitIndex(x, y, z))
			}
			for x := 0; x < 5; x++ {
				d0, d1, d2 := din[x], din[(x+1)%5], din[(x+2)%5]
				e := affineConst(d0 != d2 != (d1 && d2))
				if d2 {
					e.coeffs[int32(keccak.BitIndex((x+1)%5, y, z))] = struct{}{}
				}
				if d1 {
					e.coeffs[int32(keccak.BitIndex((x+2)%5, y, z))] = struct{}{}
				}
				deltaB[keccak.BitIndex(x, y, z)] = e
			}
		}
	}

	// Difference at the χ input of round 23 (ι is difference-neutral).
	deltaIn23 := linearLayerAffine(deltaB)

	// Observed digest difference.
	obs := digestDiff(a.correct, faultyDigest, d)

	// χ^23: keep equations whose neighbour differences are constant.
	var out []equation
	for i := 0; i < d; i++ {
		x, y, z := keccak.BitCoords(i)
		i1 := keccak.BitIndex((x+1)%5, y, z)
		i2 := keccak.BitIndex((x+2)%5, y, z)
		d1 := &deltaIn23[i1]
		d2 := &deltaIn23[i2]
		if !d1.isConst() || !d2.isConst() {
			continue // value-dependent: quadratic over (α,β) — AFA-only territory
		}
		c1, c2 := d1.c, d2.c
		eq := deltaIn23[i].clone()
		eq.c = eq.c != c2 != (c1 && c2)
		if c2 {
			eq.xor(&a.inPrime[i1])
		}
		if c1 {
			eq.xor(&a.inPrime[i2])
		}
		coeffs := bitmat.NewVec(numVars)
		for k := range eq.coeffs {
			coeffs.Set(int(k), true)
		}
		out = append(out, equation{coeffs: coeffs, rhs: obs.Bit(i) != eq.c})
	}
	return out
}

// propagateChiRelation links α and β through the χ row relation
// β_i = α_i ⊕ α_{i+2} ⊕ α_{i+1}·α_{i+2}, adding linear consequences
// whenever enough neighbouring bits are forced, to a fixpoint.
func (a *Attack) propagateChiRelation() {
	for {
		before := a.sys.Rank()
		forced := a.sys.Forced()
		get := func(v int) (bool, bool) {
			val, ok := forced[v]
			return val, ok
		}
		// Each rule is keyed so it pays its O(rank) reduction only once.
		addRel := func(key uint32, ai, bi int, rhs bool) {
			if a.ruleFired[key] {
				return
			}
			a.ruleFired[key] = true
			coeffs := bitmat.NewVec(numVars)
			coeffs.Set(ai, true)
			coeffs.Set(bi, true)
			a.sys.AddEquation(coeffs, rhs)
		}
		assign := func(v int, val bool) {
			if _, ok := get(v); !ok {
				a.sys.Assign(v, val)
			}
		}
		for y := 0; y < 5; y++ {
			for z := 0; z < 64; z++ {
				for x := 0; x < 5; x++ {
					ai := keccak.BitIndex(x, y, z)
					a1 := keccak.BitIndex((x+1)%5, y, z)
					a2 := keccak.BitIndex((x+2)%5, y, z)
					bi := bVarBase + ai

					v1, ok1 := get(a1)
					v2, ok2 := get(a2)
					switch {
					case ok1 && ok2:
						// β_i ⊕ α_i = (¬α_{i+1})·α_{i+2} known.
						addRel(uint32(ai), ai, bi, !v1 && v2)
					case ok2 && !v2, ok1 && v1:
						// The product term vanishes: β_i = α_i.
						addRel(uint32(ai)|1<<20, ai, bi, false)
					}

					// Reverse direction: α_i and β_i forced reveals the
					// product value (¬α_{i+1})·α_{i+2}.
					vai, okai := get(ai)
					vbi, okbi := get(bi)
					if okai && okbi {
						if vai != vbi {
							// Product is 1: α_{i+1}=0 and α_{i+2}=1.
							assign(a1, false)
							assign(a2, true)
						} else {
							// Product is 0: (α_{i+1},α_{i+2}) ≠ (0,1).
							if ok1 && !v1 {
								assign(a2, false)
							}
							if ok2 && v2 {
								assign(a1, true)
							}
						}
					}
				}
			}
		}
		if a.sys.Rank() == before {
			return
		}
	}
}

// Snapshot reports the current recovery state, attempting full
// reconstruction when every α bit is forced.
func (a *Attack) Snapshot() Result {
	res := Result{Identified: a.identified, Partial: a.partial, Skipped: a.skipped}
	if a.sys.Inconsistent() {
		res.Status = Inconsistent
		return res
	}
	forced := a.sys.Forced()
	var chi keccak.State
	nA := 0
	for v, val := range forced {
		if v < numAVars {
			nA++
			if val {
				chi.SetBit(v, true)
			}
		} else {
			res.ForcedB++
		}
	}
	res.ForcedA = nA
	if nA < numAVars {
		res.Status = Ambiguous
		return res
	}
	// Full α recovered: validate against the correct digest.
	s := chi
	s.Chi()
	s.Iota(22)
	s.Round(23)
	if !bytes.Equal(s.ExtractBytes(a.mode.DigestBits()/8), a.correct) {
		res.Status = Inconsistent
		return res
	}
	res.Status = Recovered
	res.ChiInput = chi
	return res
}

// ForcedBits returns the number of forced α bits (for the
// information-accumulation comparison against AFA).
func (a *Attack) ForcedBits() int {
	n := 0
	for v := range a.sys.Forced() {
		if v < numAVars {
			n++
		}
	}
	return n
}
