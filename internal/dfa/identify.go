package dfa

import (
	"fmt"
	"sync"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

// Candidate signatures are message-independent (difference propagation
// never reads state values), so they are computed once per model and
// reused across injections and attack sessions.
var (
	sigMu    sync.Mutex
	sigCache = map[fault.Model][]candidateSig{}
)

type candidateSig struct {
	f   fault.Fault
	sig triState
}

func signatures(m fault.Model) []candidateSig {
	sigMu.Lock()
	defer sigMu.Unlock()
	if s, ok := sigCache[m]; ok {
		return s
	}
	maxVal := uint64(1) << uint(m.Width())
	out := make([]candidateSig, 0, m.Windows()*int(maxVal-1))
	for w := 0; w < m.Windows(); w++ {
		for v := uint64(1); v < maxVal; v++ {
			f := fault.Fault{Model: m, Window: w, Value: v}
			out = append(out, candidateSig{f: f, sig: propagateCandidate(f.Delta())})
		}
	}
	sigCache[m] = out
	return out
}

// Identify enumerates every fault candidate of the model and keeps
// those whose three-valued difference propagation is consistent with
// the observed digest difference. For the 1-bit and byte models the
// candidate space is small enough to enumerate exhaustively (1600 and
// 51000); the 16- and 32-bit models have 2^16·100 and 2^32·50
// candidates — the enumeration that makes classical DFA impractical
// under strongly relaxed models, which is the paper's motivation for
// AFA. Identify returns an error for those models.
func Identify(m fault.Model, correct, faulty []byte, digestBits int) ([]fault.Fault, error) {
	if m != fault.SingleBit && m != fault.Byte {
		return nil, fmt.Errorf("dfa: fault identification infeasible under the %s model (candidate space too large)", m)
	}
	obs := digestDiff(correct, faulty, digestBits)
	var out []fault.Fault
	for _, cs := range signatures(m) {
		if cs.sig.digestConsistent(&obs, digestBits) {
			out = append(out, cs.f)
		}
	}
	return out, nil
}

// IdentifyUnique returns the fault when exactly one candidate
// survives, and reports how many candidates survived.
func IdentifyUnique(m fault.Model, correct, faulty []byte, digestBits int) (fault.Fault, int, error) {
	cands, err := Identify(m, correct, faulty, digestBits)
	if err != nil {
		return fault.Fault{}, 0, err
	}
	if len(cands) == 1 {
		return cands[0], 1, nil
	}
	return fault.Fault{}, len(cands), nil
}

// MustDiffMask returns the bits of the digest difference that a given
// fault forces to 1 and 0 respectively (diagnostic / test helper).
func MustDiffMask(f fault.Fault, digestBits int) (ones, zeros keccak.State) {
	t := propagateCandidate(f.Delta())
	for i := 0; i < digestBits; i++ {
		if t.unk.Bit(i) {
			continue
		}
		if t.val.Bit(i) {
			ones.SetBit(i, true)
		} else {
			zeros.SetBit(i, true)
		}
	}
	return ones, zeros
}
