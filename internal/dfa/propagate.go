// Package dfa implements the differential fault analysis baseline the
// paper compares AFA against (the method of "Differential Fault
// Analysis of SHA-3 under Relaxed Fault Models", the companion work).
//
// DFA works with the same observations as AFA — a correct digest and
// faulty digests under a relaxed fault model at the θ input of round
// 22 — but instead of handing the full non-linear system to a SAT
// solver it:
//
//  1. identifies each fault (window + value) by matching the observed
//     digest difference against three-valued difference propagation of
//     every candidate fault, and
//  2. extracts only the GF(2)-*linear* equations relating state bits
//     to observed difference bits, accumulating them in a linear
//     system until the whole χ input of round 22 is forced.
//
// Step 2 is exactly why DFA needs more faults than AFA and fails on
// the short-digest modes: every equation whose difference coefficients
// are value-dependent (quadratic) is thrown away, while AFA keeps it.
package dfa

import (
	"math/bits"

	"sha3afa/internal/keccak"
)

// triState is a three-valued 1600-bit difference: bit i is 0, 1 or
// unknown. val holds the value where known; unk marks unknown bits
// (val must be 0 where unk is set).
type triState struct {
	val keccak.State
	unk keccak.State
}

// fromExact lifts an exact difference.
func fromExact(d keccak.State) triState { return triState{val: d} }

// theta propagates the difference through θ: values propagate
// linearly, unknownness spreads through each bit's 11-bit support.
func (t *triState) theta() {
	t.val.Theta()
	var colUnk [5]uint64
	for x := 0; x < 5; x++ {
		colUnk[x] = t.unk[x] | t.unk[x+5] | t.unk[x+10] | t.unk[x+15] | t.unk[x+20]
	}
	var out keccak.State
	for x := 0; x < 5; x++ {
		d := colUnk[(x+4)%5] | bits.RotateLeft64(colUnk[(x+1)%5], 1)
		for y := 0; y < 5; y++ {
			out[keccak.LaneIndex(x, y)] = t.unk[keccak.LaneIndex(x, y)] | d
		}
	}
	t.unk = out
	t.mask()
}

// rho and pi are wire permutations: both planes permute.
func (t *triState) rho() { t.val.Rho(); t.unk.Rho() }
func (t *triState) pi()  { t.val.Pi(); t.unk.Pi() }

// chi propagates the difference through χ. With in-values unknown,
// output difference bit i is known only when the difference bits at
// positions i+1 and i+2 of its row are both known-zero, in which case
// it equals the difference bit at i.
func (t *triState) chi() {
	var val, unk keccak.State
	for y := 0; y < 5; y++ {
		var v, u [5]uint64
		for x := 0; x < 5; x++ {
			v[x] = t.val[keccak.LaneIndex(x, y)]
			u[x] = t.unk[keccak.LaneIndex(x, y)]
		}
		for x := 0; x < 5; x++ {
			active1 := v[(x+1)%5] | u[(x+1)%5]
			active2 := v[(x+2)%5] | u[(x+2)%5]
			outUnk := u[x] | active1 | active2
			unk[keccak.LaneIndex(x, y)] = outUnk
			val[keccak.LaneIndex(x, y)] = v[x] &^ outUnk
		}
	}
	t.val, t.unk = val, unk
	t.mask()
}

// mask re-establishes the invariant val & unk == 0.
func (t *triState) mask() {
	for i := range t.val {
		t.val[i] &^= t.unk[i]
	}
}

// linearLayer applies θ, ρ, π.
func (t *triState) linearLayer() {
	t.theta()
	t.rho()
	t.pi()
}

// digestConsistent checks the observed digest difference D (first
// nBits of correct ⊕ faulty) against the propagated three-valued
// difference: every known bit must match.
func (t *triState) digestConsistent(obs *keccak.State, nBits int) bool {
	for i := 0; i < nBits; i += 64 {
		lane := i / 64
		width := nBits - i
		var m uint64 = ^uint64(0)
		if width < 64 {
			m = (uint64(1) << uint(width)) - 1
		}
		known := ^t.unk[lane] & m
		if (t.val[lane]^obs[lane])&known != 0 {
			return false
		}
	}
	return true
}

// propagateCandidate runs a candidate fault difference (at the θ input
// of round 22) through the last two rounds in three-valued logic and
// returns the digest-level difference.
func propagateCandidate(delta keccak.State) triState {
	// Exact through L of round 22 (linear on differences).
	delta.LinearLayer()
	t := fromExact(delta)
	// χ of round 22 (ι does not affect differences).
	t.chi()
	// Round 23.
	t.linearLayer()
	t.chi()
	return t
}

// digestDiff builds the observed difference state from two digests.
func digestDiff(correct, faulty []byte, nBits int) keccak.State {
	var s keccak.State
	for i := 0; i < nBits; i++ {
		if keccak.DigestBitsOf(correct, i) != keccak.DigestBitsOf(faulty, i) {
			s.SetBit(i, true)
		}
	}
	return s
}
