package dfa

import (
	"math/rand"
	"testing"

	"sha3afa/internal/fault"
	"sha3afa/internal/keccak"
)

func TestTriStateThetaMatchesExact(t *testing.T) {
	// With no unknown bits, three-valued propagation must equal the
	// exact linear propagation.
	rng := rand.New(rand.NewSource(1))
	var d keccak.State
	for i := 0; i < 20; i++ {
		d.SetBit(rng.Intn(keccak.StateBits), true)
	}
	ts := fromExact(d)
	ts.theta()
	ts.rho()
	ts.pi()
	want := d
	want.LinearLayer()
	if !ts.unk.IsZero() {
		t.Fatal("linear steps introduced unknowns")
	}
	if !ts.val.Equal(&want) {
		t.Fatal("three-valued linear propagation differs from exact")
	}
}

func TestTriStateChiSoundness(t *testing.T) {
	// Whatever the actual state values, the true output difference of
	// χ must agree with the three-valued prediction on known bits.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var din keccak.State
		for i := 0; i < 1+rng.Intn(30); i++ {
			din.SetBit(rng.Intn(keccak.StateBits), true)
		}
		ts := fromExact(din)
		ts.chi()

		var in keccak.State
		for i := range in {
			in[i] = rng.Uint64()
		}
		a := in
		a.Chi()
		b := in
		b.Xor(&din)
		b.Chi()
		trueDiff := a
		trueDiff.Xor(&b)

		for i := 0; i < keccak.StateBits; i++ {
			if ts.unk.Bit(i) {
				continue
			}
			if ts.val.Bit(i) != trueDiff.Bit(i) {
				t.Fatalf("trial %d: χ 3-valued prediction wrong at bit %d", trial, i)
			}
		}
	}
}

func TestPropagateCandidateSoundness(t *testing.T) {
	// End-to-end: known digest-difference bits predicted by the
	// propagation must match an actual faulty computation.
	rng := rand.New(rand.NewSource(3))
	msg := []byte("soundness check")
	mode := keccak.SHA3_512
	correct := keccak.Sum(mode, msg)
	for trial := 0; trial < 20; trial++ {
		f := fault.Fault{Model: fault.Byte, Window: rng.Intn(200), Value: 1 + uint64(rng.Intn(255))}
		delta := f.Delta()
		faulty := keccak.HashWithFault(mode, msg, 22, &delta)
		obs := digestDiff(correct, faulty, mode.DigestBits())
		ts := propagateCandidate(f.Delta())
		if !ts.digestConsistent(&obs, mode.DigestBits()) {
			t.Fatalf("trial %d: true fault inconsistent with its own digest diff", trial)
		}
	}
}

func TestIdentifySingleBit(t *testing.T) {
	msg := []byte("identify me")
	mode := keccak.SHA3_512
	correct := keccak.Sum(mode, msg)
	rng := rand.New(rand.NewSource(4))
	unique := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		f := fault.Fault{Model: fault.SingleBit, Window: rng.Intn(1600), Value: 1}
		delta := f.Delta()
		faulty := keccak.HashWithFault(mode, msg, 22, &delta)
		cands, err := Identify(fault.SingleBit, correct, faulty, mode.DigestBits())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range cands {
			if c == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: true fault not among %d candidates", trial, len(cands))
		}
		if len(cands) == 1 {
			unique++
		}
	}
	if unique == 0 {
		t.Fatal("no single-bit fault was identified uniquely on SHA3-512")
	}
	t.Logf("unique identification: %d/%d", unique, trials)
}

func TestIdentifyWideModelsRejected(t *testing.T) {
	if _, err := Identify(fault.Word16, nil, nil, 512); err == nil {
		t.Fatal("16-bit identification should be reported infeasible")
	}
	if _, err := Identify(fault.Word32, nil, nil, 512); err == nil {
		t.Fatal("32-bit identification should be reported infeasible")
	}
}

func TestAffineLinearLayerMatchesConcrete(t *testing.T) {
	// Evaluate the affine linear layer on concrete seeds and compare
	// with keccak's linear layer.
	rng := rand.New(rand.NewSource(5))
	var in keccak.State
	for i := range in {
		in[i] = rng.Uint64()
	}
	seed := newAffineState()
	for i := 0; i < keccak.StateBits; i++ {
		seed[i] = affineConst(in.Bit(i))
	}
	out := linearLayerAffine(seed)
	want := in
	want.LinearLayer()
	for i := 0; i < keccak.StateBits; i++ {
		e := out[i]
		if !e.isConst() {
			t.Fatalf("bit %d: constant seeds produced variables", i)
		}
		if e.c != want.Bit(i) {
			t.Fatalf("bit %d: affine linear layer wrong", i)
		}
	}
}

func TestChiInput23OverBEvaluates(t *testing.T) {
	// in' = L(β ⊕ RC22) — substitute a concrete β and compare.
	rng := rand.New(rand.NewSource(6))
	var beta keccak.State
	for i := range beta {
		beta[i] = rng.Uint64()
	}
	exprs := chiInput23OverB()
	want := beta
	want.Iota(22)
	want.LinearLayer()
	for i := 0; i < keccak.StateBits; i++ {
		e := exprs[i]
		got := e.c
		for k := range e.coeffs {
			if int(k) < bVarBase {
				t.Fatalf("bit %d: expression references α variables", i)
			}
			if beta.Bit(int(k) - bVarBase) {
				got = !got
			}
		}
		if got != want.Bit(i) {
			t.Fatalf("bit %d: in' expression wrong", i)
		}
	}
}

// TestDFAEquationsSoundness: every equation extracted from a real
// injection must be satisfied by the ground-truth (α, β).
func TestDFAEquationsSoundness(t *testing.T) {
	msg := []byte("equation soundness")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.SingleBit, 22, 10, 11)
	tr := keccak.TraceHash(mode, msg)
	alpha := tr.ChiInput(22)
	beta := alpha
	beta.Chi()

	atk := NewAttack(mode, fault.SingleBit)
	atk.AddCorrect(correct)
	for _, inj := range injs {
		if _, err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		// Check ground truth satisfies the running system.
		forced := atk.sys.Forced()
		for v, val := range forced {
			var want bool
			if v < numAVars {
				want = alpha.Bit(v)
			} else {
				want = beta.Bit(v - bVarBase)
			}
			if val != want {
				t.Fatalf("forced var %d contradicts ground truth", v)
			}
		}
		if atk.sys.Inconsistent() {
			t.Fatal("system became inconsistent on genuine observations")
		}
	}
	snap := atk.Snapshot()
	t.Logf("after %d single-bit faults: forcedA=%d forcedB=%d identified=%d skipped=%d",
		len(injs), snap.ForcedA, snap.ForcedB, snap.Identified, snap.Skipped)
}

// TestDFASmokeRecovery runs DFA with single-bit faults on SHA3-512
// until full recovery (single-bit identification is exact, so this
// exercises the complete pipeline).
func TestDFASmokeRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long DFA recovery test skipped in -short mode")
	}
	msg := []byte("dfa full recovery")
	mode := keccak.SHA3_512
	correct, injs := fault.Campaign(mode, msg, fault.SingleBit, 22, 3000, 13)
	truth := keccak.TraceHash(mode, msg).ChiInput(22)

	atk := NewAttack(mode, fault.SingleBit)
	atk.AddCorrect(correct)
	for i, inj := range injs {
		if _, err := atk.AddInjection(inj); err != nil {
			t.Fatal(err)
		}
		if (i+1)%250 == 0 {
			snap := atk.Snapshot()
			t.Logf("faults=%d forcedA=%d forcedB=%d", i+1, snap.ForcedA, snap.ForcedB)
		}
		snap := atk.Snapshot()
		if snap.Status == Recovered {
			if !snap.ChiInput.Equal(&truth) {
				t.Fatal("DFA recovered a wrong state")
			}
			t.Logf("DFA recovered after %d single-bit faults", i+1)
			return
		}
		if snap.Status == Inconsistent {
			t.Fatal("DFA inconsistent on genuine observations")
		}
	}
	snap := atk.Snapshot()
	t.Logf("not fully recovered after %d faults: forcedA=%d/%d forcedB=%d",
		len(injs), snap.ForcedA, numAVars, snap.ForcedB)
}
